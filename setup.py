"""Setup shim so legacy installs (`python setup.py develop`) work in
environments whose setuptools predates bundled wheel support."""

from setuptools import setup

setup()

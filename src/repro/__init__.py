"""repro -- reproduction of "Optimizing Data Warehousing Applications for
GPUs Using Kernel Fusion/Fission" (Wu et al., IPDPS workshops 2012).

The package implements the paper's two compiler optimizations -- kernel
fusion (SS III) and kernel fission (SS IV) -- over a relational-algebra
operator library, and evaluates them on a simulated Fermi-class platform
(Tesla C2070 + PCIe 2.0 host, Table II).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the per-figure reproduction record.

Quick start::

    from repro.runtime.select_chain import run_select_chain
    from repro.runtime import Strategy

    fused = run_select_chain(100_000_000, num_selects=2,
                             strategy=Strategy.FUSED)
    print(fused.throughput / 1e9, "GB/s")
"""

__version__ = "0.1.0"

from . import compilerlite, core, cpubase, plans, ra, runtime, simgpu, streampool, tpch
from .errors import (
    CompilerError,
    DeviceOOMError,
    FusionError,
    PlanError,
    RelationError,
    ReproError,
    SchedulingError,
)

__all__ = [
    "compilerlite", "core", "cpubase", "plans", "ra", "runtime", "simgpu",
    "streampool", "tpch", "CompilerError", "DeviceOOMError", "FusionError",
    "PlanError", "RelationError", "ReproError", "SchedulingError",
    "__version__",
]

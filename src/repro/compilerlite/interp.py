"""Interpreter for the mini-IR.

Executes a straight-line program (with forward branches and guards) over a
memory dictionary; used to verify that optimization passes preserve
semantics (every store to a non-temporary location must match).
"""

from __future__ import annotations

from ..errors import CompilerError
from .ir import Program, is_imm

_CMP = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}

_ARITH = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
}

MAX_STEPS = 10_000


def run_program(prog: Program, memory: dict[str, float]) -> dict[str, float]:
    """Execute `prog`; returns the final memory (input dict is not mutated)."""
    mem = dict(memory)
    regs: dict[str, float] = {}
    labels = {i.srcs[0]: k for k, i in enumerate(prog.instrs) if i.op == "label"}

    def value(v):
        if is_imm(v):
            return v
        if v not in regs:
            raise CompilerError(f"use of undefined register {v!r}")
        return regs[v]

    pc = 0
    steps = 0
    while pc < len(prog.instrs):
        steps += 1
        if steps > MAX_STEPS:
            raise CompilerError("interpreter step limit exceeded")
        instr = prog.instrs[pc]
        pc += 1
        if instr.op in ("label", "ret"):
            if instr.op == "ret":
                break
            continue
        if instr.guard is not None:
            want = not instr.guard.startswith("!")
            pred = instr.guard.lstrip("!")
            if bool(regs.get(pred, False)) != want:
                continue
        if instr.op == "ld":
            loc = instr.srcs[0]
            if loc not in mem:
                raise CompilerError(f"load from uninitialized location {loc!r}")
            regs[instr.dst] = mem[loc]
        elif instr.op == "st":
            mem[instr.srcs[0]] = value(instr.srcs[1])
        elif instr.op == "mov":
            regs[instr.dst] = value(instr.srcs[0])
        elif instr.op == "setp":
            regs[instr.dst] = _CMP[instr.cmp](value(instr.srcs[0]),
                                              value(instr.srcs[1]))
        elif instr.op == "and_pred":
            regs[instr.dst] = bool(value(instr.srcs[0])) and bool(value(instr.srcs[1]))
        elif instr.op in _ARITH:
            regs[instr.dst] = _ARITH[instr.op](value(instr.srcs[0]),
                                               value(instr.srcs[1]))
        elif instr.op == "bra":
            target = instr.srcs[0]
            if target not in labels:
                raise CompilerError(f"branch to unknown label {target!r}")
            pc = labels[target]
        else:
            raise CompilerError(f"cannot interpret op {instr.op!r}")
    return mem


def visible_output(prog: Program, memory: dict[str, float]) -> dict[str, float]:
    """Run and return only the non-temporary locations (observable effects)."""
    mem = run_program(prog, memory)
    return {k: v for k, v in mem.items() if not k.startswith("tmp")}

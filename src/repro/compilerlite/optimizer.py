"""Optimization passes over the mini-IR (the "O3" of Table III).

Classic scalar optimizations, each a ``Program -> Program`` function:

* store/load forwarding   -- kills the temp-buffer hop naive fusion makes
* copy propagation        -- folds the forwarded mov away
* constant propagation    -- folds ``mov r, IMM`` into setp immediates
* predicate combination   -- ``d<T1 && d<T2  ==>  d < min(T1,T2)``
* branch-to-predication   -- guarded-skip + store  ==>  predicated store
* dead-code elimination   -- unused defs, dead temp stores, orphan labels

Run to fixpoint by :func:`optimize`.  The paper's point (Table III) is that
these passes recover much more on *fused* kernels because the optimization
scope is larger: 5 -> 3 per unfused filter kernel, but 10 -> 3 fused.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .ir import Instr, Program, is_imm

Pass = Callable[[Program], Program]


# ---------------------------------------------------------------------------
# individual passes
# ---------------------------------------------------------------------------

def store_load_forwarding(prog: Program) -> Program:
    """Replace a load from a location just stored (same straight-line
    region) with a register copy."""
    out: list[Instr] = []
    known: dict[str, str] = {}  # location -> register holding its value
    for instr in prog.instrs:
        if instr.op == "label":
            known.clear()  # control-flow merge: forget forwarding state
            out.append(instr)
            continue
        if instr.op == "st" and instr.guard is None:
            known[instr.srcs[0]] = instr.srcs[1]
            out.append(instr)
            continue
        if (instr.op == "ld" and instr.guard is None
                and instr.srcs[0] in known):
            out.append(Instr("mov", dst=instr.dst, srcs=(known[instr.srcs[0]],)))
            continue
        out.append(instr)
    return Program(prog.name, out)


def copy_propagation(prog: Program) -> Program:
    """Forward ``mov rX, rY`` by rewriting later uses of rX to rY."""
    out = list(prog.instrs)
    for k, instr in enumerate(out):
        if (instr.op == "mov" and instr.srcs
                and isinstance(instr.srcs[0], str)
                and len(prog.defs_of(instr.dst)) == 1):
            src = instr.srcs[0]
            # the source must not be redefined between the mov and the uses
            redefs = [d for d in prog.defs_of(src) if d > k]
            if redefs:
                continue
            for j in range(k + 1, len(out)):
                u = out[j]
                if instr.dst in u.srcs:
                    out[j] = replace(
                        u, srcs=tuple(src if s == instr.dst else s
                                      for s in u.srcs))
    return Program(prog.name, out)


def constant_propagation(prog: Program) -> Program:
    """Fold ``mov r, IMM`` into immediate operands of later uses."""
    out = list(prog.instrs)
    consts: dict[str, float] = {}
    for k, instr in enumerate(out):
        if instr.op == "mov" and instr.srcs and is_imm(instr.srcs[0]):
            if len(prog.defs_of(instr.dst)) == 1:
                consts[instr.dst] = instr.srcs[0]
            continue
        if instr.op in ("setp", "st") and any(s in consts for s in instr.srcs):
            # st's first src is a location name, never a register
            new_srcs = []
            for pos, s in enumerate(instr.srcs):
                if instr.op == "st" and pos == 0:
                    new_srcs.append(s)
                else:
                    new_srcs.append(consts.get(s, s))
            out[k] = replace(instr, srcs=tuple(new_srcs))
    return Program(prog.name, out)


def predicate_combination(prog: Program) -> Program:
    """Combine chained same-direction compares against immediates.

    Pattern: ``setp.lt pA, r, IMM1`` whose only use guards a skip branch,
    followed (on the fallthrough path, before the branch target) by
    ``setp.lt pB, r, IMM2`` -- equivalent to a single compare against
    ``min(IMM1, IMM2)`` (max for gt/ge).
    """
    instrs = list(prog.instrs)
    for k, first in enumerate(instrs):
        if first.op != "setp" or not is_imm(first.srcs[1]):
            continue
        uses = [j for j in range(len(instrs))
                if instrs[j].guard is not None
                and instrs[j].guard.lstrip("!") == first.dst]
        if len(uses) != 1:
            continue
        bra_idx = uses[0]
        bra = instrs[bra_idx]
        if bra.op != "bra" or bra.guard != f"!{first.dst}":
            continue
        target = bra.srcs[0]
        # find a second compatible setp between the branch and its target
        for j in range(bra_idx + 1, len(instrs)):
            second = instrs[j]
            if second.op == "label" and second.srcs[0] == target:
                break
            if (second.op == "setp" and second.cmp == first.cmp
                    and second.srcs[0] == first.srcs[0]
                    and is_imm(second.srcs[1])):
                if first.cmp in ("lt", "le"):
                    combined = min(first.srcs[1], second.srcs[1])
                elif first.cmp in ("gt", "ge"):
                    combined = max(first.srcs[1], second.srcs[1])
                else:
                    break
                instrs[j] = replace(second,
                                    srcs=(second.srcs[0], combined))
                del instrs[bra_idx]
                del instrs[k]
                return Program(prog.name, instrs)  # one rewrite per run
    return Program(prog.name, instrs)


def branch_to_predication(prog: Program) -> Program:
    """Turn a guarded skip over simple instructions into predication."""
    instrs = list(prog.instrs)
    for k, instr in enumerate(instrs):
        if instr.op != "bra" or instr.guard is None or not instr.guard.startswith("!"):
            continue
        target = instr.srcs[0]
        pred = instr.guard[1:]
        body: list[int] = []
        ok = False
        for j in range(k + 1, len(instrs)):
            nxt = instrs[j]
            if nxt.op == "label" and nxt.srcs[0] == target:
                ok = True
                break
            if nxt.op in ("st", "mov") and nxt.guard is None:
                body.append(j)
            else:
                ok = False
                break
        if ok and body:
            for j in body:
                instrs[j] = instrs[j].with_guard(pred)
            del instrs[k]
            return Program(prog.name, instrs)
    return Program(prog.name, instrs)


def common_subexpression_elimination(prog: Program) -> Program:
    """Value numbering over pure instructions within a straight-line region.

    Re-loads of the same location, re-materialized constants, and repeated
    arithmetic on identical operands collapse onto the first computation.
    State resets at labels (control-flow merges) and loads reset at stores
    to the same location.
    """
    out = list(prog.instrs)
    available: dict[tuple, str] = {}  # value key -> register holding it
    replacements: dict[str, str] = {}

    def resolve(v):
        return replacements.get(v, v) if isinstance(v, str) else v

    for k, instr in enumerate(out):
        if instr.op == "label":
            available.clear()
            continue
        srcs = tuple(resolve(s) for s in instr.srcs)
        guard = instr.guard
        if guard is not None:
            neg = guard.startswith("!")
            guard = ("!" if neg else "") + resolve(guard.lstrip("!"))
        if srcs != instr.srcs or guard != instr.guard:
            instr = replace(instr, srcs=srcs, guard=guard)
            out[k] = instr
        if instr.op == "st":
            # invalidate loads of the stored location
            available.pop(("ld", instr.srcs[0]), None)
            continue
        if instr.guard is not None:
            continue  # guarded defs are not unconditionally available
        key: tuple | None = None
        if instr.op == "ld":
            key = ("ld", instr.srcs[0])
        elif instr.op == "mov" and is_imm(instr.srcs[0]):
            key = ("const", instr.srcs[0])
        elif instr.is_pure_arith:
            key = (instr.op,) + instr.srcs
        elif instr.op == "setp":
            key = ("setp", instr.cmp) + instr.srcs
        if key is None:
            continue
        if key in available:
            replacements[instr.dst] = available[key]
            out[k] = Instr("mov", dst=instr.dst, srcs=(available[key],))
        else:
            available[key] = instr.dst
    return Program(prog.name, out)


def dead_code_elimination(prog: Program) -> Program:
    """Remove unused defs, dead temp stores, and orphan labels."""
    instrs = list(prog.instrs)
    changed = True
    while changed:
        changed = False
        prog2 = Program(prog.name, instrs)
        for k in range(len(instrs) - 1, -1, -1):
            instr = instrs[k]
            if (instr.op in ("ld", "mov", "setp", "and_pred")
                    and instr.dst is not None
                    and not prog2.uses_of(instr.dst)):
                del instrs[k]
                changed = True
                break
            if instr.op == "st" and str(instr.srcs[0]).startswith("tmp"):
                loaded = any(i.op == "ld" and i.srcs[0] == instr.srcs[0]
                             for i in instrs[k + 1:])
                if not loaded:
                    del instrs[k]
                    changed = True
                    break
            if instr.op == "label":
                referenced = any(i.op == "bra" and i.srcs[0] == instr.srcs[0]
                                 for i in instrs)
                if not referenced:
                    del instrs[k]
                    changed = True
                    break
    return Program(prog.name, instrs)


#: the O3 pipeline, in application order
O3_PASSES: list[Pass] = [
    store_load_forwarding,
    copy_propagation,
    common_subexpression_elimination,
    copy_propagation,
    constant_propagation,
    dead_code_elimination,
    predicate_combination,
    branch_to_predication,
    dead_code_elimination,
]


def optimize(prog: Program, passes: list[Pass] | None = None,
             max_iters: int = 10) -> Program:
    """Run the pass pipeline to fixpoint (bounded)."""
    passes = O3_PASSES if passes is None else passes
    current = prog.copy()
    for _ in range(max_iters):
        before = [i.render() for i in current.instrs]
        for p in passes:
            current = p(current)
        if [i.render() for i in current.instrs] == before:
            break
    return current


def instruction_counts(programs: list[Program], optimized: bool
                       ) -> list[int]:
    """Instruction counts for each program, at O0 or O3."""
    if not optimized:
        return [p.count() for p in programs]
    return [optimize(p).count() for p in programs]

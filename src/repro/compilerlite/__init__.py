"""Mini PTX-like compiler: codegen + O0/O3 pipelines (Table III study)."""

from .codegen import (
    FilterStatement,
    gen_arith_kernel,
    gen_filter_kernel,
    gen_fused_naive,
    gen_unfused,
    gen_unfused_arith,
)
from .interp import run_program, visible_output
from .liveness import LivenessReport, analyze_liveness, register_pressure
from .ir import CMP_OPS, Instr, Program
from .optimizer import (
    O3_PASSES,
    branch_to_predication,
    common_subexpression_elimination,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    instruction_counts,
    optimize,
    predicate_combination,
    store_load_forwarding,
)

__all__ = [
    "FilterStatement", "gen_filter_kernel", "gen_fused_naive", "gen_unfused",
    "CMP_OPS", "Instr", "Program", "O3_PASSES", "branch_to_predication",
    "constant_propagation", "copy_propagation", "dead_code_elimination",
    "instruction_counts", "optimize", "predicate_combination",
    "store_load_forwarding", "run_program", "visible_output",
    "gen_arith_kernel", "gen_unfused_arith", "common_subexpression_elimination",
    "LivenessReport", "analyze_liveness", "register_pressure",
]


def table3() -> dict[str, object]:
    """Reproduce Table III: instruction counts for the two-filter example.

    Returns the counts for {unfused, fused} x {O0, O3}.
    """
    stmts = [FilterStatement("lt", 100.0), FilterStatement("lt", 50.0)]
    unfused = gen_unfused(stmts)
    fused = gen_fused_naive(stmts)
    return {
        "unfused_o0": [p.count() for p in unfused],
        "unfused_o3": [optimize(p).count() for p in unfused],
        "fused_o0": fused.count(),
        "fused_o3": optimize(fused).count(),
    }

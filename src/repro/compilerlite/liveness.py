"""Liveness analysis: register pressure of mini-IR programs.

The paper's fusion caveat (SS III-C) is that fused kernels hold more live
intermediates per thread.  This analysis makes that measurable at the IR
level: a backward liveness scan yields the maximum number of
simultaneously live registers -- the quantity the kernel cost model
approximates per stage -- so the claim "fusion increases register
pressure" can be *checked on generated code* rather than assumed.

The programs are straight-line with forward branches; the conservative
treatment joins liveness across a branch by keeping values live from
their definition to their last (textual) use, which is exact for the
codegen here (no loops).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import Program


@dataclass(frozen=True)
class LivenessReport:
    max_live: int
    live_at: tuple[int, ...]      # live register count before each instr
    last_use: dict[str, int]

    @property
    def pressure(self) -> int:
        return self.max_live


def _uses(instr) -> set[str]:
    used = {s for s in instr.srcs if isinstance(s, str)
            and not _is_location(instr, s)}
    if instr.guard is not None:
        used.add(instr.guard.lstrip("!"))
    return used


def _is_location(instr, src) -> bool:
    """Memory-location operands (not registers)."""
    if instr.op == "ld":
        return src == instr.srcs[0]
    if instr.op == "st":
        return src == instr.srcs[0]
    if instr.op in ("bra", "label"):
        return True
    return False


def analyze_liveness(prog: Program) -> LivenessReport:
    """Max simultaneously live registers over the program."""
    first_def: dict[str, int] = {}
    last_use: dict[str, int] = {}
    for k, instr in enumerate(prog.instrs):
        for reg in _uses(instr):
            last_use[reg] = k
        if instr.dst is not None and instr.dst not in first_def:
            first_def[instr.dst] = k

    live_at: list[int] = []
    max_live = 0
    for k in range(len(prog.instrs)):
        live = sum(
            1 for reg, d in first_def.items()
            if d < k <= last_use.get(reg, -1)
        )
        live_at.append(live)
        max_live = max(max_live, live)
    return LivenessReport(max_live=max_live, live_at=tuple(live_at),
                          last_use=dict(last_use))


def register_pressure(prog: Program) -> int:
    """Convenience: the max-live register count."""
    return analyze_liveness(prog).max_live

"""A miniature PTX-like IR (for the Table III instruction-count study).

Just enough structure for the paper's example: loads/stores, immediate
moves, predicate-setting compares, guarded branches, and labels.  Labels
are pseudo-instructions and are excluded from instruction counts, matching
how PTX listings are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from ..errors import CompilerError

#: compare ops understood by setp
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")

#: three-operand arithmetic ops (dst <- src0 <op> src1)
ARITH_OPS = ("add", "sub", "mul", "div")


@dataclass(frozen=True)
class Instr:
    """One instruction.

    ``op`` is one of: ``ld`` (dst <- [src0]), ``st`` ([src0] <- src1),
    ``mov`` (dst <- src0), ``setp`` (dst <- src0 <cmp> src1),
    ``and_pred`` (dst <- src0 & src1), ``bra`` (jump to label src0),
    ``label`` (pseudo), ``ret``.
    ``guard`` predicates execution: ``"p0"`` or ``"!p0"``.
    """

    op: str
    dst: str | None = None
    srcs: tuple = ()
    cmp: str | None = None
    guard: str | None = None

    def __post_init__(self):
        if self.op == "setp" and self.cmp not in CMP_OPS:
            raise CompilerError(f"setp needs a compare op, got {self.cmp!r}")

    @property
    def is_real(self) -> bool:
        """Counts toward the instruction count (labels don't)."""
        return self.op not in ("label",)

    @property
    def is_pure_arith(self) -> bool:
        return self.op in ARITH_OPS

    def with_guard(self, guard: str | None) -> "Instr":
        return replace(self, guard=guard)

    def render(self) -> str:
        g = f"@{self.guard} " if self.guard else ""
        if self.op == "label":
            return f"{self.srcs[0]}:"
        if self.op == "ld":
            return f"{g}ld.global {self.dst}, [{self.srcs[0]}]"
        if self.op == "st":
            return f"{g}st.global [{self.srcs[0]}], {self.srcs[1]}"
        if self.op == "mov":
            return f"{g}mov {self.dst}, {_fmt(self.srcs[0])}"
        if self.op == "setp":
            return (f"{g}setp.{self.cmp} {self.dst}, "
                    f"{_fmt(self.srcs[0])}, {_fmt(self.srcs[1])}")
        if self.op == "and_pred":
            return f"{g}and.pred {self.dst}, {self.srcs[0]}, {self.srcs[1]}"
        if self.op in ARITH_OPS:
            return (f"{g}{self.op} {self.dst}, "
                    f"{_fmt(self.srcs[0])}, {_fmt(self.srcs[1])}")
        if self.op == "bra":
            return f"{g}bra {self.srcs[0]}"
        if self.op == "ret":
            return f"{g}ret"
        raise CompilerError(f"unknown op {self.op!r}")


def _fmt(v) -> str:
    return str(v)


def is_imm(v) -> bool:
    return isinstance(v, (int, float))


@dataclass
class Program:
    """A straight-line kernel body with forward branches."""

    name: str
    instrs: list[Instr] = field(default_factory=list)

    def count(self) -> int:
        """Number of real (counted) instructions."""
        return sum(1 for i in self.instrs if i.is_real)

    def render(self) -> str:
        lines = [f".entry {self.name}"]
        for i in self.instrs:
            indent = "" if i.op == "label" else "    "
            lines.append(indent + i.render())
        return "\n".join(lines)

    def copy(self) -> "Program":
        return Program(self.name, list(self.instrs))

    def defs_of(self, reg: str) -> list[int]:
        return [k for k, i in enumerate(self.instrs)
                if i.dst == reg and i.op != "st"]

    def uses_of(self, reg: str) -> list[int]:
        out = []
        for k, i in enumerate(self.instrs):
            used = any(s == reg for s in i.srcs)
            guarded = i.guard is not None and i.guard.lstrip("!") == reg
            if used or guarded:
                out.append(k)
        return out


def fresh_names(prefix: str) -> Iterable[str]:
    k = 0
    while True:
        yield f"{prefix}{k}"
        k += 1

"""Codegen for threshold-filter kernels (the Table III example).

The paper's example statements are ``if (d < THRESHOLD1)`` and
``if (d < THRESHOLD2)``.  Unoptimized (O0) codegen emits, per statement:

    ld.global  r, [in]       ; load the element
    mov        rc, THRESHOLD ; materialize the constant
    setp.lt    p, r, rc      ; compare
    @!p bra    SKIP          ; guarded skip
    st.global  [out], r      ; pass the element through

i.e. 5 instructions -- matching Table III row 1.  *Naive fusion* (what a
source-level merge produces before optimization) chains the two statements
through a temporary buffer, 10 instructions -- Table III row 2.  The O3
pipeline (:mod:`repro.compilerlite.optimizer`) then shrinks 5 -> 3 per
unfused kernel and 10 -> 3 fused.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompilerError
from ..ra.expr import BinOp, Const, Expr, Field
from .ir import CMP_OPS, Instr, Program

_BINOP_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div"}


@dataclass(frozen=True)
class FilterStatement:
    """One ``if (d <cmp> threshold)`` filter."""

    cmp: str
    threshold: float

    def __post_init__(self):
        if self.cmp not in CMP_OPS:
            raise CompilerError(f"unknown compare {self.cmp!r}")


def gen_filter_kernel(stmt: FilterStatement, name: str = "filter",
                      in_loc: str = "in", out_loc: str = "out") -> Program:
    """O0 codegen of one filter statement (5 instructions)."""
    p = Program(name)
    p.instrs = [
        Instr("ld", dst="r0", srcs=(in_loc,)),
        Instr("mov", dst="r1", srcs=(stmt.threshold,)),
        Instr("setp", dst="p0", srcs=("r0", "r1"), cmp=stmt.cmp),
        Instr("bra", srcs=("SKIP",), guard="!p0"),
        Instr("st", srcs=(out_loc, "r0")),
        Instr("label", srcs=("SKIP",)),
    ]
    return p


def gen_unfused(stmts: list[FilterStatement]) -> list[Program]:
    """Each statement in its own kernel (reading the previous one's output)."""
    progs = []
    for k, stmt in enumerate(stmts):
        in_loc = "in" if k == 0 else f"buf{k - 1}"
        out_loc = "out" if k == len(stmts) - 1 else f"buf{k}"
        progs.append(gen_filter_kernel(stmt, name=f"filter{k}",
                                       in_loc=in_loc, out_loc=out_loc))
    return progs


def gen_fused_naive(stmts: list[FilterStatement], name: str = "fused") -> Program:
    """Source-level fusion without optimization: the statements are simply
    concatenated, passing data through kernel-local temporaries (5 x n
    instructions; 10 for the paper's two statements)."""
    if not stmts:
        raise CompilerError("need at least one statement")
    p = Program(name)
    reg = iter(range(100))
    preds = iter(range(100))
    instrs: list[Instr] = []
    src_loc = "in"
    for k, stmt in enumerate(stmts):
        last = k == len(stmts) - 1
        dst_loc = "out" if last else f"tmp{k}"
        r_val = f"r{next(reg)}"
        r_const = f"r{next(reg)}"
        pred = f"p{next(preds)}"
        instrs += [
            Instr("ld", dst=r_val, srcs=(src_loc,)),
            Instr("mov", dst=r_const, srcs=(stmt.threshold,)),
            Instr("setp", dst=pred, srcs=(r_val, r_const), cmp=stmt.cmp),
            Instr("bra", srcs=("END",), guard=f"!{pred}"),
            Instr("st", srcs=(dst_loc, r_val)),
        ]
        src_loc = dst_loc
    instrs.append(Instr("label", srcs=("END",)))
    p.instrs = instrs
    return p


# ---------------------------------------------------------------------------
# arithmetic kernels (Q1's fused ARITH block)
# ---------------------------------------------------------------------------

def gen_arith_kernel(assignments: list[tuple[str, Expr]],
                     name: str = "arith") -> Program:
    """O0 codegen of arithmetic assignments (e.g. Q1's
    ``disc_price = price*(1-discount)``; ``charge = disc_price*(1+tax)``).

    Deliberately naive, as a source-level merge would be: every field
    occurrence is re-loaded, every constant re-materialized, and common
    subexpressions are re-computed.  The O3 pipeline's CSE then recovers
    the sharing -- *more* sharing when the assignments live in one fused
    kernel (the Table III scope effect, on arithmetic instead of filters).
    """
    if not assignments:
        raise CompilerError("need at least one assignment")
    prog = Program(name)
    counter = iter(range(10_000))

    def emit(expr: Expr) -> str:
        reg = f"r{next(counter)}"
        if isinstance(expr, Field):
            prog.instrs.append(Instr("ld", dst=reg, srcs=(expr.name,)))
        elif isinstance(expr, Const):
            prog.instrs.append(Instr("mov", dst=reg, srcs=(expr.value,)))
        elif isinstance(expr, BinOp):
            left = emit(expr.left)
            right = emit(expr.right)
            prog.instrs.append(Instr(_BINOP_NAMES[expr.op], dst=reg,
                                     srcs=(left, right)))
        else:
            raise CompilerError(f"cannot generate code for {expr!r}")
        return reg

    for out_name, expr in assignments:
        result = emit(expr)
        prog.instrs.append(Instr("st", srcs=(out_name, result)))
    return prog


def gen_unfused_arith(assignments: list[tuple[str, Expr]]) -> list[Program]:
    """Each assignment compiled as its own kernel (no cross-assignment
    optimization scope)."""
    return [gen_arith_kernel([a], name=f"arith{i}")
            for i, a in enumerate(assignments)]

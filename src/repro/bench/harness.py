"""Output helpers for the benchmark suite.

Every ``benchmarks/bench_*.py`` module prints the same rows/series the
paper's table or figure reports, plus a paper-vs-measured comparison line
so the reproduction quality is visible in the bench log (and recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simgpu.device import DeviceSpec, describe_environment


def print_header(experiment: str, description: str,
                 device: DeviceSpec | None = None) -> None:
    bar = "=" * 72
    print(f"\n{bar}\n{experiment}: {description}\n{bar}")
    print(describe_environment(device or DeviceSpec()))


def format_table(headers: list[str], rows: list[list], width: int = 14) -> str:
    def fmt(v):
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)
    lines = ["  ".join(h.rjust(width) for h in headers)]
    for row in rows:
        lines.append("  ".join(fmt(v).rjust(width) for v in row))
    return "\n".join(lines)


def format_series(name: str, xs: list, ys: list[float], unit: str = "") -> str:
    pts = "  ".join(f"({x}, {y:.3f})" for x, y in zip(xs, ys))
    return f"{name} [{unit}]: {pts}"


@dataclass
class PaperComparison:
    """Collects (metric, paper value, measured value) triples and renders
    the comparison block each bench prints."""

    experiment: str
    entries: list[tuple[str, float, float]] = field(default_factory=list)

    def add(self, metric: str, paper: float, measured: float) -> None:
        self.entries.append((metric, paper, measured))

    def render(self) -> str:
        lines = [f"--- paper vs measured ({self.experiment}) ---"]
        for metric, paper, measured in self.entries:
            if paper != 0:
                delta = (measured - paper) / abs(paper) * 100.0
                lines.append(
                    f"{metric:46s} paper={paper:10.3f} measured={measured:10.3f} "
                    f"({delta:+.1f}%)")
            else:
                lines.append(
                    f"{metric:46s} paper={paper:10.3f} measured={measured:10.3f}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

"""Output helpers for the benchmark suite.

Every ``benchmarks/bench_*.py`` module prints the same rows/series the
paper's table or figure reports, plus a paper-vs-measured comparison line
so the reproduction quality is visible in the bench log (and recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..simgpu.device import DeviceSpec, describe_environment

#: environment variable holding the machine-readable output target; set by
#: the benchmark suite's ``--json PATH`` option (benchmarks/conftest.py)
JSON_ENV = "REPRO_BENCH_JSON"


def json_output_path(experiment: str, path: str | None = None) -> str | None:
    """Resolve where `experiment`'s JSON report should go.

    Precedence: explicit `path` argument, then the ``--json PATH`` /
    ``REPRO_BENCH_JSON`` target.  A target that is a directory (or ends
    with a path separator) receives one ``BENCH_<experiment>.json`` per
    experiment; otherwise the target is the file itself.  None disables
    JSON output.
    """
    target = path if path is not None else os.environ.get(JSON_ENV)
    if not target:
        return None
    if os.path.isdir(target) or target.endswith(os.sep):
        return os.path.join(target, f"BENCH_{experiment}.json")
    return target


def emit_json(experiment: str, payload: dict,
              path: str | None = None) -> str | None:
    """Write a benchmark's machine-readable report; returns the path.

    The document is ``{"experiment": ..., "payload": ...}`` with sorted
    keys and a trailing newline, so same-seed runs produce byte-identical
    files (the perf-trajectory tooling diffs them).  No-op (returns None)
    when no output target is configured.
    """
    out = json_output_path(experiment, path)
    if out is None:
        return None
    doc = {"experiment": experiment, "payload": payload}
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return out


def print_header(experiment: str, description: str,
                 device: DeviceSpec | None = None) -> None:
    bar = "=" * 72
    print(f"\n{bar}\n{experiment}: {description}\n{bar}")
    print(describe_environment(device or DeviceSpec()))


def format_table(headers: list[str], rows: list[list], width: int = 14) -> str:
    def fmt(v):
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)
    lines = ["  ".join(h.rjust(width) for h in headers)]
    for row in rows:
        lines.append("  ".join(fmt(v).rjust(width) for v in row))
    return "\n".join(lines)


def format_series(name: str, xs: list, ys: list[float], unit: str = "") -> str:
    pts = "  ".join(f"({x}, {y:.3f})" for x, y in zip(xs, ys))
    return f"{name} [{unit}]: {pts}"


@dataclass
class PaperComparison:
    """Collects (metric, paper value, measured value) triples and renders
    the comparison block each bench prints."""

    experiment: str
    entries: list[tuple[str, float, float]] = field(default_factory=list)

    def add(self, metric: str, paper: float, measured: float) -> None:
        self.entries.append((metric, paper, measured))

    def render(self) -> str:
        lines = [f"--- paper vs measured ({self.experiment}) ---"]
        for metric, paper, measured in self.entries:
            if paper != 0:
                delta = (measured - paper) / abs(paper) * 100.0
                lines.append(
                    f"{metric:46s} paper={paper:10.3f} measured={measured:10.3f} "
                    f"({delta:+.1f}%)")
            else:
                lines.append(
                    f"{metric:46s} paper={paper:10.3f} measured={measured:10.3f}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

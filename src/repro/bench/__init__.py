"""Benchmark harness helpers: paper-vs-measured tables and series output."""

from .harness import PaperComparison, format_series, format_table, print_header

__all__ = ["PaperComparison", "format_series", "format_table", "print_header"]

"""Benchmark harness helpers: paper-vs-measured tables, series output, and
the machine-readable ``--json`` report mode."""

from .harness import (
    JSON_ENV,
    PaperComparison,
    emit_json,
    format_series,
    format_table,
    json_output_path,
    print_header,
)

__all__ = [
    "JSON_ENV", "PaperComparison", "emit_json", "format_series",
    "format_table", "json_output_path", "print_header",
]

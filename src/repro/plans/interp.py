"""Functional plan interpreter.

Evaluates a logical plan over real relations with the NumPy operator
implementations -- the reference the optimized (fused) execution is checked
against.  Timing plays no role here.
"""

from __future__ import annotations

from ..errors import PlanError
from ..ra import arithmetic, operators
from ..ra.sort import sort as ra_sort, top_n as ra_top_n, unique as ra_unique
from ..ra.relation import Relation
from .plan import OpType, Plan, PlanNode


def evaluate(plan: Plan, sources: dict[str, Relation]) -> dict[str, Relation]:
    """Evaluate every node; returns {node name: result relation}."""
    plan.validate()
    results: dict[str, Relation] = {}
    for node in plan.topological():
        results[node.name] = _eval_node(node, results, sources)
    return results


def evaluate_sinks(plan: Plan, sources: dict[str, Relation]) -> dict[str, Relation]:
    """Evaluate the plan and return only the sink results."""
    results = evaluate(plan, sources)
    return {n.name: results[n.name] for n in plan.sinks()}


def _eval_node(node: PlanNode, results: dict[str, Relation],
               sources: dict[str, Relation]) -> Relation:
    ins = [results[i.name] for i in node.inputs]
    p = node.params
    if node.op is OpType.SOURCE:
        if node.name not in sources:
            raise PlanError(f"no input relation bound for source {node.name!r}")
        return sources[node.name]
    if node.op is OpType.SELECT:
        return operators.select(ins[0], p["predicate"])
    if node.op is OpType.PROJECT:
        return operators.project(ins[0], p["fields"])
    if node.op is OpType.JOIN:
        return operators.join(ins[0], ins[1], on=p.get("on"),
                              preserve_order=p.get("preserve_order", False))
    if node.op is OpType.LEFT_JOIN:
        return operators.left_join(ins[0], ins[1], on=p.get("on"),
                                   match_field=p.get("match_field", "__matched"))
    if node.op is OpType.SEMI_JOIN:
        return operators.semi_join(ins[0], ins[1], on=p.get("on"))
    if node.op is OpType.ANTI_JOIN:
        return operators.anti_join(ins[0], ins[1], on=p.get("on"))
    if node.op is OpType.UNION_ALL:
        return operators.union_all(ins[0], ins[1])
    if node.op is OpType.EXCEPT_ALL:
        return operators.except_all(ins[0], ins[1])
    if node.op is OpType.PRODUCT:
        return operators.product(ins[0], ins[1])
    if node.op is OpType.UNION:
        return operators.union(ins[0], ins[1])
    if node.op is OpType.INTERSECTION:
        return operators.intersection(ins[0], ins[1])
    if node.op is OpType.DIFFERENCE:
        return operators.difference(ins[0], ins[1])
    if node.op is OpType.SORT:
        return ra_sort(ins[0], by=p.get("by"), descending=p.get("descending", False))
    if node.op is OpType.TOP_N:
        return ra_top_n(ins[0], by=p["by"], n=p["n"],
                        descending=p.get("descending", False))
    if node.op is OpType.UNIQUE:
        return ra_unique(ins[0])
    if node.op is OpType.ARITH:
        return arithmetic.arith(ins[0], p["outputs"], keep=p.get("keep"))
    if node.op is OpType.AGGREGATE:
        return arithmetic.aggregate(ins[0], p["group_by"], p["aggs"])
    raise PlanError(f"unhandled op {node.op}")

"""EXPLAIN: human-readable plan trees with optimizer annotations.

Renders a logical plan as an indented tree, optionally overlaying

* estimated cardinalities (given source row counts),
* the fusion pass's region assignment, and
* per-node output-row bytes,

so a user can see at a glance what will fuse, what forms a barrier, and
where the data volume collapses.  Every edge is annotated with its
dependence class (``dep=elementwise`` / ``dep=barrier``) as derived by
:func:`repro.core.dependence.classify_edge` -- the same classification
the fusion pass (and the ``repro analyze`` fusion verifier) uses.
"""

from __future__ import annotations

from .plan import OpType, Plan, PlanNode


def _node_label(node: PlanNode, sizes: dict[str, int] | None,
                region_names: dict[str, str] | None) -> str:
    from ..core.opmodels import out_row_nbytes  # lazy: avoids an import cycle
    parts = [f"{node.op.value.upper()} {node.name}"]
    if node.op is OpType.SELECT and node.predicate is not None:
        try:
            from ..core.render import render_predicate
            parts.append(render_predicate(node.predicate))
        except Exception:
            pass
    if node.op is not OpType.SOURCE and node.selectivity != 1.0:
        parts.append(f"sel={node.selectivity:g}")
    if sizes is not None:
        parts.append(f"rows~{sizes[node.name]:,}")
    parts.append(f"row={out_row_nbytes(node)}B")
    if region_names is not None and node.name in region_names:
        parts.append(f"[{region_names[node.name]}]")
    return "  ".join(parts)


def explain(plan: Plan, source_rows: dict[str, int] | None = None,
            fused: bool = True) -> str:
    """The EXPLAIN text for a plan."""
    from ..core.fusion import fuse_plan  # lazy: avoids an import cycle
    plan.validate()
    sizes = None
    if source_rows is not None:
        from ..runtime.sizes import estimate_sizes
        sizes = estimate_sizes(plan, source_rows)

    region_names: dict[str, str] | None = None
    fusion = None
    if fused:
        fusion = fuse_plan(plan)
        region_names = {}
        for idx, region in enumerate(fusion.regions):
            if region.fused:
                tag = f"fused region {idx}"
            elif region.is_barrier_op:
                tag = f"barrier {idx}"
            else:
                tag = f"region {idx}"
            for node in region.nodes:
                region_names[node.name] = tag

    lines: list[str] = [f"plan {plan.name!r}"]

    from ..core.dependence import classify_edge  # lazy: avoids an import cycle

    def visit(node: PlanNode, depth: int, slot: str,
              dep: str | None = None) -> None:
        indent = "  " * depth + slot
        label = _node_label(node, sizes, region_names)
        if dep is not None:
            label += f"  dep={dep}"
        lines.append(indent + label)
        for i, inp in enumerate(node.inputs):
            child_slot = "<- " if i == 0 else "+= "
            visit(inp, depth + 1, child_slot,
                  dep=classify_edge(inp, node, i).value)

    for sink in plan.sinks():
        visit(sink, 1, "")

    if fusion is not None:
        lines.append("")
        lines.append(f"fusion: {fusion.num_fused_regions} fused region(s), "
                     f"{fusion.num_kernels_saved} kernel(s) eliminated")
    return "\n".join(lines)

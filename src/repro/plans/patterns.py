"""Detection of the paper's Figure 2 operator patterns.

The paper identifies eight frequently occurring operator combinations in
TPC-H that are candidates for fusion:

=====  ==========================================================
(a)    back-to-back SELECTs (e.g. date-range filters)
(b)    a cascade of JOINs building a wide table
(c)    several SELECTs filtering the *same* input
(d)    SELECT over fields produced by a JOIN
(e)    ARITH over fields produced by a JOIN
(f)    JOIN of two SELECT-ed tables
(g)    AGGREGATION over SELECT-ed data
(h)    ARITH followed by PROJECT discarding the sources
=====  ==========================================================

These matches feed the fusion pass's candidate discovery; they are also
reproduced as an experiment (tests + a pattern-census bench over Q1/Q21).
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import OpType, Plan, PlanNode

#: join-shaped operators: the figure draws JOIN, but semi/anti joins have
#: the same producer/consumer structure and fuse the same way
JOIN_LIKE = frozenset({OpType.JOIN, OpType.SEMI_JOIN, OpType.ANTI_JOIN})


@dataclass(frozen=True)
class PatternMatch:
    pattern: str          # 'a' .. 'h'
    nodes: tuple[PlanNode, ...]

    def node_names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self.nodes)


def find_patterns(plan: Plan) -> list[PatternMatch]:
    """All Figure-2 pattern instances in the plan, in topological order."""
    matches: list[PatternMatch] = []
    order = list(plan.topological())

    for node in order:
        # (a) SELECT -> SELECT
        if node.op is OpType.SELECT:
            for consumer in plan.consumers(node):
                if consumer.op is OpType.SELECT:
                    matches.append(PatternMatch("a", (node, consumer)))

        # (b) JOIN -> JOIN
        if node.op in JOIN_LIKE:
            for consumer in plan.consumers(node):
                if consumer.op in JOIN_LIKE:
                    matches.append(PatternMatch("b", (node, consumer)))

        # (c) one producer feeding >= 2 SELECTs
        selects = [c for c in plan.consumers(node) if c.op is OpType.SELECT]
        if len(selects) >= 2:
            matches.append(PatternMatch("c", (node, *selects)))

        # (d) JOIN -> SELECT, (e) JOIN -> ARITH
        if node.op in JOIN_LIKE:
            for consumer in plan.consumers(node):
                if consumer.op is OpType.SELECT:
                    matches.append(PatternMatch("d", (node, consumer)))
                if consumer.op is OpType.ARITH:
                    matches.append(PatternMatch("e", (node, consumer)))

        # (f) JOIN whose both inputs are SELECTs
        if node.op in JOIN_LIKE and len(node.inputs) == 2:
            left, right = node.inputs
            if left.op is OpType.SELECT and right.op is OpType.SELECT:
                matches.append(PatternMatch("f", (left, right, node)))

        # (g) SELECT -> AGGREGATE
        if node.op is OpType.SELECT:
            for consumer in plan.consumers(node):
                if consumer.op is OpType.AGGREGATE:
                    matches.append(PatternMatch("g", (node, consumer)))

        # (h) ARITH -> PROJECT discarding at least one source field
        if node.op is OpType.ARITH:
            for consumer in plan.consumers(node):
                if consumer.op is OpType.PROJECT:
                    kept = set(consumer.params.get("fields", []))
                    produced = set(node.params.get("outputs", {}))
                    used = set()
                    for expr in node.params.get("outputs", {}).values():
                        used |= expr.fields()
                    discards_source = bool(used - kept) or not used
                    if produced & kept and discards_source:
                        matches.append(PatternMatch("h", (node, consumer)))

    return matches


def pattern_census(plan: Plan) -> dict[str, int]:
    """Count of each Figure-2 pattern present in the plan."""
    census = {p: 0 for p in "abcdefgh"}
    for m in find_patterns(plan):
        census[m.pattern] += 1
    return census

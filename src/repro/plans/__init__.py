"""Logical query plans, functional interpretation, and pattern detection."""

from .distribute import DistributedPlan, ExchangeSpec, SourceDist, distribute_plan
from .explain import explain
from .interp import evaluate, evaluate_sinks
from .patterns import PatternMatch, find_patterns, pattern_census
from .plan import FUSION_BARRIER_OPS, OpType, Plan, PlanNode
from .rewrite import merge_selects, optimize_plan, prune_projects, reorder_selects

__all__ = [
    "explain", "evaluate", "evaluate_sinks", "PatternMatch", "find_patterns",
    "pattern_census", "FUSION_BARRIER_OPS", "OpType", "Plan", "PlanNode",
    "merge_selects", "optimize_plan", "prune_projects", "reorder_selects",
    "DistributedPlan", "ExchangeSpec", "SourceDist", "distribute_plan",
]

"""Plan-level distribution rewrite: one logical plan -> N shard-local plans
plus a host/exchange suffix.

The rewrite decides, statically and deterministically, how each source is
laid out across the cluster and which operators can run *shard-local*
(every shard computes its slice independently) versus *global* (needs data
from every shard).  The result is a :class:`DistributedPlan`: the original
plan annotated with a source distribution, the local/global split, the
**frontier** (the buffers that cross from the shard-local phase into the
global phase), and how the suffix past the frontier runs:

* ``none``     -- the whole plan is shard-local; the host only merges the
  per-shard sink outputs;
* ``exchange`` -- the single frontier buffer is repartitioned device ->
  host -> device on the suffix's group-by key, and the suffix itself runs
  shard-local on the re-partitioned data (TPC-H Q1: the wide
  select+gather intermediate is exchanged on ``(returnflag, linestatus)``
  so sort/arith/aggregate run per device);
* ``host``     -- the frontier is gathered to the host and the suffix is
  evaluated there (TPC-H Q21: only the tiny final count-aggregate + sort
  remain global).

Layout kinds per source:

* **partitioned** by a key tuple -- equal keys land on the same shard
  (hash/range of the key value), so key-matching joins stay local;
* **partitioned** positionally (``key=None``) -- row-aligned with the
  driver table and split by the same row-index sets (the Q1 column
  relations, all keyed by the implicit ``rowid``);
* **replicated** -- small tables copied whole to every shard (build sides
  of broadcast joins: Q21's supplier/nation).

Everything here is pure plan analysis -- no data moves; the cluster
executor (:mod:`repro.cluster`) interprets the result for both the timing
and the functional paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from .plan import OpType, Plan, PlanNode

#: sources no bigger than this fraction of the driver are replicated
REPLICATE_FRACTION = 0.125
#: below this many estimated frontier bytes an exchange is not worth its
#: staging round trip and the suffix runs on the host instead
EXCHANGE_MIN_BYTES = 1 << 20
#: rows a shard's streaming pre-aggregation combiner accumulates before
#: flushing a block of partial states to the exchange -- bounds on-device
#: combiner state and lets state blocks overlap the rest of the shard's
#: compute (the per-shard flush count is ``ceil(shard_rows / this)``, so
#: per-device exchange volume *shrinks* as shards shrink)
PREAGG_FLUSH_ROWS = 1 << 18
#: aggregate functions with a decomposable (partial, combine) split
_DECOMPOSABLE_AGGS = frozenset({"sum", "mean", "count", "min", "max"})
#: decomposable functions whose combine is also *bit-exact* (integer or
#: order-insensitive); float sums/means re-associate under partial
#: aggregation, so the functional path only pre-aggregates these
_EXACT_AGGS = frozenset({"count", "min", "max"})
#: per-aggregate partial-state bytes beyond the output column: mean
#: carries (sum, count) instead of one float
_EXTRA_STATE_BYTES = {"mean": 8}
#: how each decomposable aggregate's partial states re-reduce
_COMBINE_FUNC = {"count": "sum", "sum": "sum", "min": "min",
                 "max": "max", "mean": "mean"}

_JOIN_OPS = (OpType.JOIN, OpType.SEMI_JOIN, OpType.ANTI_JOIN,
             OpType.LEFT_JOIN)


def _probe_key(on) -> "str | None":
    """Probe-side join-key name from an ``on`` param (str or pair)."""
    if isinstance(on, tuple):
        return on[0]
    return on

#: a distribution is one of
#:   ("replicated",)          -- identical everywhere
#:   ("partitioned", key)     -- key: tuple[str, ...] | None (positional)
#:   None                     -- global (not shard-local)
Dist = "tuple | None"


@dataclass(frozen=True)
class SourceDist:
    """How one source table is laid out across the shards."""

    name: str
    kind: str                        # "partitioned" | "replicated" | "global"
    key: tuple[str, ...] | None      # partition key; None = positional
    rows: int


@dataclass(frozen=True)
class ExchangeSpec:
    """The shuffle the ``exchange`` suffix mode performs."""

    buffer: str                      # frontier node being repartitioned
    key: tuple[str, ...]             # repartition key (suffix group-by)
    row_nbytes: int
    est_rows: int
    #: distinct key-group estimate of the keyed suffix aggregate; the
    #: executor routes group ids to destinations with the same hash the
    #: functional repartition uses, so simulated destination sizes track
    #: the real per-destination group counts
    est_groups: int = 1

    @property
    def est_bytes(self) -> int:
        return self.est_rows * self.row_nbytes


@dataclass(frozen=True)
class PreAggSpec:
    """Partial aggregation pushed below the frontier cut.

    The suffix's keyed AGGREGATE splits into ``partial`` (per shard,
    below the cut -- together with the row-local/sort chain feeding it)
    and ``combine`` (above the cut), so shards exchange blocks of partial
    aggregate *states* instead of raw frontier rows.  A streaming
    combiner flushes one state block per :data:`PREAGG_FLUSH_ROWS` input
    rows, so a shard's outbound exchange volume is proportional to its
    row count and *decreases* as devices are added.
    """

    agg: str                         # the suffix AGGREGATE being split
    group_by: tuple[str, ...]
    est_groups: int
    state_row_nbytes: int
    #: partial -> combine is bit-exact (count/min/max); float sums and
    #: means re-associate, so when False the functional referee keeps the
    #: raw whole-group exchange and only the timing path prices states
    exact: bool
    #: suffix chain nodes lowered below the cut along with the partial
    lowered: tuple[str, ...] = ()

    @property
    def state_block_nbytes(self) -> int:
        """Bytes of one flush block (every group has a slot)."""
        return self.est_groups * self.state_row_nbytes

    def flushes(self, shard_rows: int | float) -> int:
        """State blocks a shard of `shard_rows` frontier rows emits."""
        return max(1, -(-int(shard_rows) // PREAGG_FLUSH_ROWS))


@dataclass(frozen=True)
class DistributedPlan:
    """A plan plus its cluster distribution decisions (see module doc)."""

    plan: Plan
    num_shards: int
    scheme: str                      # "hash" | "range" | "rr"
    seed: int
    driver: str
    partition_key: tuple[str, ...] | None
    sources: tuple[SourceDist, ...]
    local_names: frozenset[str]
    frontier: tuple[str, ...]        # non-source locals feeding globals
    suffix_sources: tuple[str, ...]  # sources read directly by the suffix
    suffix_mode: str                 # "none" | "exchange" | "host"
    exchange: ExchangeSpec | None
    driver_shard_rows: tuple[int, ...]
    notes: tuple[str, ...] = ()
    #: partial aggregation below the cut (None = raw frontier crosses)
    preagg: PreAggSpec | None = None
    #: how per-device partials reach the host: "flat" (serial host
    #: gather) or "tree" (pairwise device-level merge rounds, host
    #: touches only the root)
    merge: str = "flat"

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.plan.name}@x{self.num_shards}"

    def node(self, name: str) -> PlanNode:
        for n in self.plan.nodes:
            if n.name == name:
                return n
        raise PlanError(f"no node {name!r} in plan {self.plan.name!r}")

    def source_dist(self, name: str) -> SourceDist:
        for s in self.sources:
            if s.name == name:
                return s
        raise PlanError(f"no source {name!r} in plan {self.plan.name!r}")

    @property
    def global_names(self) -> frozenset[str]:
        return frozenset(n.name for n in self.plan.nodes
                         if n.name not in self.local_names)

    def local_sinks(self) -> tuple[str, ...]:
        """Shard-local nodes that are sinks of the *full* plan (their
        per-shard outputs are merged directly on the host)."""
        return tuple(n.name for n in self.plan.sinks()
                     if n.name in self.local_names
                     and n.op is not OpType.SOURCE)

    # -- subplan extraction --------------------------------------------
    def local_plan(self) -> Plan:
        """The shard-local subplan every shard runs (frontier nodes and
        local sinks are its sinks)."""
        byname = {n.name: n for n in self.plan.nodes}
        needed: set[str] = set(self.frontier) | set(self.local_sinks())
        stack = list(needed)
        while stack:
            node = byname[stack.pop()]
            for inp in node.inputs:
                if inp.name not in needed:
                    needed.add(inp.name)
                    stack.append(inp.name)
        sub = Plan(name=f"{self.plan.name}.local")
        mapped: dict[str, PlanNode] = {}
        for node in self.plan.topological():
            if node.name not in needed:
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub

    def suffix_plan(self) -> Plan:
        """The global subplan past the frontier.  Frontier buffers and
        suffix-read sources become its SOURCE nodes (same names, so the
        interpreter binds merged frontier relations directly)."""
        from ..core.opmodels import out_row_nbytes
        sub = Plan(name=f"{self.plan.name}.suffix")
        mapped: dict[str, PlanNode] = {}
        for name in self.frontier:
            node = self.node(name)
            mapped[name] = sub.source(name, row_nbytes=out_row_nbytes(node))
        for name in self.suffix_sources:
            node = self.node(name)
            mapped[name] = sub.source(
                name, row_nbytes=out_row_nbytes(node),
                n_rows=node.params.get("n_rows"))
        for node in self.plan.topological():
            if node.name in self.local_names or node.op is OpType.SOURCE:
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub

    # -- pre-aggregation subplans --------------------------------------
    def preagg_plan(self) -> Plan:
        """The lowered shard-local plan when :attr:`preagg` is set: the
        local prefix, the lowered suffix chain, and the *partial* half of
        the split aggregate (named ``<agg>.partial``).  The frontier
        buffer is consumed on-device, so only state blocks leave."""
        if self.preagg is None:
            raise PlanError(f"plan {self.plan.name!r} has no pre-agg")
        sub = self.local_plan()
        sub.name = f"{self.plan.name}.preagg"
        byname = {n.name: n for n in sub.nodes}
        for name in (*self.preagg.lowered, self.preagg.agg):
            node = self.node(name)
            new_name = (f"{name}.partial" if name == self.preagg.agg
                        else name)
            byname[name] = sub._add(PlanNode(
                node.op, new_name,
                [byname[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub

    def combine_plan(self) -> Plan:
        """The global half when :attr:`preagg` is set: a SOURCE of
        partial-state rows (``<agg>.partial``), the combine aggregate
        (under the original aggregate's name, so downstream suffix nodes
        bind unchanged), and whatever follows the aggregate."""
        if self.preagg is None:
            raise PlanError(f"plan {self.plan.name!r} has no pre-agg")
        agg_node = self.node(self.preagg.agg)
        combine_aggs = combine_agg_specs(agg_node)
        sub = Plan(name=f"{self.plan.name}.combine")
        src = sub.source(f"{self.preagg.agg}.partial",
                         row_nbytes=self.preagg.state_row_nbytes)
        mapped: dict[str, PlanNode] = {self.preagg.agg: sub._add(PlanNode(
            OpType.AGGREGATE, self.preagg.agg, [src],
            params={"group_by": list(self.preagg.group_by),
                    "aggs": combine_aggs,
                    "n_groups": agg_node.params.get("n_groups")},
            selectivity=agg_node.selectivity))}
        skip = set(self.preagg.lowered) | {self.preagg.agg}
        for node in self.plan.topological():
            if (node.name in self.local_names or node.op is OpType.SOURCE
                    or node.name in skip):
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub

    def post_plan(self) -> Plan:
        """Suffix nodes strictly past the split aggregate, with the
        aggregate's output as a SOURCE (the functional combine path binds
        the tree-combined states there).  With no such nodes the plan is
        just the source and the aggregate output is the sink."""
        from ..core.opmodels import out_row_nbytes
        if self.preagg is None:
            raise PlanError(f"plan {self.plan.name!r} has no pre-agg")
        agg_node = self.node(self.preagg.agg)
        sub = Plan(name=f"{self.plan.name}.post")
        mapped: dict[str, PlanNode] = {self.preagg.agg: sub.source(
            self.preagg.agg, row_nbytes=out_row_nbytes(agg_node))}
        skip = set(self.preagg.lowered) | {self.preagg.agg}
        for node in self.plan.topological():
            if (node.name in self.local_names or node.op is OpType.SOURCE
                    or node.name in skip):
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub


def combine_agg_specs(agg_node: PlanNode) -> dict:
    """The combine half of a decomposable aggregate's (partial, combine)
    split: partial states combine field-wise -- counts and sums add,
    min/max re-reduce.  Mean-of-means only appears on the timing path
    (``exact=False`` keeps the functional referee on the raw exchange)."""
    from ..ra.arithmetic import AggSpec
    return {name: AggSpec(_COMBINE_FUNC[spec.func], name)
            for name, spec in agg_node.params["aggs"].items()}


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

def _source_rows(node: PlanNode, source_rows: dict[str, int]) -> int:
    if node.name in source_rows:
        return int(source_rows[node.name])
    if node.params.get("n_rows") is not None:
        return int(node.params["n_rows"])
    raise PlanError(f"no row count for source {node.name!r}")


def _reaches_through_unary(plan: Plan, src: PlanNode, node: PlanNode) -> bool:
    """Is `node` derived from `src` through row-preserving unary ops only?"""
    cur = node
    while cur.op in (OpType.SELECT, OpType.PROJECT, OpType.ARITH):
        cur = cur.inputs[0]
    return cur is src


def _joined_on(plan: Plan, src: PlanNode, key: tuple[str, ...]) -> bool:
    """Does some key-join probe a unary-derived view of `src` on `key`?"""
    if len(key) != 1:
        return False
    for node in plan.nodes:
        if (node.op in _JOIN_OPS
                and _probe_key(node.params.get("on")) == key[0]):
            if any(_reaches_through_unary(plan, src, inp)
                   for inp in node.inputs):
                return True
    return False


def _node_dist(node: PlanNode, ins: list, sort_local: bool = False):
    """Distribution of a non-source node given its inputs' distributions."""
    if any(d is None for d in ins):
        return None
    if all(d == ("replicated",) for d in ins):
        return ("replicated",)
    op = node.op
    if op in (OpType.SELECT, OpType.PROJECT, OpType.ARITH):
        return ins[0]
    if op in _JOIN_OPS:
        left, right = ins
        if left[0] != "partitioned":
            return None                      # replicated probe of a shard
        if right == ("replicated",):
            return left                      # broadcast build side
        lk, rk = left[1], right[1]
        if node.params.get("gather") and lk is None and rk is None:
            return ("partitioned", None)     # row-aligned column gather
        on = node.params.get("on")
        if isinstance(on, tuple):
            # differently-named equi-keys cannot be statically proven
            # co-partitioned (the partitioner hashes by column name)
            return None
        if on is not None and lk is not None and lk == rk and set(lk) == {on}:
            return ("partitioned", lk)       # co-partitioned key join
        return None
    if op is OpType.PRODUCT:
        left, right = ins
        if left[0] == "partitioned" and right == ("replicated",):
            return left
        return None
    if op is OpType.UNION:
        left, right = ins
        if left[0] == "partitioned" and left == right and left[1] is not None:
            return left
        return None                          # replicated arm would duplicate
    if op in (OpType.INTERSECTION, OpType.DIFFERENCE):
        left, right = ins
        if left[0] != "partitioned":
            return None
        if right == ("replicated",):
            return left
        # equal tuples share the key, hence the shard
        if left == right and left[1] is not None:
            return left
        return None
    if op is OpType.AGGREGATE:
        d = ins[0]
        if d[0] != "partitioned" or d[1] is None:
            return None
        group_by = node.params.get("group_by") or []
        return d if set(d[1]) <= set(group_by) else None
    if op is OpType.UNIQUE:
        d = ins[0]
        # duplicates share the key, hence the shard (positional splits
        # scatter duplicates, so those stay global)
        if d[0] == "partitioned" and d[1] is not None:
            return d
        return None
    if op is OpType.SORT:
        d = ins[0]
        if sort_local and d[0] == "partitioned" and d[1] is not None:
            by = node.params.get("by") or []
            if set(d[1]) <= set(by):
                return d                     # whole key-groups per shard
        return None
    return None


def _classify(plan: Plan, driver: PlanNode, key: tuple[str, ...] | None,
              source_rows: dict[str, int], replicate_fraction: float):
    """Per-node distribution map for one candidate partition key."""
    driver_rows = _source_rows(driver, source_rows)
    dist: dict[str, object] = {}
    for src in plan.sources():
        rows = _source_rows(src, source_rows)
        if src is driver:
            dist[src.name] = ("partitioned", key)
        elif rows <= replicate_fraction * driver_rows:
            dist[src.name] = ("replicated",)
        elif key is None and rows == driver_rows:
            dist[src.name] = ("partitioned", None)
        elif key is not None and _joined_on(plan, src, key):
            dist[src.name] = ("partitioned", key)
        else:
            dist[src.name] = None
    forced_global: set[str] = set()
    while True:
        for node in plan.topological():
            if node.op is OpType.SOURCE:
                continue
            if node.name in forced_global:
                dist[node.name] = None
            else:
                dist[node.name] = _node_dist(
                    node, [dist[i.name] for i in node.inputs])
        # a non-source local feeding both local and global consumers would
        # not be a sink of the local subplan; demote it (and, via the
        # re-classification above, its local consumers) to global
        newly = set()
        for node in plan.nodes:
            if node.op is OpType.SOURCE or dist[node.name] is None:
                continue
            cons = plan.consumers(node)
            if (cons and any(dist[c.name] is None for c in cons)
                    and any(dist[c.name] is not None for c in cons)):
                newly.add(node.name)
        if not newly:
            return dist
        forced_global |= newly


def _candidate_keys(plan: Plan) -> list[tuple[str, ...] | None]:
    """Partition-key candidates: single join keys and single-column
    group-bys, deduped in first-appearance order; positional last."""
    cands: list[tuple[str, ...] | None] = []
    for node in plan.topological():
        if (node.op in _JOIN_OPS and node.params.get("on")
                and not node.params.get("gather")):
            cands.append((_probe_key(node.params["on"]),))
        if node.op is OpType.AGGREGATE:
            group_by = node.params.get("group_by") or []
            if len(group_by) == 1:
                cands.append(tuple(group_by))
    seen: set = set()
    uniq = [c for c in cands if not (c in seen or seen.add(c))]
    uniq.append(None)
    return uniq


def _even_counts(n_rows: int, num_shards: int) -> tuple[int, ...]:
    base, extra = divmod(int(n_rows), num_shards)
    return tuple(base + (1 if i < extra else 0) for i in range(num_shards))


# ---------------------------------------------------------------------------
# pre-aggregation detection
# ---------------------------------------------------------------------------

def find_preagg(dist: "DistributedPlan") -> PreAggSpec | None:
    """A :class:`PreAggSpec` for `dist`'s suffix, or None.

    Pre-aggregation applies when the global suffix reads exactly one
    frontier buffer (no whole-source reads), and the frontier feeds a
    linear chain of row-local ops (SELECT/PROJECT/ARITH) or SORTs ending
    at a keyed AGGREGATE whose functions all decompose into
    (partial, combine).  The chain and the partial half then run below
    the cut, per shard: row-local ops commute with sharding, a sort
    feeding only the aggregate's grouping is order-insensitive to it,
    and the combine re-reduces partial states above the cut.

    Exported for :mod:`repro.analyze.cluster_lints` (CLU406 flags
    hand-built distributions that skip a detectable opportunity).
    """
    from ..core.opmodels import out_row_nbytes
    if dist.suffix_mode not in ("exchange", "host"):
        return None
    if len(dist.frontier) != 1 or dist.suffix_sources:
        return None
    plan = dist.plan
    cur = dist.node(dist.frontier[0])
    lowered: list[str] = []
    agg: PlanNode | None = None
    while agg is None:
        nexts = [c for c in plan.consumers(cur)
                 if c.name not in dist.local_names]
        if len(nexts) != 1 or len(nexts[0].inputs) != 1:
            return None
        cur = nexts[0]
        if cur.op is OpType.AGGREGATE:
            agg = cur
        elif cur.op in (OpType.SELECT, OpType.PROJECT, OpType.ARITH,
                        OpType.SORT):
            lowered.append(cur.name)
        else:
            return None
    group_by = tuple(agg.params.get("group_by") or ())
    aggs = agg.params.get("aggs") or {}
    if not group_by or not aggs:
        return None
    funcs = [spec.func for spec in aggs.values()]
    if any(f not in _DECOMPOSABLE_AGGS for f in funcs):
        return None
    n_groups = agg.params.get("n_groups")
    if n_groups is None:
        from ..runtime.sizes import estimate_sizes
        rows = {s.name: s.rows for s in dist.sources}
        n_groups = int(estimate_sizes(plan, rows).get(agg.name, 1))
    state_row = (out_row_nbytes(agg)
                 + sum(_EXTRA_STATE_BYTES.get(f, 0) for f in funcs))
    return PreAggSpec(
        agg=agg.name, group_by=group_by, est_groups=max(1, int(n_groups)),
        state_row_nbytes=int(state_row),
        exact=all(f in _EXACT_AGGS for f in funcs),
        lowered=tuple(lowered))


# ---------------------------------------------------------------------------
# the rewrite
# ---------------------------------------------------------------------------

def distribute_plan(plan: Plan, source_rows: dict[str, int], num_shards: int,
                    scheme: str = "hash", seed: int = 0,
                    replicate_fraction: float = REPLICATE_FRACTION,
                    exchange_min_bytes: int = EXCHANGE_MIN_BYTES,
                    preagg: bool = True, merge: str | None = None
                    ) -> DistributedPlan:
    """Distribute `plan` over `num_shards` shards (see module docstring).

    Deterministic: the chosen driver, partition key, local/global split
    and suffix mode are pure functions of the plan shape, the row counts,
    and the arguments.  ``preagg=False`` disables the partial-aggregation
    lowering (:func:`find_preagg`); ``merge`` overrides the host-merge
    strategy ("flat"/"tree", default: tree whenever pre-agg applies).
    """
    plan.validate()
    if num_shards < 1:
        raise PlanError(f"num_shards must be >= 1, got {num_shards}")
    if scheme not in ("hash", "range", "rr"):
        raise PlanError(f"unknown partition scheme {scheme!r}")
    from ..core.opmodels import out_row_nbytes
    from ..runtime.sizes import estimate_sizes

    sources = plan.sources()
    if not sources:
        raise PlanError(f"plan {plan.name!r} has no sources")
    driver = max(sources,
                 key=lambda s: _source_rows(s, source_rows) * out_row_nbytes(s))

    best_key: tuple[str, ...] | None = None
    best_dist: dict | None = None
    best_score = -1
    for key in _candidate_keys(plan):
        dist = _classify(plan, driver, key, source_rows, replicate_fraction)
        score = sum(1 for n in plan.nodes
                    if n.op is not OpType.SOURCE and dist[n.name] is not None)
        if score > best_score:
            best_key, best_dist, best_score = key, dist, score
    dist = best_dist or {}

    local_names = frozenset(n for n, d in dist.items() if d is not None)
    notes: list[str] = []
    source_dists = []
    for src in sources:
        d = dist[src.name]
        if d is None:
            kind, skey = "global", None
            notes.append(f"source {src.name} read whole by the suffix")
        elif d == ("replicated",):
            kind, skey = "replicated", None
        else:
            kind, skey = "partitioned", d[1]
        source_dists.append(SourceDist(
            src.name, kind, skey, _source_rows(src, source_rows)))

    frontier: list[str] = []
    suffix_sources: list[str] = []
    for node in plan.topological():
        if dist[node.name] is None:
            if node.op is OpType.SOURCE:
                suffix_sources.append(node.name)
            continue
        cons = plan.consumers(node)
        if not any(dist[c.name] is None for c in cons):
            continue
        if node.op is OpType.SOURCE:
            # the host owns every source; the suffix reads it directly
            # rather than gathering shard slices back
            suffix_sources.append(node.name)
        else:
            frontier.append(node.name)

    has_global = any(dist[n.name] is None for n in plan.nodes)
    exchange: ExchangeSpec | None = None
    if not has_global:
        suffix_mode = "none"
    else:
        suffix_mode = "host"
        if len(frontier) == 1 and not suffix_sources:
            fname = frontier[0]
            fnode = next(n for n in plan.nodes if n.name == fname)
            exchange = _try_exchange(plan, dist, fnode, source_rows,
                                     out_row_nbytes, estimate_sizes,
                                     exchange_min_bytes)
            if exchange is not None:
                suffix_mode = "exchange"
                notes.append(
                    f"exchange {fname} on {'/'.join(exchange.key)} "
                    f"(~{exchange.est_bytes >> 20} MiB)")

    if merge is not None and merge not in ("flat", "tree"):
        raise PlanError(f"unknown merge strategy {merge!r}")
    dist = DistributedPlan(
        plan=plan, num_shards=num_shards, scheme=scheme, seed=seed,
        driver=driver.name, partition_key=best_key,
        sources=tuple(source_dists), local_names=local_names,
        frontier=tuple(frontier), suffix_sources=tuple(suffix_sources),
        suffix_mode=suffix_mode, exchange=exchange,
        driver_shard_rows=_even_counts(
            _source_rows(driver, source_rows), num_shards),
        notes=tuple(notes), merge=merge or "flat")
    if preagg:
        spec = find_preagg(dist)
        if spec is not None:
            import dataclasses
            dist = dataclasses.replace(
                dist, preagg=spec, merge=merge or "tree",
                notes=dist.notes + (
                    f"pre-aggregate {spec.agg} below the cut "
                    f"({'exact' if spec.exact else 'timing-only'}; "
                    f"~{spec.est_groups} groups x "
                    f"{spec.state_row_nbytes} B states); "
                    f"{merge or 'tree'} merge",))
    return dist


def _try_exchange(plan: Plan, dist: dict, fnode: PlanNode,
                  source_rows: dict[str, int], out_row_nbytes, estimate_sizes,
                  exchange_min_bytes: int) -> ExchangeSpec | None:
    """Can the suffix past `fnode` run shard-local after repartitioning
    `fnode`'s buffer on the suffix's group-by key?

    Requirements (each guards byte-identity of the merged result, see
    docs/CLUSTER.md):

    * repartition key = group-by of the first suffix aggregate, so whole
      groups land on one destination;
    * every suffix node classifies shard-local under that partitioning
      (sorts may stay local when the partition key is a prefix-set of the
      sort key -- groups are then per-shard units);
    * every suffix sink is an AGGREGATE whose group-by contains the key,
      so the host merge is a disjoint-group sorted concat (exact);
    * the buffer is big enough to pay for the staging round trip.
    """
    suffix_nodes = [n for n in plan.topological()
                    if dist[n.name] is None and n.op is not OpType.SOURCE]
    key: tuple[str, ...] | None = None
    key_agg: PlanNode | None = None
    for node in suffix_nodes:
        if node.op is OpType.AGGREGATE:
            group_by = node.params.get("group_by") or []
            if group_by:
                key = tuple(group_by)
                key_agg = node
            break
    if key is None:
        return None
    sim: dict[str, object] = {fnode.name: ("partitioned", key)}
    for node in suffix_nodes:
        ins = []
        for inp in node.inputs:
            if inp.name not in sim:
                return None              # a second external input
            ins.append(sim[inp.name])
        d = _node_dist(node, ins, sort_local=True)
        if d is None:
            return None
        sim[node.name] = d
    for node in plan.sinks():
        if dist[node.name] is not None:
            continue
        if node.op is not OpType.AGGREGATE:
            return None
        if not set(key) <= set(node.params.get("group_by") or []):
            return None
    est = estimate_sizes(plan, source_rows)
    row_bytes = out_row_nbytes(fnode)
    est_rows = int(est.get(fnode.name, 0))
    if est_rows * row_bytes < exchange_min_bytes:
        return None
    est_groups = key_agg.params.get("n_groups")
    if est_groups is None:
        est_groups = int(est.get(key_agg.name, 1))
    return ExchangeSpec(buffer=fnode.name, key=key, row_nbytes=row_bytes,
                        est_rows=est_rows, est_groups=max(1, int(est_groups)))

"""Plan-level distribution rewrite: one logical plan -> N shard-local plans
plus a host/exchange suffix.

The rewrite decides, statically and deterministically, how each source is
laid out across the cluster and which operators can run *shard-local*
(every shard computes its slice independently) versus *global* (needs data
from every shard).  The result is a :class:`DistributedPlan`: the original
plan annotated with a source distribution, the local/global split, the
**frontier** (the buffers that cross from the shard-local phase into the
global phase), and how the suffix past the frontier runs:

* ``none``     -- the whole plan is shard-local; the host only merges the
  per-shard sink outputs;
* ``exchange`` -- the single frontier buffer is repartitioned device ->
  host -> device on the suffix's group-by key, and the suffix itself runs
  shard-local on the re-partitioned data (TPC-H Q1: the wide
  select+gather intermediate is exchanged on ``(returnflag, linestatus)``
  so sort/arith/aggregate run per device);
* ``host``     -- the frontier is gathered to the host and the suffix is
  evaluated there (TPC-H Q21: only the tiny final count-aggregate + sort
  remain global).

Layout kinds per source:

* **partitioned** by a key tuple -- equal keys land on the same shard
  (hash/range of the key value), so key-matching joins stay local;
* **partitioned** positionally (``key=None``) -- row-aligned with the
  driver table and split by the same row-index sets (the Q1 column
  relations, all keyed by the implicit ``rowid``);
* **replicated** -- small tables copied whole to every shard (build sides
  of broadcast joins: Q21's supplier/nation).

Everything here is pure plan analysis -- no data moves; the cluster
executor (:mod:`repro.cluster`) interprets the result for both the timing
and the functional paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from .plan import OpType, Plan, PlanNode

#: sources no bigger than this fraction of the driver are replicated
REPLICATE_FRACTION = 0.125
#: below this many estimated frontier bytes an exchange is not worth its
#: staging round trip and the suffix runs on the host instead
EXCHANGE_MIN_BYTES = 1 << 20

_JOIN_OPS = (OpType.JOIN, OpType.SEMI_JOIN, OpType.ANTI_JOIN)

#: a distribution is one of
#:   ("replicated",)          -- identical everywhere
#:   ("partitioned", key)     -- key: tuple[str, ...] | None (positional)
#:   None                     -- global (not shard-local)
Dist = "tuple | None"


@dataclass(frozen=True)
class SourceDist:
    """How one source table is laid out across the shards."""

    name: str
    kind: str                        # "partitioned" | "replicated" | "global"
    key: tuple[str, ...] | None      # partition key; None = positional
    rows: int


@dataclass(frozen=True)
class ExchangeSpec:
    """The shuffle the ``exchange`` suffix mode performs."""

    buffer: str                      # frontier node being repartitioned
    key: tuple[str, ...]             # repartition key (suffix group-by)
    row_nbytes: int
    est_rows: int

    @property
    def est_bytes(self) -> int:
        return self.est_rows * self.row_nbytes


@dataclass(frozen=True)
class DistributedPlan:
    """A plan plus its cluster distribution decisions (see module doc)."""

    plan: Plan
    num_shards: int
    scheme: str                      # "hash" | "range" | "rr"
    seed: int
    driver: str
    partition_key: tuple[str, ...] | None
    sources: tuple[SourceDist, ...]
    local_names: frozenset[str]
    frontier: tuple[str, ...]        # non-source locals feeding globals
    suffix_sources: tuple[str, ...]  # sources read directly by the suffix
    suffix_mode: str                 # "none" | "exchange" | "host"
    exchange: ExchangeSpec | None
    driver_shard_rows: tuple[int, ...]
    notes: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.plan.name}@x{self.num_shards}"

    def node(self, name: str) -> PlanNode:
        for n in self.plan.nodes:
            if n.name == name:
                return n
        raise PlanError(f"no node {name!r} in plan {self.plan.name!r}")

    def source_dist(self, name: str) -> SourceDist:
        for s in self.sources:
            if s.name == name:
                return s
        raise PlanError(f"no source {name!r} in plan {self.plan.name!r}")

    @property
    def global_names(self) -> frozenset[str]:
        return frozenset(n.name for n in self.plan.nodes
                         if n.name not in self.local_names)

    def local_sinks(self) -> tuple[str, ...]:
        """Shard-local nodes that are sinks of the *full* plan (their
        per-shard outputs are merged directly on the host)."""
        return tuple(n.name for n in self.plan.sinks()
                     if n.name in self.local_names
                     and n.op is not OpType.SOURCE)

    # -- subplan extraction --------------------------------------------
    def local_plan(self) -> Plan:
        """The shard-local subplan every shard runs (frontier nodes and
        local sinks are its sinks)."""
        byname = {n.name: n for n in self.plan.nodes}
        needed: set[str] = set(self.frontier) | set(self.local_sinks())
        stack = list(needed)
        while stack:
            node = byname[stack.pop()]
            for inp in node.inputs:
                if inp.name not in needed:
                    needed.add(inp.name)
                    stack.append(inp.name)
        sub = Plan(name=f"{self.plan.name}.local")
        mapped: dict[str, PlanNode] = {}
        for node in self.plan.topological():
            if node.name not in needed:
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub

    def suffix_plan(self) -> Plan:
        """The global subplan past the frontier.  Frontier buffers and
        suffix-read sources become its SOURCE nodes (same names, so the
        interpreter binds merged frontier relations directly)."""
        from ..core.opmodels import out_row_nbytes
        sub = Plan(name=f"{self.plan.name}.suffix")
        mapped: dict[str, PlanNode] = {}
        for name in self.frontier:
            node = self.node(name)
            mapped[name] = sub.source(name, row_nbytes=out_row_nbytes(node))
        for name in self.suffix_sources:
            node = self.node(name)
            mapped[name] = sub.source(
                name, row_nbytes=out_row_nbytes(node),
                n_rows=node.params.get("n_rows"))
        for node in self.plan.topological():
            if node.name in self.local_names or node.op is OpType.SOURCE:
                continue
            mapped[node.name] = sub._add(PlanNode(
                node.op, node.name,
                [mapped[i.name] for i in node.inputs],
                params=dict(node.params), selectivity=node.selectivity,
                out_row_nbytes=node.out_row_nbytes))
        return sub


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

def _source_rows(node: PlanNode, source_rows: dict[str, int]) -> int:
    if node.name in source_rows:
        return int(source_rows[node.name])
    if node.params.get("n_rows") is not None:
        return int(node.params["n_rows"])
    raise PlanError(f"no row count for source {node.name!r}")


def _reaches_through_unary(plan: Plan, src: PlanNode, node: PlanNode) -> bool:
    """Is `node` derived from `src` through row-preserving unary ops only?"""
    cur = node
    while cur.op in (OpType.SELECT, OpType.PROJECT, OpType.ARITH):
        cur = cur.inputs[0]
    return cur is src


def _joined_on(plan: Plan, src: PlanNode, key: tuple[str, ...]) -> bool:
    """Does some key-join probe a unary-derived view of `src` on `key`?"""
    if len(key) != 1:
        return False
    for node in plan.nodes:
        if node.op in _JOIN_OPS and node.params.get("on") == key[0]:
            if any(_reaches_through_unary(plan, src, inp)
                   for inp in node.inputs):
                return True
    return False


def _node_dist(node: PlanNode, ins: list, sort_local: bool = False):
    """Distribution of a non-source node given its inputs' distributions."""
    if any(d is None for d in ins):
        return None
    if all(d == ("replicated",) for d in ins):
        return ("replicated",)
    op = node.op
    if op in (OpType.SELECT, OpType.PROJECT, OpType.ARITH):
        return ins[0]
    if op in _JOIN_OPS:
        left, right = ins
        if left[0] != "partitioned":
            return None                      # replicated probe of a shard
        if right == ("replicated",):
            return left                      # broadcast build side
        lk, rk = left[1], right[1]
        if node.params.get("gather") and lk is None and rk is None:
            return ("partitioned", None)     # row-aligned column gather
        on = node.params.get("on")
        if on is not None and lk is not None and lk == rk and set(lk) == {on}:
            return ("partitioned", lk)       # co-partitioned key join
        return None
    if op is OpType.PRODUCT:
        left, right = ins
        if left[0] == "partitioned" and right == ("replicated",):
            return left
        return None
    if op is OpType.UNION:
        left, right = ins
        if left[0] == "partitioned" and left == right and left[1] is not None:
            return left
        return None                          # replicated arm would duplicate
    if op in (OpType.INTERSECTION, OpType.DIFFERENCE):
        left, right = ins
        if left[0] != "partitioned":
            return None
        if right == ("replicated",):
            return left
        # equal tuples share the key, hence the shard
        if left == right and left[1] is not None:
            return left
        return None
    if op is OpType.AGGREGATE:
        d = ins[0]
        if d[0] != "partitioned" or d[1] is None:
            return None
        group_by = node.params.get("group_by") or []
        return d if set(d[1]) <= set(group_by) else None
    if op is OpType.UNIQUE:
        d = ins[0]
        # duplicates share the key, hence the shard (positional splits
        # scatter duplicates, so those stay global)
        if d[0] == "partitioned" and d[1] is not None:
            return d
        return None
    if op is OpType.SORT:
        d = ins[0]
        if sort_local and d[0] == "partitioned" and d[1] is not None:
            by = node.params.get("by") or []
            if set(d[1]) <= set(by):
                return d                     # whole key-groups per shard
        return None
    return None


def _classify(plan: Plan, driver: PlanNode, key: tuple[str, ...] | None,
              source_rows: dict[str, int], replicate_fraction: float):
    """Per-node distribution map for one candidate partition key."""
    driver_rows = _source_rows(driver, source_rows)
    dist: dict[str, object] = {}
    for src in plan.sources():
        rows = _source_rows(src, source_rows)
        if src is driver:
            dist[src.name] = ("partitioned", key)
        elif rows <= replicate_fraction * driver_rows:
            dist[src.name] = ("replicated",)
        elif key is None and rows == driver_rows:
            dist[src.name] = ("partitioned", None)
        elif key is not None and _joined_on(plan, src, key):
            dist[src.name] = ("partitioned", key)
        else:
            dist[src.name] = None
    forced_global: set[str] = set()
    while True:
        for node in plan.topological():
            if node.op is OpType.SOURCE:
                continue
            if node.name in forced_global:
                dist[node.name] = None
            else:
                dist[node.name] = _node_dist(
                    node, [dist[i.name] for i in node.inputs])
        # a non-source local feeding both local and global consumers would
        # not be a sink of the local subplan; demote it (and, via the
        # re-classification above, its local consumers) to global
        newly = set()
        for node in plan.nodes:
            if node.op is OpType.SOURCE or dist[node.name] is None:
                continue
            cons = plan.consumers(node)
            if (cons and any(dist[c.name] is None for c in cons)
                    and any(dist[c.name] is not None for c in cons)):
                newly.add(node.name)
        if not newly:
            return dist
        forced_global |= newly


def _candidate_keys(plan: Plan) -> list[tuple[str, ...] | None]:
    """Partition-key candidates: single join keys and single-column
    group-bys, deduped in first-appearance order; positional last."""
    cands: list[tuple[str, ...] | None] = []
    for node in plan.topological():
        if (node.op in _JOIN_OPS and node.params.get("on")
                and not node.params.get("gather")):
            cands.append((node.params["on"],))
        if node.op is OpType.AGGREGATE:
            group_by = node.params.get("group_by") or []
            if len(group_by) == 1:
                cands.append(tuple(group_by))
    seen: set = set()
    uniq = [c for c in cands if not (c in seen or seen.add(c))]
    uniq.append(None)
    return uniq


def _even_counts(n_rows: int, num_shards: int) -> tuple[int, ...]:
    base, extra = divmod(int(n_rows), num_shards)
    return tuple(base + (1 if i < extra else 0) for i in range(num_shards))


# ---------------------------------------------------------------------------
# the rewrite
# ---------------------------------------------------------------------------

def distribute_plan(plan: Plan, source_rows: dict[str, int], num_shards: int,
                    scheme: str = "hash", seed: int = 0,
                    replicate_fraction: float = REPLICATE_FRACTION,
                    exchange_min_bytes: int = EXCHANGE_MIN_BYTES
                    ) -> DistributedPlan:
    """Distribute `plan` over `num_shards` shards (see module docstring).

    Deterministic: the chosen driver, partition key, local/global split
    and suffix mode are pure functions of the plan shape, the row counts,
    and the arguments.
    """
    plan.validate()
    if num_shards < 1:
        raise PlanError(f"num_shards must be >= 1, got {num_shards}")
    if scheme not in ("hash", "range", "rr"):
        raise PlanError(f"unknown partition scheme {scheme!r}")
    from ..core.opmodels import out_row_nbytes
    from ..runtime.sizes import estimate_sizes

    sources = plan.sources()
    if not sources:
        raise PlanError(f"plan {plan.name!r} has no sources")
    driver = max(sources,
                 key=lambda s: _source_rows(s, source_rows) * out_row_nbytes(s))

    best_key: tuple[str, ...] | None = None
    best_dist: dict | None = None
    best_score = -1
    for key in _candidate_keys(plan):
        dist = _classify(plan, driver, key, source_rows, replicate_fraction)
        score = sum(1 for n in plan.nodes
                    if n.op is not OpType.SOURCE and dist[n.name] is not None)
        if score > best_score:
            best_key, best_dist, best_score = key, dist, score
    dist = best_dist or {}

    local_names = frozenset(n for n, d in dist.items() if d is not None)
    notes: list[str] = []
    source_dists = []
    for src in sources:
        d = dist[src.name]
        if d is None:
            kind, skey = "global", None
            notes.append(f"source {src.name} read whole by the suffix")
        elif d == ("replicated",):
            kind, skey = "replicated", None
        else:
            kind, skey = "partitioned", d[1]
        source_dists.append(SourceDist(
            src.name, kind, skey, _source_rows(src, source_rows)))

    frontier: list[str] = []
    suffix_sources: list[str] = []
    for node in plan.topological():
        if dist[node.name] is None:
            if node.op is OpType.SOURCE:
                suffix_sources.append(node.name)
            continue
        cons = plan.consumers(node)
        if not any(dist[c.name] is None for c in cons):
            continue
        if node.op is OpType.SOURCE:
            # the host owns every source; the suffix reads it directly
            # rather than gathering shard slices back
            suffix_sources.append(node.name)
        else:
            frontier.append(node.name)

    has_global = any(dist[n.name] is None for n in plan.nodes)
    exchange: ExchangeSpec | None = None
    if not has_global:
        suffix_mode = "none"
    else:
        suffix_mode = "host"
        if len(frontier) == 1 and not suffix_sources:
            fname = frontier[0]
            fnode = next(n for n in plan.nodes if n.name == fname)
            exchange = _try_exchange(plan, dist, fnode, source_rows,
                                     out_row_nbytes, estimate_sizes,
                                     exchange_min_bytes)
            if exchange is not None:
                suffix_mode = "exchange"
                notes.append(
                    f"exchange {fname} on {'/'.join(exchange.key)} "
                    f"(~{exchange.est_bytes >> 20} MiB)")

    return DistributedPlan(
        plan=plan, num_shards=num_shards, scheme=scheme, seed=seed,
        driver=driver.name, partition_key=best_key,
        sources=tuple(source_dists), local_names=local_names,
        frontier=tuple(frontier), suffix_sources=tuple(suffix_sources),
        suffix_mode=suffix_mode, exchange=exchange,
        driver_shard_rows=_even_counts(
            _source_rows(driver, source_rows), num_shards),
        notes=tuple(notes))


def _try_exchange(plan: Plan, dist: dict, fnode: PlanNode,
                  source_rows: dict[str, int], out_row_nbytes, estimate_sizes,
                  exchange_min_bytes: int) -> ExchangeSpec | None:
    """Can the suffix past `fnode` run shard-local after repartitioning
    `fnode`'s buffer on the suffix's group-by key?

    Requirements (each guards byte-identity of the merged result, see
    docs/CLUSTER.md):

    * repartition key = group-by of the first suffix aggregate, so whole
      groups land on one destination;
    * every suffix node classifies shard-local under that partitioning
      (sorts may stay local when the partition key is a prefix-set of the
      sort key -- groups are then per-shard units);
    * every suffix sink is an AGGREGATE whose group-by contains the key,
      so the host merge is a disjoint-group sorted concat (exact);
    * the buffer is big enough to pay for the staging round trip.
    """
    suffix_nodes = [n for n in plan.topological()
                    if dist[n.name] is None and n.op is not OpType.SOURCE]
    key: tuple[str, ...] | None = None
    for node in suffix_nodes:
        if node.op is OpType.AGGREGATE:
            group_by = node.params.get("group_by") or []
            if group_by:
                key = tuple(group_by)
            break
    if key is None:
        return None
    sim: dict[str, object] = {fnode.name: ("partitioned", key)}
    for node in suffix_nodes:
        ins = []
        for inp in node.inputs:
            if inp.name not in sim:
                return None              # a second external input
            ins.append(sim[inp.name])
        d = _node_dist(node, ins, sort_local=True)
        if d is None:
            return None
        sim[node.name] = d
    for node in plan.sinks():
        if dist[node.name] is not None:
            continue
        if node.op is not OpType.AGGREGATE:
            return None
        if not set(key) <= set(node.params.get("group_by") or []):
            return None
    est = estimate_sizes(plan, source_rows)
    row_bytes = out_row_nbytes(fnode)
    est_rows = int(est.get(fnode.name, 0))
    if est_rows * row_bytes < exchange_min_bytes:
        return None
    return ExchangeSpec(buffer=fnode.name, key=key, row_nbytes=row_bytes,
                        est_rows=est_rows)

"""Random plan generation for differential testing.

Builds valid random plans (and matching random input relations) so the
test suite can assert, over thousands of generated cases, that

* the fusion pass never changes functional results,
* the plan rewrites never change functional results, and
* the memory-managed runtime agrees with the plain interpreter.

The generator is seeded and fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ra.arithmetic import AggSpec
from ..ra.expr import Const, Field
from ..ra.relation import Relation
from .plan import OpType, Plan, PlanNode

#: operators the generator may append to a chain, with weights
_CHAIN_OPS = [
    ("select", 5),
    ("project", 1),
    ("arith", 2),
    ("sort", 1),
    ("unique", 1),
    ("semi_join", 1),
    ("anti_join", 1),
    # the frontend-era operators, generated with bounded probability so
    # most chains stay fusion-friendly while every barrier kind still
    # appears across a seed sweep
    ("left_join", 1),
    ("top_n", 1),
    ("union_all", 1),
    ("except_all", 1),
]


@dataclass
class FuzzCase:
    plan: Plan
    sources: dict[str, Relation]
    seed: int
    description: str = ""


def random_relation(rng: np.random.Generator, n_rows: int,
                    fields: tuple[str, ...] = ("k", "v", "w")) -> Relation:
    return Relation({
        name: rng.integers(0, 50, n_rows).astype(np.int32)
        for name in fields
    })


def random_plan_case(seed: int, max_ops: int = 6,
                     n_rows: int = 2_000) -> FuzzCase:
    """One random (plan, inputs) pair.

    The plan is a chain over a 3-column source with occasional side inputs
    for semi/anti joins; every operator keeps the k/v/w schema available
    where needed by only projecting at the very end (if at all).
    """
    rng = np.random.default_rng(seed)
    plan = Plan(name=f"fuzz_{seed}")
    src = plan.source("main", row_nbytes=12)
    side = plan.source("side", row_nbytes=4)
    sources = {
        "main": random_relation(rng, n_rows),
        "side": Relation({"k": rng.integers(0, 50, max(1, n_rows // 10))
                          .astype(np.int32)}),
    }

    ops = ["select"]  # always start with something fusable
    names, weights = zip(*_CHAIN_OPS)
    n_ops = int(rng.integers(1, max_ops + 1))
    ops += list(rng.choice(names, size=n_ops,
                           p=np.array(weights) / sum(weights)))

    node: PlanNode = src
    steps: list[str] = []
    for i, op in enumerate(ops):
        fld = str(rng.choice(["k", "v", "w"]))
        if op == "select":
            kind = rng.integers(0, 3)
            if kind == 0:
                pred = Field(fld) < int(rng.integers(1, 50))
            elif kind == 1:
                pred = Field(fld) >= int(rng.integers(0, 49))
            else:
                pred = ((Field("k") < int(rng.integers(10, 50)))
                        & (Field("v") < int(rng.integers(10, 50))))
            node = plan.select(node, pred, selectivity=0.5, name=f"op{i}_sel")
        elif op == "project":
            node = plan.project(node, ["k", "v", "w"], name=f"op{i}_proj")
        elif op == "arith":
            expr = Field("k") * Const(int(rng.integers(1, 5))) + Field("v")
            node = plan.arith(node, {"k": expr}, keep=["v", "w"],
                              name=f"op{i}_arith")
        elif op == "sort":
            node = plan.sort(node, by=[fld], name=f"op{i}_sort")
        elif op == "unique":
            node = plan.unique(node, name=f"op{i}_uniq")
        elif op == "semi_join":
            node = plan.semi_join(node, side, on="k", name=f"op{i}_semi")
        elif op == "anti_join":
            node = plan.anti_join(node, side, on="k", name=f"op{i}_anti")
        elif op == "left_join":
            node = plan.left_join(node, side, on=("k", "k"),
                                  match_field=f"__m{i}", name=f"op{i}_ljoin")
        elif op == "top_n":
            node = plan.top_n(node, by=[fld], n=int(rng.integers(5, 100)),
                              name=f"op{i}_topn")
        elif op == "union_all":
            node = plan.union_all(node, node, name=f"op{i}_union")
        elif op == "except_all":
            sub = plan.select(node, Field(fld) < int(rng.integers(10, 40)),
                              selectivity=0.5, name=f"op{i}_exsub")
            node = plan.except_all(node, sub, name=f"op{i}_except")
        steps.append(op)

    # occasionally aggregate at the end
    if rng.random() < 0.3:
        plan.aggregate(node, ["k"], {
            "n": AggSpec("count"),
            "sv": AggSpec("sum", "v"),
        }, n_groups=None, group_rate=0.5, name="final_agg")
        steps.append("aggregate")

    return FuzzCase(plan=plan, sources=sources, seed=seed,
                    description="->".join(steps))

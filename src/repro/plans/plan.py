"""Logical query plans: DAGs of relational-algebra operators.

A :class:`Plan` is what the fusion/fission passes rewrite and what the
executor runs.  Nodes carry the operator type, its parameters (predicate,
fields, expressions, ...), and an output-cardinality estimate used when the
workload is *virtual* (timing-only, no materialized arrays -- needed for
the paper's multi-billion-element experiments).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import PlanError
from ..ra.expr import Expr, Predicate


class OpType(enum.Enum):
    SOURCE = "source"
    SELECT = "select"
    PROJECT = "project"
    JOIN = "join"
    SEMI_JOIN = "semi_join"
    ANTI_JOIN = "anti_join"
    PRODUCT = "product"
    UNION = "union"
    INTERSECTION = "intersection"
    DIFFERENCE = "difference"
    SORT = "sort"
    UNIQUE = "unique"
    ARITH = "arith"
    AGGREGATE = "aggregate"
    LEFT_JOIN = "left_join"
    TOP_N = "top_n"
    UNION_ALL = "union_all"
    EXCEPT_ALL = "except_all"


#: operators that can never fuse with anything (paper SS III-C).  TOP_N
#: is a bounded SORT; the bag set-ops see their whole inputs at once.
FUSION_BARRIER_OPS = frozenset({OpType.SORT, OpType.UNIQUE, OpType.TOP_N,
                                OpType.UNION_ALL, OpType.EXCEPT_ALL})


@dataclass(eq=False)
class PlanNode:
    """One operator application in a plan DAG."""

    op: OpType
    name: str
    inputs: list["PlanNode"] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    #: estimated ratio of output rows to (left) input rows
    selectivity: float = 1.0
    #: estimated bytes per output row; None -> inherit from (left) input
    out_row_nbytes: int | None = None

    def __post_init__(self):
        if self.selectivity < 0:
            raise PlanError(f"negative selectivity on {self.name}")

    @property
    def predicate(self) -> Predicate | None:
        return self.params.get("predicate")

    def __repr__(self):
        ins = ",".join(i.name for i in self.inputs)
        return f"PlanNode({self.op.value}:{self.name} <- [{ins}])"


class Plan:
    """A DAG of :class:`PlanNode` built through a fluent API.

    >>> plan = Plan()
    >>> src = plan.source("lineitem", row_nbytes=4)
    >>> sel = plan.select(src, Field("f0") < 10, selectivity=0.5)
    """

    def __init__(self, name: str = "plan"):
        self.name = name
        self.nodes: list[PlanNode] = []
        self._counter = itertools.count()

    # -- builders -------------------------------------------------------------
    def _add(self, node: PlanNode) -> PlanNode:
        for inp in node.inputs:
            if inp not in self.nodes:
                raise PlanError(f"input {inp.name} of {node.name} not in this plan")
        self.nodes.append(node)
        return node

    def _name(self, op: OpType, name: str | None) -> str:
        return name or f"{op.value}_{next(self._counter)}"

    def source(self, name: str, row_nbytes: int = 4, n_rows: int | None = None,
               fields: list[str] | None = None) -> PlanNode:
        """`fields`, when given, declares the source's column schema; the
        static analyzer's column-flow lints only fire downstream of a
        declared schema (undeclared sources are treated as unknown)."""
        params: dict[str, Any] = {"n_rows": n_rows}
        if fields is not None:
            params["fields"] = list(fields)
        return self._add(PlanNode(
            OpType.SOURCE, name, [],
            params=params, out_row_nbytes=row_nbytes))

    def select(self, input_node: PlanNode, predicate: Predicate,
               selectivity: float = 0.5, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.SELECT, self._name(OpType.SELECT, name), [input_node],
            params={"predicate": predicate}, selectivity=selectivity))

    def project(self, input_node: PlanNode, fields: list[str],
                out_row_nbytes: int | None = None, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.PROJECT, self._name(OpType.PROJECT, name), [input_node],
            params={"fields": fields}, out_row_nbytes=out_row_nbytes))

    def join(self, left: PlanNode, right: PlanNode,
             on: "str | tuple[str, str] | None" = None,
             match_rate: float = 1.0, out_row_nbytes: int | None = None,
             gather: bool = False, preserve_order: bool = False,
             name: str | None = None) -> PlanNode:
        """JOIN.  ``gather=True`` marks a positional (row-id) join against an
        aligned column array: no hash build, the probe is a direct fetch --
        how the paper's columnar engine merges lineitem columns in Q1.
        ``on`` may be a (left, right) pair for differently-named keys;
        ``preserve_order`` re-sorts match pairs to probe-side row order
        (what decorrelated subquery joins need for bit-exact replays)."""
        return self._add(PlanNode(
            OpType.JOIN, self._name(OpType.JOIN, name), [left, right],
            params={"on": on, "gather": gather,
                    "preserve_order": preserve_order},
            selectivity=match_rate, out_row_nbytes=out_row_nbytes))

    def left_join(self, left: PlanNode, right: PlanNode,
                  on: "str | tuple[str, str] | None" = None,
                  match_field: str = "__matched", match_rate: float = 1.0,
                  out_row_nbytes: int | None = None,
                  name: str | None = None) -> PlanNode:
        """LEFT OUTER JOIN: every left row survives, unmatched rows carry
        zero pads plus a 0/1 ``match_field`` indicator column.  The
        null-padding step sees the whole probe result, so the node is a
        barrier *producer*: it may only terminate a fused region."""
        if match_rate < 1.0:
            raise PlanError(
                f"left join {name!r} cannot drop rows (match_rate >= 1)")
        return self._add(PlanNode(
            OpType.LEFT_JOIN, self._name(OpType.LEFT_JOIN, name),
            [left, right], params={"on": on, "match_field": match_field},
            selectivity=match_rate, out_row_nbytes=out_row_nbytes))

    def semi_join(self, left: PlanNode, right: PlanNode, on: str | None = None,
                  match_rate: float = 0.5, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.SEMI_JOIN, self._name(OpType.SEMI_JOIN, name), [left, right],
            params={"on": on}, selectivity=match_rate))

    def anti_join(self, left: PlanNode, right: PlanNode, on: str | None = None,
                  match_rate: float = 0.5, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.ANTI_JOIN, self._name(OpType.ANTI_JOIN, name), [left, right],
            params={"on": on}, selectivity=match_rate))

    def product(self, left: PlanNode, right: PlanNode, right_rows: int = 1,
                name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.PRODUCT, self._name(OpType.PRODUCT, name), [left, right],
            selectivity=float(right_rows)))

    def union(self, left: PlanNode, right: PlanNode, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.UNION, self._name(OpType.UNION, name), [left, right],
            selectivity=1.0))

    def intersection(self, left: PlanNode, right: PlanNode,
                     match_rate: float = 0.5, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.INTERSECTION, self._name(OpType.INTERSECTION, name),
            [left, right], selectivity=match_rate))

    def difference(self, left: PlanNode, right: PlanNode,
                   keep_rate: float = 0.5, name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.DIFFERENCE, self._name(OpType.DIFFERENCE, name),
            [left, right], selectivity=keep_rate))

    def sort(self, input_node: PlanNode, by: list[str] | None = None,
             descending: "bool | list[bool]" = False,
             name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.SORT, self._name(OpType.SORT, name), [input_node],
            params={"by": by, "descending": descending}))

    def unique(self, input_node: PlanNode, distinct_rate: float = 1.0,
               name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.UNIQUE, self._name(OpType.UNIQUE, name), [input_node],
            selectivity=distinct_rate))

    def top_n(self, input_node: PlanNode, by: list[str], n: int,
              descending: "bool | list[bool]" = False,
              name: str | None = None) -> PlanNode:
        """ORDER BY ... LIMIT n: bounded sort, a barrier both ways."""
        if n < 0:
            raise PlanError(f"top_n needs n >= 0, got {n}")
        return self._add(PlanNode(
            OpType.TOP_N, self._name(OpType.TOP_N, name), [input_node],
            params={"by": by, "n": n, "descending": descending}))

    def union_all(self, left: PlanNode, right: PlanNode,
                  name: str | None = None) -> PlanNode:
        """UNION ALL: bag concatenation (no dedup, unlike UNION)."""
        return self._add(PlanNode(
            OpType.UNION_ALL, self._name(OpType.UNION_ALL, name),
            [left, right], selectivity=1.0))

    def except_all(self, left: PlanNode, right: PlanNode,
                   keep_rate: float = 0.5, name: str | None = None) -> PlanNode:
        """EXCEPT ALL: bag difference (per-tuple multiplicities subtract)."""
        return self._add(PlanNode(
            OpType.EXCEPT_ALL, self._name(OpType.EXCEPT_ALL, name),
            [left, right], selectivity=keep_rate))

    def arith(self, input_node: PlanNode, outputs: dict[str, Expr],
              keep: list[str] | None = None, out_row_nbytes: int | None = None,
              name: str | None = None) -> PlanNode:
        return self._add(PlanNode(
            OpType.ARITH, self._name(OpType.ARITH, name), [input_node],
            params={"outputs": outputs, "keep": keep},
            out_row_nbytes=out_row_nbytes))

    def aggregate(self, input_node: PlanNode, group_by: list[str],
                  aggs: dict, n_groups: int | None = 1,
                  group_rate: float = 0.01, name: str | None = None) -> PlanNode:
        """AGGREGATE.  Output size is `n_groups` rows when given, else
        ``group_rate`` * input rows (for group counts that scale with the
        data, like Q21's per-order aggregates)."""
        return self._add(PlanNode(
            OpType.AGGREGATE, self._name(OpType.AGGREGATE, name), [input_node],
            params={"group_by": group_by, "aggs": aggs, "n_groups": n_groups},
            selectivity=group_rate))

    # -- graph queries ----------------------------------------------------------
    def consumers(self, node: PlanNode) -> list[PlanNode]:
        return [n for n in self.nodes if node in n.inputs]

    def sinks(self) -> list[PlanNode]:
        return [n for n in self.nodes if not self.consumers(n)]

    def sources(self) -> list[PlanNode]:
        return [n for n in self.nodes if n.op is OpType.SOURCE]

    def topological(self) -> Iterator[PlanNode]:
        """Nodes in dependency order (inputs before consumers)."""
        seen: set[int] = set()
        order: list[PlanNode] = []

        def visit(node: PlanNode, stack: tuple[PlanNode, ...]) -> None:
            nid = id(node)
            if any(nid == id(s) for s in stack):
                start = next(i for i, s in enumerate(stack) if id(s) == nid)
                path = " -> ".join(n.name for n in stack[start:])
                raise PlanError(
                    f"cycle through {node.name}: {path} -> {node.name}")
            if nid in seen:
                return
            for inp in node.inputs:
                visit(inp, stack + (node,))
            seen.add(nid)
            order.append(node)

        for node in self.nodes:
            visit(node, ())
        return iter(order)

    def structural_issues(self) -> list[StructuralIssue]:
        """Every structural problem in the plan, as structured records.

        Each issue carries a ``kind`` (``arity`` / ``duplicate`` /
        ``dangling`` / ``cycle``), the offending node (when one exists)
        and a message naming the node and input index involved.  This is
        what :meth:`validate` raises from, and what the PLN plan lints of
        :mod:`repro.analyze` report verbatim, so error text is identical
        on both paths.
        """
        issues: list[StructuralIssue] = []
        names: dict[str, PlanNode] = {}
        for node in self.nodes:
            expected = OP_ARITY[node.op]
            if len(node.inputs) != expected:
                issues.append(StructuralIssue(
                    "arity", node,
                    f"node {node.name!r}: {node.op.value} needs {expected} "
                    f"inputs, has {len(node.inputs)}"))
            for i, inp in enumerate(node.inputs):
                if inp not in self.nodes:
                    issues.append(StructuralIssue(
                        "dangling", node,
                        f"node {node.name!r}: input #{i} ({inp.name!r}) is "
                        f"not part of plan {self.name!r}"))
            if node.name in names:
                issues.append(StructuralIssue(
                    "duplicate", node,
                    f"duplicate node name {node.name!r} "
                    f"(ops {names[node.name].op.value} and {node.op.value})"))
            names.setdefault(node.name, node)
        try:
            list(self.topological())
        except PlanError as err:
            issues.append(StructuralIssue("cycle", None, str(err)))
        return issues

    def validate(self) -> None:
        """Raise PlanError on structural problems, naming the offending
        node (and input index, where one is involved)."""
        issues = self.structural_issues()
        if issues:
            raise PlanError(issues[0].message)


#: expected input count per operator
OP_ARITY = {
    OpType.SOURCE: 0, OpType.SELECT: 1, OpType.PROJECT: 1,
    OpType.SORT: 1, OpType.UNIQUE: 1, OpType.ARITH: 1,
    OpType.AGGREGATE: 1, OpType.JOIN: 2, OpType.SEMI_JOIN: 2,
    OpType.ANTI_JOIN: 2, OpType.PRODUCT: 2, OpType.UNION: 2,
    OpType.INTERSECTION: 2, OpType.DIFFERENCE: 2, OpType.LEFT_JOIN: 2,
    OpType.TOP_N: 1, OpType.UNION_ALL: 2, OpType.EXCEPT_ALL: 2,
}


@dataclass(frozen=True)
class StructuralIssue:
    """One structural problem found by :meth:`Plan.structural_issues`."""

    kind: str                 # arity | duplicate | dangling | cycle
    node: PlanNode | None
    message: str

"""Logical plan rewrites that run before fusion.

The paper frames fusion as one pass in a compiler pipeline ("mainstream
compiler passes that can automatically provide inter-kernel
optimizations").  These are the classic relational rewrites that pipeline
feeds fusion with better input:

* **select reordering** -- in a chain of SELECTs, apply the most selective
  predicate first, shrinking every downstream stage (fused or not);
* **select merging** -- adjacent SELECTs collapse into one conjunctive
  predicate (the logical counterpart of fusing two filter stages);
* **project pruning** -- adjacent PROJECTs collapse to the outermost one.

Each rewrite returns a *new* plan (the input is never mutated) and
preserves functional semantics -- property-tested against the interpreter.
"""

from __future__ import annotations

from ..errors import PlanError
from ..ra.expr import And
from .plan import OpType, Plan, PlanNode


def _clone_plan(plan: Plan) -> tuple[Plan, dict[int, PlanNode]]:
    """Deep-copy the plan graph; returns the copy and old-id -> new node."""
    new = Plan(name=plan.name)
    mapping: dict[int, PlanNode] = {}
    for node in plan.topological():
        clone = PlanNode(
            op=node.op, name=node.name,
            inputs=[mapping[id(i)] for i in node.inputs],
            params=dict(node.params),
            selectivity=node.selectivity,
            out_row_nbytes=node.out_row_nbytes,
        )
        new.nodes.append(clone)
        mapping[id(node)] = clone
    return new, mapping


def _select_chains(plan: Plan) -> list[list[PlanNode]]:
    """Maximal chains of single-consumer SELECT nodes."""
    chains: list[list[PlanNode]] = []
    claimed: set[int] = set()
    for node in plan.topological():
        if node.op is not OpType.SELECT or id(node) in claimed:
            continue
        # only start a chain at a SELECT whose producer is not a chainable
        # SELECT (i.e. at the head)
        prod = node.inputs[0]
        if (prod.op is OpType.SELECT and len(plan.consumers(prod)) == 1):
            continue
        chain = [node]
        claimed.add(id(node))
        cur = node
        while True:
            consumers = plan.consumers(cur)
            if (len(consumers) == 1 and consumers[0].op is OpType.SELECT):
                cur = consumers[0]
                chain.append(cur)
                claimed.add(id(cur))
            else:
                break
        if len(chain) >= 2:
            chains.append(chain)
    return chains


def reorder_selects(plan: Plan) -> Plan:
    """Sort each SELECT chain by ascending selectivity (most selective
    first).  Legal because conjunctive filters commute; profitable because
    every later stage sees fewer elements."""
    new, mapping = _clone_plan(plan)
    for chain in _select_chains(new):
        ordered = sorted(chain, key=lambda n: n.selectivity)
        if ordered == chain:
            continue
        # rewire: the head keeps the original upstream input; predicates,
        # selectivities and names rotate into the sorted order
        attrs = [(n.predicate, n.selectivity, n.name) for n in ordered]
        for node, (pred, sel, name) in zip(chain, attrs):
            node.params = dict(node.params, predicate=pred)
            node.selectivity = sel
            node.name = name
    return new


def merge_selects(plan: Plan) -> Plan:
    """Collapse each SELECT chain into one conjunctive SELECT."""
    new, _ = _clone_plan(plan)
    for chain in _select_chains(new):
        head, rest = chain[0], chain[1:]
        pred = head.predicate
        sel = head.selectivity
        for node in rest:
            pred = And(pred, node.predicate)
            sel *= node.selectivity
        tail = rest[-1]
        merged_name = "+".join(n.name for n in chain)
        head.params = dict(head.params, predicate=pred)
        head.selectivity = sel
        head.name = merged_name
        # re-point the tail's consumers at the head; drop the rest
        for consumer in new.consumers(tail):
            consumer.inputs = [head if i is tail else i for i in consumer.inputs]
        for node in rest:
            new.nodes.remove(node)
    return new


def prune_projects(plan: Plan) -> Plan:
    """PROJECT(PROJECT(x)) -> PROJECT(x) with the outer field list (must be
    a subset of the inner's, else the plan was invalid anyway)."""
    new, _ = _clone_plan(plan)
    changed = True
    while changed:
        changed = False
        for node in list(new.nodes):
            if node.op is not OpType.PROJECT:
                continue
            inner = node.inputs[0]
            if (inner.op is OpType.PROJECT
                    and len(new.consumers(inner)) == 1):
                outer_fields = node.params["fields"]
                inner_fields = inner.params["fields"]
                missing = [f for f in outer_fields
                           if isinstance(f, str) and f not in inner_fields]
                if missing:
                    raise PlanError(
                        f"project {node.name} reads {missing} which "
                        f"{inner.name} already dropped")
                node.inputs = [inner.inputs[0]]
                new.nodes.remove(inner)
                changed = True
    return new


def optimize_plan(plan: Plan) -> Plan:
    """The standard pre-fusion pipeline: prune, reorder.

    Select *merging* is intentionally not applied by default: merged
    SELECTs deny the fusion pass its per-stage structure (and the executor
    its per-operator accounting); fusion achieves the same effect at the
    kernel level.
    """
    return reorder_selects(prune_projects(plan))

"""Stream Pool: a runtime manager over (simulated) CUDA streams.

Reimplements the library of paper SS IV-A.  The paper's Table IV API is
provided both under Pythonic names and the paper's camelCase aliases:

====================  =========================================
paper API             here
====================  =========================================
getAvailabeStream()   :meth:`StreamPool.get_available_stream`
setStreamCommand()    :meth:`StreamPool.set_stream_command`
startStreams()        :meth:`StreamPool.start_streams`
waitAll()             :meth:`StreamPool.wait_all`
selectWait()          :meth:`StreamPool.select_wait`
terminate()           :meth:`StreamPool.terminate`
====================  =========================================

Because the device is simulated, "waiting" means running the discrete-event
engine to completion and collecting the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FaultError, SchedulingError
from ..simgpu.compute import KernelLaunchSpec
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import Command, SimEngine, SimStream, Thunk
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import Timeline


@dataclass
class PooledStream:
    """Handle to one stream owned by the pool."""

    pool: "StreamPool"
    sim: SimStream
    available: bool = True
    tags: dict[str, object] = field(default_factory=dict)

    @property
    def stream_id(self) -> int:
        return self.sim.stream_id

    # convenience command builders (delegate to the simulated stream)
    def h2d(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "h2d", thunk: Thunk | None = None,
            reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
            ) -> "PooledStream":
        self.pool._check_open()
        self.sim.h2d(nbytes, memory, tag, thunk, reads=reads, writes=writes)
        return self

    def d2h(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "d2h", thunk: Thunk | None = None,
            reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
            ) -> "PooledStream":
        self.pool._check_open()
        self.sim.d2h(nbytes, memory, tag, thunk, reads=reads, writes=writes)
        return self

    def kernel(self, spec: KernelLaunchSpec, tag: str | None = None,
               thunk: Thunk | None = None,
               reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
               ) -> "PooledStream":
        self.pool._check_open()
        self.sim.kernel(spec, tag, thunk, reads=reads, writes=writes)
        return self

    def host(self, duration: float, tag: str = "host",
             thunk: Thunk | None = None,
             reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
             ) -> "PooledStream":
        self.pool._check_open()
        self.sim.host(duration, tag, thunk, reads=reads, writes=writes)
        return self


class StreamPool:
    """Manages a fixed set of streams and hides low-level stream plumbing.

    The C2070 can overlap two PCIe transfers with one kernel, so a pool of
    at least three streams is needed to fully exploit the device (SS IV-B);
    the default pool size is 3.
    """

    def __init__(self, device: DeviceSpec, num_streams: int = 3,
                 engine: SimEngine | None = None):
        if num_streams < 1:
            raise SchedulingError("stream pool needs at least one stream")
        self.device = device
        self.engine = engine or SimEngine(device)
        self._streams = [
            PooledStream(pool=self, sim=SimStream(stream_id=i))
            for i in range(num_streams)
        ]
        self._started = False
        self._terminated = False
        self._rr_next = 0
        self.timeline = Timeline()

    # -- Table IV API --------------------------------------------------------
    def get_available_stream(self) -> PooledStream:
        """Return a stream not currently claimed; round-robin when all busy."""
        self._check_open()
        for s in self._streams:
            if s.available:
                s.available = False
                return s
        # all claimed: hand out the one with the shortest queue, breaking
        # ties round-robin from a rotating start so repeated calls spread
        # across streams (the paper's pool reuses streams across cycles)
        n = len(self._streams)
        order = [(self._rr_next + i) % n for i in range(n)]
        best = min(order, key=lambda i: len(self._streams[i].sim.commands))
        self._rr_next = (best + 1) % n
        return self._streams[best]

    def set_stream_command(self, stream: PooledStream, command: Command) -> None:
        """Append a raw engine command to a specific stream."""
        self._check_open()
        if stream.pool is not self:
            raise SchedulingError("stream belongs to a different pool")
        stream.sim.enqueue(command)

    def select_wait(self, waiter: PooledStream, signaler: PooledStream) -> None:
        """Point-to-point sync: `waiter` blocks until `signaler` reaches
        its current queue tail."""
        self._check_open()
        event_id = self.engine.new_event_id()
        signaler.sim.signal(event_id, tag=f"signal:{event_id}")
        waiter.sim.wait_event(event_id, tag=f"wait:{event_id}")

    def start_streams(self) -> None:
        """Mark execution started (commands become immutable)."""
        self._check_open()
        self._started = True

    def wait_all(self) -> Timeline:
        """Run every queued command to completion; returns the timeline.

        If a command keeps failing past its retry budget (injected faults,
        see :mod:`repro.faults`), the :class:`~repro.errors.FaultError`
        propagates with ``pending`` mapping stream id -> commands still
        queued.  The engine has already pruned everything that completed,
        so those commands stay enqueued: callers may re-open the pool and
        call :meth:`wait_all` again to retry exactly the unfinished work,
        or :meth:`terminate` to collect it.
        """
        if self._terminated:
            raise SchedulingError("pool has been terminated")
        if not self._started:
            self.start_streams()
        timeline = Timeline()
        try:
            self.timeline = self.engine.run(
                [s.sim for s in self._streams], timeline)
        except FaultError as err:
            # surface partial progress and the stalled streams' backlog
            # instead of silently dropping either
            self.timeline = timeline
            err.pending = {
                s.stream_id: list(s.sim.commands)
                for s in self._streams if s.sim.commands
            }
            self._started = False
            raise
        for s in self._streams:
            s.sim.commands.clear()
            s.available = True
        self._started = False
        return self.timeline

    def reset(self) -> list[Command]:
        """Return the pool to a fresh, open state for reuse.

        Drains and returns any commands still queued (e.g. the backlog a
        failed :meth:`wait_all` left behind), marks every stream available,
        and clears the started/terminated flags.  The serving layer
        (:mod:`repro.serve`) calls this between batches and after a
        :class:`~repro.errors.FaultError` so one poisoned batch never
        condemns the pool for the rest of the run.
        """
        drained: list[Command] = []
        for s in self._streams:
            drained.extend(s.sim.commands)
            s.sim.commands.clear()
            s.available = True
            s.tags.clear()
        self._started = False
        self._terminated = False
        self._rr_next = 0
        return drained

    def terminate(self) -> list[Command]:
        """End execution immediately.  Any commands still queued (e.g. left
        behind by a stalled stream after a failed :meth:`wait_all`) are
        drained and returned to the caller rather than silently dropped."""
        self._terminated = True
        drained: list[Command] = []
        for s in self._streams:
            drained.extend(s.sim.commands)
            s.sim.commands.clear()
        return drained

    # -- paper-spelling aliases ----------------------------------------------
    getAvailableStream = get_available_stream
    getAvailabeStream = get_available_stream  # sic -- Table IV spelling
    setStreamCommand = set_stream_command
    selectWait = select_wait
    startStreams = start_streams
    waitAll = wait_all

    # -- internals -------------------------------------------------------------
    def _check_open(self) -> None:
        if self._terminated:
            raise SchedulingError("pool has been terminated")
        if self._started:
            raise SchedulingError("streams already started; wait_all first")

    @property
    def num_streams(self) -> int:
        return len(self._streams)

    @property
    def streams(self) -> list[PooledStream]:
        return list(self._streams)

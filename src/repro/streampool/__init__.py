"""The Stream Pool runtime library (paper SS IV-A, Table IV)."""

from .pool import PooledStream, StreamPool

__all__ = ["PooledStream", "StreamPool"]

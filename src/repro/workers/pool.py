"""The warm worker pool: multi-process dispatch backend for the server.

Implements the dispatch-backend interface of :class:`repro.serve.dispatch
.DispatchEngine` (``execute_round`` / ``acknowledge`` / ``close``) over a
set of long-lived worker processes.  The serve loop in the parent keeps
doing everything it did -- arrivals, admission, batching, completion
bookkeeping, metrics -- and only the *simulation* of each dispatch moves
into a worker.  Because a dispatch outcome is a pure function of its
request (see :mod:`repro.serve.dispatch`), moving it between processes
cannot change a single byte of the summary.

Life of a dispatch::

    execute_round(assignments, epoch)
      key    = DispatchKey(seed, tenant, batch_fingerprint, batch_idx)
      dup?   -> outbox.lookup(key) hit: recorded result, no execution
      route  -> TenantRouter (epoch-pinned; hash or least-bytes)
      probe  -> chaos worker-kill site "worker.<w>" (pool's own injector)
      send   -> ("dispatch", key, request, epoch, nbytes)   [pipelined]
      collect-> ("result", outcome, hit) in order; outbox.record
    acknowledge(batch_idx, ...)
      outbox.ack + ("ack", ...) to the owning worker (completion log)

Crash recovery (chaos ``worker_kill``, ``--kill-worker``, or a real
pipe EOF): the pool drains the worker's outstanding replies where it
can, SIGKILLs it, spawns a fresh warm process, **restores** every acked
outbox entry verbatim (no re-execution), and **re-dispatches** every
unacknowledged one -- purity makes the re-run byte-identical, so the
summary converges to the no-kill run's bytes.

Determinism: worker kills are probed by a *separate* injector built from
``config.faults.reseeded(_POOL_SEED_OFFSET)``, one probe per routed
dispatch -- the per-batch engine injectors inside workers see exactly the
probe sequences the in-process path sees, so chaos serve summaries stay
byte-identical across worker counts.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque

from ..faults import FaultInjector
from .outbox import DispatchKey, ResultOutbox
from .records import RespawnEvent, WorkerPartial
from .router import TenantRouter
from .worker import _make_record, worker_main

#: reseed offset separating the pool's worker-kill injector from the
#: per-batch engine injectors (which reseed with the batch index)
_POOL_SEED_OFFSET = 10 ** 6


class WorkerPool:
    """Owns the worker processes and the exactly-once dispatch machinery."""

    def __init__(self, device, config, kill_worker: "int | None" = None):
        self.device = device
        self.config = config
        self.num_workers = config.workers
        self.seed = config.pool_seed
        self.router = TenantRouter(config.workers,
                                   mode=config.worker_rebalance,
                                   seed=config.pool_seed)
        self.outbox = ResultOutbox()
        self._kill_injector = (
            FaultInjector(config.faults.reseeded(_POOL_SEED_OFFSET))
            if config.faults is not None and config.faults.enabled else None)
        #: --kill-worker: deterministically kill this worker once, at its
        #: second dispatch (so there is an outbox to replay)
        self._kill_worker = kill_worker
        self._kill_done = False

        self._ctx = mp.get_context("fork")
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._conns: dict = {}
        #: keys sent to each worker and not yet answered (FIFO per pipe)
        self._awaiting: dict[int, deque] = {
            w: deque() for w in range(config.workers)}
        self._sent = {w: 0 for w in range(config.workers)}
        #: key -> (request, epoch, nbytes): everything needed to re-send
        #: or restore a dispatch (kept for the whole run)
        self._requests: dict[DispatchKey, tuple] = {}
        self._key_by_bidx: dict[int, DispatchKey] = {}

        self.warm_ms: dict[int, float] = {}
        self.kills = 0
        self.respawn_events: list[RespawnEvent] = []
        self.partials: list[WorkerPartial] = []
        self._closed = False
        self._stats: dict = {}

        for w in range(config.workers):
            self._spawn(w)

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main, args=(child_conn, w, self.device,
                                      self.config),
            name=f"repro-worker-{w}", daemon=True)
        t0 = time.perf_counter()
        proc.start()
        child_conn.close()
        ready = parent_conn.recv()
        if ready != ("ready", w):  # pragma: no cover - protocol bug
            raise RuntimeError(f"worker {w}: bad handshake {ready!r}")
        # first spawn only: respawns are crash recovery, not warm-up
        self.warm_ms.setdefault(w, (time.perf_counter() - t0) * 1e3)
        self._procs[w] = proc
        self._conns[w] = parent_conn

    def kill(self, w: int) -> None:
        """SIGKILL worker `w` and immediately recover (respawn + replay)."""
        # settle outstanding replies first so the kill lands between
        # dispatches -- keeps replay counts deterministic run-to-run
        self._drain(w)
        self.kills += 1
        proc = self._procs[w]
        proc.kill()
        proc.join()
        self._conns[w].close()
        self._respawn(w)

    def _respawn(self, w: int) -> None:
        """Fresh warm process for slot `w`, replaying its outbox: acked
        entries restored verbatim, unacked entries re-dispatched."""
        inflight = list(self._awaiting[w])
        self._awaiting[w].clear()
        owned = list(self.outbox.for_worker(w))
        self._spawn(w)
        conn = self._conns[w]
        restored = 0
        redispatch = []
        for entry in owned:  # outbox insertion order == dispatch order
            request, epoch, nbytes = self._requests[entry.key]
            if entry.acked:
                record = _make_record(w, entry.key, request, epoch, nbytes,
                                      entry.result, restored=True)
                conn.send(("restore", entry.key, record, entry.result,
                           entry.ack_payload))
                if conn.recv() != ("restored",):  # pragma: no cover
                    raise RuntimeError(f"worker {w}: restore failed")
                self.outbox.note_replay(entry.key, w)
                restored += 1
            else:
                redispatch.append(entry)
        if redispatch:
            conn.send(("replay_budget", len(redispatch)))
            for entry in redispatch:
                request, epoch, nbytes = self._requests[entry.key]
                conn.send(("dispatch", entry.key, request, epoch, nbytes))
                self._awaiting[w].append(entry.key)
        # in-flight sends that never produced a recorded result: first
        # executions, re-sent as plain dispatches
        for key in inflight:
            request, epoch, nbytes = self._requests[key]
            conn.send(("dispatch", key, request, epoch, nbytes))
            self._awaiting[w].append(key)
        self.respawn_events.append(
            RespawnEvent(worker=w, restored=restored,
                         redispatched=len(redispatch), expected=len(owned)))

    def _ensure_alive(self, w: int) -> None:
        if not self._procs[w].is_alive():
            self.kills += 1
            self._conns[w].close()
            self._respawn(w)

    # -- wire helpers ------------------------------------------------------
    def _pump(self, w: int) -> None:
        """Receive one reply from worker `w` and fulfil its oldest
        outstanding dispatch.  A dead pipe triggers crash recovery (the
        re-sent dispatches are answered by the fresh process)."""
        try:
            msg = self._conns[w].recv()
        except (EOFError, OSError):
            self._ensure_alive(w)
            return
        kind, outcome, _hit = msg
        if kind != "result":  # pragma: no cover - protocol bug
            raise RuntimeError(f"worker {w}: unexpected reply {kind!r}")
        key = self._awaiting[w].popleft()
        if key in self.outbox.entries:
            # crash replay of a recorded entry: purity guarantees the
            # bytes; just note the replay
            self.outbox.note_replay(key, w)
        else:
            self.outbox.record(key, outcome, w)

    def _drain(self, w: int) -> None:
        while self._awaiting[w]:
            self._pump(w)

    def _probe_kill(self, w: int) -> None:
        """One worker-kill probe per routed dispatch (chaos), plus the
        deterministic --kill-worker trigger."""
        chaos = (self._kill_injector.worker_kill(f"worker.{w}")
                 if self._kill_injector is not None else False)
        manual = (self._kill_worker == w and not self._kill_done
                  and self._sent[w] >= 1)
        if manual:
            self._kill_done = True
        if chaos or manual:
            self.kill(w)

    # -- backend interface -------------------------------------------------
    def execute_round(self, assignments, epoch: int):
        """Fan one scheduling round out across the pool; outcomes return
        in assignment order (what keeps summaries byte-identical)."""
        from ..serve.dispatch import batch_fingerprint
        from ..serve.scheduler import request_footprint

        outcomes = [None] * len(assignments)
        to_send = []
        for idx, a in enumerate(assignments):
            key = DispatchKey(self.seed, a.tenant,
                              batch_fingerprint(a.batch), a.batch_idx)
            entry = self.outbox.lookup(key)
            if entry is not None:
                # duplicate (retried) dispatch: recorded result, no
                # routing, no execution
                outcomes[idx] = entry.result
                continue
            nbytes = float(sum(request_footprint(r) for r in a.batch))
            w = self.router.route(a.tenant, epoch, nbytes, a.batch_idx)
            self._requests[key] = (a, epoch, nbytes)
            self._key_by_bidx[a.batch_idx] = key
            to_send.append((idx, key, w))
        for idx, key, w in to_send:
            self._probe_kill(w)
            self._ensure_alive(w)
            request, epoch_, nbytes = self._requests[key]
            self._conns[w].send(("dispatch", key, request, epoch_, nbytes))
            self._awaiting[w].append(key)
            self._sent[w] += 1
        for idx, key, w in to_send:
            while key not in self.outbox.entries:
                self._pump(w)
            outcomes[idx] = self.outbox.entries[key].result
        return outcomes

    def acknowledge(self, batch_idx: int, t_end: float, order: int,
                    completions) -> None:
        """The serve loop processed this dispatch's completion: ack the
        outbox entry and ship the completion record to the owning worker."""
        key = self._key_by_bidx[batch_idx]
        payload = (t_end, order, tuple(completions))
        entry = self.outbox.ack(key, payload)
        _request, _epoch, nbytes = self._requests[key]
        self.router.note_ack(entry.worker, nbytes)
        try:
            self._conns[entry.worker].send(
                ("ack", key, t_end, order, tuple(completions)))
        except (BrokenPipeError, OSError):  # pragma: no cover - real crash
            pass  # next dispatch to this worker recovers; restore
            # re-injects the completion from entry.ack_payload

    def heartbeat(self) -> dict:
        """Ping every worker; returns {worker: executed-dispatch count}
        (None for a worker found dead -- it is respawned on the spot)."""
        out: dict[int, "int | None"] = {}
        for w in sorted(self._conns):
            self._drain(w)
            try:
                self._conns[w].send(("ping",))
                reply = self._conns[w].recv()
                out[w] = reply[2]
            except (EOFError, OSError, BrokenPipeError):
                out[w] = None
                self._ensure_alive(w)
        return out

    def close(self) -> dict:
        """Collect per-worker partials, stop the processes, and return the
        pool's flat stats.  Idempotent."""
        if self._closed:
            return self._stats
        self._closed = True
        self.partials = []
        for w in sorted(self._conns):
            self._drain(w)
            try:
                self._conns[w].send(("collect",))
                reply = self._conns[w].recv()
                self.partials.append(reply[1])
                self._conns[w].send(("stop",))
            except (EOFError, OSError, BrokenPipeError):
                # a worker dead at shutdown: its shard of the report is
                # lost (the sanitizer will say so); the run's summary came
                # from the master loop and is unaffected
                pass
        for w, proc in self._procs.items():
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join()
            self._conns[w].close()
        self._stats = {
            "pool.workers": self.num_workers,
            "pool.rebalance": self.config.worker_rebalance,
            "pool.kills": self.kills,
            "pool.respawns": len(self.respawn_events),
            "pool.worker_outbox_hits": sum(
                p.outbox_hits for p in self.partials),
            "pool.events_simulated": sum(
                p.events_simulated for p in self.partials),
            **self.outbox.counters(),
        }
        return self._stats

    def __del__(self):  # pragma: no cover - safety net
        try:
            if not self._closed:
                for proc in self._procs.values():
                    if proc.is_alive():
                        proc.kill()
        except Exception:
            pass


__all__ = ["WorkerPool"]

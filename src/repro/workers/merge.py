"""Cross-worker metrics merge and the pool report.

The master serve loop keeps its own :class:`~repro.serve.metrics
.ServeMetrics` while it runs (admission happens in the parent; the pool
only simulates dispatches), so the merge here is not how the summary is
*produced* -- it is how the summary is *proved*.  Each worker logs the
dispatch and completion records it owns; :func:`merge_metrics` rebuilds a
full ServeMetrics from those logs alone (plus the parent's admission-side
counters, which no worker ever sees) and the pool report asserts the
rebuilt summary is **byte-identical** to the master's.

Byte-identity needs the float operations replayed in the master's order:

* dispatch-side counters (``busy_s``, per-lane sums, batch sizes) apply
  in ``batch_idx`` order -- the order the serve loop applied them;
* completion-side samples replay in ``(t_end, order)`` order -- exactly
  the serve loop's completion-processing order (single-device: dispatch
  order; multi-device: the in-flight heap's pop order) -- with each
  record's per-query completions kept in batch order.

Latency percentiles in the merged summary are nearest-rank over the
merged sample set (``LatencyStats`` sorts at percentile time), the same
method the single-process path uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..serve.metrics import DeviceLaneStats, ServeMetrics
from .records import (CompletionRecord, DispatchRecord, RespawnEvent,
                      WorkerPartial)
from .router import Assignment


def admission_partial(master: ServeMetrics) -> ServeMetrics:
    """The parent-only side of the metrics: admission counters and the
    served horizon.  Workers never see an offered query that was shed."""
    m = ServeMetrics()
    m.offered = master.offered
    m.admitted = master.admitted
    m.shed_queue_full = master.shed_queue_full
    m.shed_backpressure = master.shed_backpressure
    m.shed_expired = master.shed_expired
    m.served_s = master.served_s
    return m


def _apply_dispatch(m: ServeMetrics, rec: DispatchRecord,
                    devices: int) -> None:
    m.batches += 1
    m.batch_sizes.append(rec.size)
    m.busy_s += rec.makespan
    m.degraded_batches += int(rec.degraded)
    m.faults_observed += rec.faults
    m.analysis_warnings += rec.warnings
    if devices > 1:
        lane = m.per_device[rec.lane]
        lane.batches += 1
        lane.queries += rec.size
        lane.busy_s += rec.makespan
        lane.dispatched_bytes += rec.nbytes


def _apply_completions(m: ServeMetrics,
                       records: list[CompletionRecord]) -> None:
    for rec in sorted(records, key=lambda r: (r.t_end, r.order)):
        for tenant, latency_s, ok in rec.completions:
            m.record_completion(tenant, latency_s, ok)


def worker_metrics(partial: WorkerPartial, devices: int) -> ServeMetrics:
    """One worker's shard of the metrics (admission side left zero; the
    parent owns it).  ``served_s`` stays 0, so rate-type deriveds read 0
    in per-worker summaries -- only the merged view has a horizon."""
    m = ServeMetrics()
    if devices > 1:
        for dev in range(devices):
            m.per_device[dev] = DeviceLaneStats()
    for rec in sorted(partial.dispatches, key=lambda r: r.batch_idx):
        _apply_dispatch(m, rec, devices)
    _apply_completions(m, partial.completions)
    return m


def merge_metrics(partials: list[WorkerPartial], master: ServeMetrics,
                  devices: int) -> ServeMetrics:
    """Rebuild the run's full metrics from worker logs + admission side."""
    m = admission_partial(master)
    if devices > 1:
        for dev in range(devices):
            m.per_device[dev] = DeviceLaneStats()
    dispatches = [rec for p in partials for rec in p.dispatches]
    for rec in sorted(dispatches, key=lambda r: r.batch_idx):
        _apply_dispatch(m, rec, devices)
    _apply_completions(
        m, [rec for p in partials for rec in p.completions])
    return m


@dataclass
class PoolReport:
    """Everything the pool knows after a run: the sanitizer's and the
    SRV60x lints' input, and the ``--pool-report`` JSON payload."""

    num_workers: int
    rebalance: str
    #: router decisions in dispatch order
    assignments: list[Assignment]
    #: all workers' dispatch records, sorted by batch_idx
    dispatches: list[DispatchRecord]
    #: parent-outbox conservation counters (``outbox.*``)
    outbox: dict[str, int]
    respawns: list[RespawnEvent] = field(default_factory=list)
    #: workers killed (chaos + --kill-worker)
    kills: int = 0
    #: worker-local duplicate hits, per worker
    worker_outbox_hits: dict[int, int] = field(default_factory=dict)
    #: warm-spawn latency per worker slot, wall-clock ms (never byte-
    #: compared: wall time is not deterministic)
    warm_ms: dict[int, float] = field(default_factory=dict)
    #: pooled plan-cache stats (PlanCache.merge_stats) or None
    plan_cache: dict | None = None
    events_simulated: int = 0
    per_worker_summaries: dict[int, dict] = field(default_factory=dict)
    merged_summary: dict = field(default_factory=dict)
    master_summary: dict = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        """The determinism contract: merged == master, key for key."""
        return self.merged_summary == self.master_summary

    def dispatches_per_worker(self) -> dict[int, int]:
        out = {w: 0 for w in range(self.num_workers)}
        for a in self.assignments:
            out[a.worker] += 1
        return out

    def tenant_workers(self) -> dict[str, set[int]]:
        """Workers each tenant was routed to across the whole run."""
        out: dict[str, set[int]] = {}
        for a in self.assignments:
            out.setdefault(a.tenant, set()).add(a.worker)
        return out

    def to_json(self) -> dict:
        return {
            "workers": self.num_workers,
            "rebalance": self.rebalance,
            "dispatches_per_worker": {
                str(w): n
                for w, n in sorted(self.dispatches_per_worker().items())},
            "tenants": {
                t: sorted(ws)
                for t, ws in sorted(self.tenant_workers().items())},
            "outbox": dict(self.outbox),
            "worker_outbox_hits": {
                str(w): n
                for w, n in sorted(self.worker_outbox_hits.items())},
            "kills": self.kills,
            "respawns": [
                {"worker": r.worker, "restored": r.restored,
                 "redispatched": r.redispatched, "expected": r.expected}
                for r in self.respawns],
            "warm_ms": {str(w): round(ms, 3)
                        for w, ms in sorted(self.warm_ms.items())},
            "plan_cache": self.plan_cache,
            "events_simulated": self.events_simulated,
            "per_worker_metrics": {
                str(w): s
                for w, s in sorted(self.per_worker_summaries.items())},
            "merged_metrics": self.merged_summary,
            "merged_identical_to_master": self.identical,
        }


def build_pool_report(master: ServeMetrics, pool, config) -> PoolReport:
    """Assemble the post-run report from a closed :class:`~repro.workers
    .pool.WorkerPool` and the master loop's metrics."""
    from ..optimizer.plancache import PlanCache

    partials: list[WorkerPartial] = pool.partials
    merged = merge_metrics(partials, master, config.devices)
    cache_parts = [p.plan_cache for p in partials
                   if p.plan_cache is not None]
    return PoolReport(
        num_workers=pool.num_workers,
        rebalance=config.worker_rebalance,
        assignments=list(pool.router.log),
        dispatches=sorted(
            (rec for p in partials for rec in p.dispatches),
            key=lambda r: r.batch_idx),
        outbox=pool.outbox.counters(),
        respawns=list(pool.respawn_events),
        kills=pool.kills,
        worker_outbox_hits={p.worker: p.outbox_hits for p in partials},
        warm_ms=dict(pool.warm_ms),
        plan_cache=(PlanCache.merge_stats(cache_parts)
                    if cache_parts else None),
        events_simulated=sum(p.events_simulated for p in partials),
        per_worker_summaries={
            p.worker: worker_metrics(p, config.devices).summary()
            for p in partials},
        merged_summary=merged.summary(),
        master_summary=master.summary(),
    )


__all__ = [
    "PoolReport", "admission_partial", "build_pool_report",
    "merge_metrics", "worker_metrics",
]

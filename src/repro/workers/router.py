"""Deterministic tenant -> worker routing.

Two modes, both pure functions of the run's inputs (so two same-seed runs
route identically and the pool's summaries stay byte-identical):

* ``"hash"`` -- a tenant is pinned to ``blake2b(seed, tenant) % workers``
  for the whole run.  Simple, stateless, and sticky: a tenant's dispatches
  always land on the same worker, so that worker's plan cache and warmed
  state see all of the tenant's repeat traffic.
* ``"least-bytes"`` -- rebalancing: a tenant's *first* dispatch in each
  batch epoch goes to the worker with the least outstanding (dispatched
  minus acknowledged) estimated bytes, ties to the lowest worker id; the
  tenant is then pinned to that worker for the rest of the epoch.  The
  epoch pin is what keeps the sanitizer invariant -- no tenant split
  across workers within a batch epoch -- true under rebalancing.

The router also keeps the full assignment log (epoch, tenant, worker,
sequence); the pool-level sanitizer and the SRV601 skew lint read it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def route_tenant(tenant: str, num_workers: int, seed: int = 0) -> int:
    """The stable hash route: ``blake2b("{seed}:{tenant}") % num_workers``."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    payload = f"{seed}:{tenant}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_workers


@dataclass(frozen=True)
class Assignment:
    """One routed dispatch, as logged for the sanitizer and lints."""

    epoch: int
    tenant: str
    worker: int
    sequence: int


class TenantRouter:
    """Routes dispatches to workers; logs every decision."""

    def __init__(self, num_workers: int, mode: str = "hash", seed: int = 0):
        if mode not in ("hash", "least-bytes"):
            raise ValueError(f"unknown router mode {mode!r}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.mode = mode
        self.seed = seed
        #: estimated bytes dispatched to each worker and not yet acked
        #: (the "least-bytes" routing signal)
        self.outstanding = {w: 0.0 for w in range(num_workers)}
        #: tenant pins of the current epoch (cleared when the epoch turns)
        self._epoch = -1
        self._epoch_pins: dict[str, int] = {}
        self.log: list[Assignment] = []

    def route(self, tenant: str, epoch: int, nbytes: float,
              sequence: int) -> int:
        """Pick the worker for one dispatch and log the decision."""
        if epoch != self._epoch:
            self._epoch = epoch
            self._epoch_pins = {}
        worker = self._epoch_pins.get(tenant)
        if worker is None:
            if self.mode == "hash":
                worker = route_tenant(tenant, self.num_workers, self.seed)
            else:
                worker = min(self.outstanding,
                             key=lambda w: (self.outstanding[w], w))
            self._epoch_pins[tenant] = worker
        self.outstanding[worker] += nbytes
        self.log.append(Assignment(epoch, tenant, worker, sequence))
        return worker

    def note_ack(self, worker: int, nbytes: float) -> None:
        """A dispatch completed: its bytes stop counting as outstanding."""
        self.outstanding[worker] -= nbytes

    def dispatches_per_worker(self) -> dict[int, int]:
        out = {w: 0 for w in range(self.num_workers)}
        for a in self.log:
            out[a.worker] += 1
        return out


__all__ = ["Assignment", "TenantRouter", "route_tenant"]

"""Idempotent dispatch keys and the result outbox.

Every dispatch the pool routes is identified by a :class:`DispatchKey` --
``(seed, tenant, query_fingerprint, sequence)`` -- and its outcome is
recorded in a :class:`ResultOutbox` before the serve loop ever sees it.
The outbox is the pool's source of truth for exactly-once semantics:

* a **duplicate** dispatch (same key sent again, e.g. a retry after a
  suspected-lost reply) returns the recorded result and bumps the entry's
  hit counter -- the simulation never re-executes;
* an **acknowledgement** (the serve loop finished processing the
  completion) marks the entry acked; the pool-level sanitizer
  (:mod:`repro.validate.workers`) requires every recorded entry to be
  acked *exactly once*;
* after a worker crash, the parent **replays** its entries into the
  fresh process: acked entries are restored verbatim (no re-execution),
  unacked entries are re-dispatched -- dispatch purity
  (:mod:`repro.serve.dispatch`) guarantees the re-run returns the same
  bytes.

Conservation invariant (checked by the sanitizer): every routed dispatch
attempt either recorded a new entry or hit an existing one --
``attempts == recorded + hits`` -- and nothing is ever dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class DispatchKey:
    """Identity of one dispatch, stable across retries and replays.

    ``seed`` scopes keys to one serve run; ``tenant`` is the routing
    tenant (the batch head's); ``query_fingerprint`` content-hashes the
    batch's plans and row stats (:func:`repro.serve.dispatch
    .batch_fingerprint`); ``sequence`` is the serve loop's batch index,
    which makes two content-identical batches at different points of the
    run distinct dispatches.
    """

    seed: int
    tenant: str
    query_fingerprint: str
    sequence: int

    @property
    def token(self) -> str:
        """Human-readable rendering (full fingerprint kept: truncating it
        would manufacture the collisions SRV602 exists to catch)."""
        return (f"{self.seed}:{self.tenant}:{self.query_fingerprint}"
                f":{self.sequence}")


@dataclass
class OutboxEntry:
    """One recorded dispatch outcome and its delivery state."""

    key: DispatchKey
    result: Any
    #: worker that executed (or most recently restored) the entry
    worker: int
    #: duplicate dispatches served from this entry instead of re-executing
    hits: int = 0
    #: times the entry was acknowledged (the sanitizer wants exactly 1)
    ack_count: int = 0
    #: completion payload attached at ack time: (t_end, order, completions)
    ack_payload: Any = None
    #: times the entry was replayed into a respawned worker
    replays: int = 0

    @property
    def acked(self) -> bool:
        return self.ack_count > 0


@dataclass
class ResultOutbox:
    """Parent-side record of every dispatch outcome, keyed for idempotency."""

    entries: dict[DispatchKey, OutboxEntry] = field(default_factory=dict)
    #: dispatch attempts routed through the outbox (records + hits)
    attempts: int = 0

    # -- the idempotent path ------------------------------------------------
    def lookup(self, key: DispatchKey) -> OutboxEntry | None:
        """One dispatch attempt: the recorded entry (hit counted) or None
        (caller must execute and :meth:`record`)."""
        self.attempts += 1
        entry = self.entries.get(key)
        if entry is not None:
            entry.hits += 1
        return entry

    def record(self, key: DispatchKey, result: Any, worker: int
               ) -> OutboxEntry:
        if key in self.entries:
            raise ValueError(f"outbox entry already recorded: {key.token}")
        entry = OutboxEntry(key=key, result=result, worker=worker)
        self.entries[key] = entry
        return entry

    def ack(self, key: DispatchKey, payload: Any) -> OutboxEntry:
        """Mark `key` acknowledged.  Double-acks are *counted*, not raised:
        the pool sanitizer reports them as violations post-run."""
        entry = self.entries[key]
        entry.ack_count += 1
        if entry.ack_payload is None:
            entry.ack_payload = payload
        return entry

    def note_replay(self, key: DispatchKey, worker: int) -> None:
        entry = self.entries[key]
        entry.replays += 1
        entry.worker = worker

    # -- queries ------------------------------------------------------------
    def for_worker(self, worker: int) -> Iterator[OutboxEntry]:
        """Entries currently owned by `worker`, in recording order (dicts
        preserve insertion order, and recording order is dispatch order)."""
        for entry in self.entries.values():
            if entry.worker == worker:
                yield entry

    def unacked(self) -> list[OutboxEntry]:
        return [e for e in self.entries.values() if not e.acked]

    @property
    def recorded(self) -> int:
        return len(self.entries)

    @property
    def hits(self) -> int:
        return sum(e.hits for e in self.entries.values())

    @property
    def acked(self) -> int:
        return sum(1 for e in self.entries.values() if e.acked)

    @property
    def replays(self) -> int:
        return sum(e.replays for e in self.entries.values())

    def counters(self) -> dict[str, int]:
        """Flat conservation counters for reports and the sanitizer."""
        return {
            "outbox.attempts": self.attempts,
            "outbox.recorded": self.recorded,
            "outbox.hits": self.hits,
            "outbox.acked": self.acked,
            "outbox.replays": self.replays,
        }


__all__ = ["DispatchKey", "OutboxEntry", "ResultOutbox"]

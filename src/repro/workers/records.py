"""Plain records shipped between pool, workers, and the merge/sanitizer.

Everything here crosses a process boundary (pickled over pipes), so it is
deliberately dumb data: frozen dataclasses of scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatch as a worker logged it (the merge's dispatch-side row)."""

    batch_idx: int
    epoch: int
    lane: int
    worker: int
    tenant: str
    key_token: str
    query_fingerprint: str
    #: queries in the batch
    size: int
    #: estimated working-set bytes (the lane bookkeeping signal)
    nbytes: float
    makespan: float
    degraded: bool
    faults: int
    warnings: int
    #: entry was restored into a respawned worker from the parent outbox
    #: (not executed by this worker)
    restored: bool = False
    #: entry was re-executed by a respawned worker (crash replay of an
    #: unacknowledged entry; dispatch purity makes the outcome identical)
    reexecuted: bool = False


@dataclass(frozen=True)
class CompletionRecord:
    """One acknowledged batch completion: the merge's completion-side row.

    ``(t_end, order)`` is the master loop's completion-processing order;
    replaying records in that order (completions within a record keep
    their list order) reproduces the master's latency-sample ordering
    exactly, floats and all.
    """

    t_end: float
    order: int
    #: (tenant, latency_s, within_deadline) per query, in batch order
    completions: tuple[tuple[str, float, bool], ...]


@dataclass
class WorkerPartial:
    """Everything one worker hands back at collect time."""

    worker: int
    dispatches: list[DispatchRecord] = field(default_factory=list)
    completions: list[CompletionRecord] = field(default_factory=list)
    #: worker-local outbox size and duplicate hits (the idempotency proof)
    outbox_entries: int = 0
    outbox_hits: int = 0
    #: timeline events across every dispatch this worker simulated
    events_simulated: int = 0
    #: the worker's process-private plan-cache snapshot (None when serving
    #: without a cache); pooled rates merge via ``PlanCache.merge_stats``
    plan_cache: dict | None = None


@dataclass(frozen=True)
class RespawnEvent:
    """One crash-recovery episode, as the pool recorded it."""

    worker: int
    #: acked entries restored verbatim (no re-execution)
    restored: int
    #: unacked entries re-dispatched (re-executed; purity => same bytes)
    redispatched: int
    #: entries the parent outbox held for the dead worker at respawn time
    #: (restored + redispatched should cover it; a shortfall is the
    #: SRV603 "replay gap")
    expected: int


__all__ = ["CompletionRecord", "DispatchRecord", "RespawnEvent",
           "WorkerPartial"]

"""The worker process: a warm, long-lived dispatch simulator.

Spawned once per pool slot by :class:`repro.workers.pool.WorkerPool`.
At startup it builds a :class:`repro.serve.dispatch.DispatchEngine` from
the (pickled) device spec and serve config, **warms** it -- the runtime
is already imported and the simulator's occupancy/utilization shapes are
pre-resolved -- and then sends a ``ready`` handshake so the parent can
measure warm-spawn latency.  After that it sits in a message loop on its
pipe end until told to stop.

Message protocol (parent -> worker, replies worker -> parent):

``("dispatch", key, request, epoch, nbytes)``
    Simulate one batch.  Idempotent at the worker too: a key already in
    the worker-local outbox replies with the stored outcome and bumps
    the duplicate-hit counter -- the simulation never re-executes.
    Reply: ``("result", outcome, hit)``.
``("restore", key, record, result, ack_payload)``
    Crash replay of an *acknowledged* parent-outbox entry into a fresh
    worker: adopt the result verbatim (no execution), re-log the
    dispatch record (marked ``restored``) and the completion record so
    collect-time partials stay complete.  Reply: ``("restored",)``.
``("ack", key, t_end, order, completions)``
    Fire-and-forget: the serve loop processed this dispatch's
    completion; log it for the metrics merge.  No reply.
``("replay_budget", n)``
    Fire-and-forget, sent at respawn: the next ``n`` executed dispatches
    are crash replays of unacknowledged entries and are logged with
    ``reexecuted=True``.  No reply.
``("ping",)``
    Heartbeat.  Reply: ``("pong", worker_id, dispatches_executed)``.
``("collect",)``
    Reply: ``("partials", WorkerPartial)`` -- dispatch/completion logs,
    outbox counters, and the process-private plan-cache snapshot.
``("stop",)``
    Exit the loop (no reply).

Replies per connection are FIFO in request order, which is all the
parent's pipelined send-then-collect round needs.
"""

from __future__ import annotations

from typing import Any

from .records import CompletionRecord, DispatchRecord, WorkerPartial


def _make_record(worker_id: int, key, request, epoch: int, nbytes: float,
                 outcome, *, restored: bool = False,
                 reexecuted: bool = False) -> DispatchRecord:
    makespan, timeline, degraded, faults, warnings = outcome
    return DispatchRecord(
        batch_idx=request.batch_idx, epoch=epoch, lane=request.lane,
        worker=worker_id, tenant=key.tenant, key_token=key.token,
        query_fingerprint=key.query_fingerprint, size=len(request.batch),
        nbytes=nbytes, makespan=makespan, degraded=degraded, faults=faults,
        warnings=warnings, restored=restored, reexecuted=reexecuted)


def worker_main(conn, worker_id: int, device, config) -> None:
    """Entry point of one worker process."""
    from ..serve.dispatch import DispatchEngine, simulate_dispatch

    engine = DispatchEngine(device, config)
    engine.warm()

    outbox: dict[Any, Any] = {}   # key -> outcome (worker-local idempotency)
    outbox_hits = 0
    dispatches: list[DispatchRecord] = []
    completions: list[CompletionRecord] = []
    events_simulated = 0
    executed = 0
    replay_budget = 0  # dispatches still counted as crash re-executions

    conn.send(("ready", worker_id))

    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        kind = msg[0]

        if kind == "dispatch":
            _, key, request, epoch, nbytes = msg
            if key in outbox:
                outbox_hits += 1
                conn.send(("result", outbox[key], True))
                continue
            outcome = simulate_dispatch(engine, request)
            executed += 1
            reexec = replay_budget > 0
            if reexec:
                replay_budget -= 1
            outbox[key] = outcome
            dispatches.append(_make_record(
                worker_id, key, request, epoch, nbytes, outcome,
                reexecuted=reexec))
            events_simulated += len(outcome[1].events)
            conn.send(("result", outcome, False))

        elif kind == "restore":
            _, key, record, result, ack_payload = msg
            outbox[key] = result
            dispatches.append(record)
            if ack_payload is not None:
                t_end, order, comps = ack_payload
                completions.append(CompletionRecord(
                    t_end=t_end, order=order, completions=tuple(comps)))
            conn.send(("restored",))

        elif kind == "replay_budget":
            # the parent is about to re-dispatch N unacked entries of the
            # crashed predecessor; log those executions as re-executions
            replay_budget += msg[1]

        elif kind == "ack":
            _, key, t_end, order, comps = msg
            completions.append(CompletionRecord(
                t_end=t_end, order=order, completions=tuple(comps)))

        elif kind == "ping":
            conn.send(("pong", worker_id, executed))

        elif kind == "collect":
            cache = config.plan_cache
            conn.send(("partials", WorkerPartial(
                worker=worker_id,
                dispatches=list(dispatches),
                completions=list(completions),
                outbox_entries=len(outbox),
                outbox_hits=outbox_hits,
                events_simulated=events_simulated,
                plan_cache=cache.stats() if cache is not None else None,
            )))

        elif kind == "stop":
            break

        else:  # pragma: no cover - protocol bug
            raise RuntimeError(f"worker {worker_id}: unknown message {kind!r}")

    conn.close()


__all__ = ["worker_main"]

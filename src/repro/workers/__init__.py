"""Warm worker-pool serving: multi-process scale-out for the query server.

``ServeConfig(workers=N)`` (CLI: ``repro serve --workers N``) moves
dispatch simulation into N long-lived worker processes, each owning its
simulated device lanes, warmed calibration, and a process-private plan
cache.  Tenants shard across workers deterministically; every dispatch is
idempotent (keyed on ``(seed, tenant, query_fingerprint, sequence)``)
with a result outbox, so retries and crash replays never re-execute; and
the merged cross-worker metrics are byte-identical to the single-process
path at the same seed.  See docs/SERVING.md, "Worker pools".
"""

from .merge import (PoolReport, admission_partial, build_pool_report,
                    merge_metrics, worker_metrics)
from .outbox import DispatchKey, OutboxEntry, ResultOutbox
from .pool import WorkerPool
from .records import (CompletionRecord, DispatchRecord, RespawnEvent,
                      WorkerPartial)
from .router import Assignment, TenantRouter, route_tenant

__all__ = [
    "Assignment",
    "CompletionRecord",
    "DispatchKey",
    "DispatchRecord",
    "OutboxEntry",
    "PoolReport",
    "RespawnEvent",
    "ResultOutbox",
    "TenantRouter",
    "WorkerPartial",
    "WorkerPool",
    "admission_partial",
    "build_pool_report",
    "merge_metrics",
    "route_tenant",
    "worker_metrics",
]

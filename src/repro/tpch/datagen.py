"""Synthetic TPC-H data generator (dbgen substitute).

Generates all eight TPC-H tables at a given scale factor with value
distributions matching the TPC-H specification closely enough for the
benchmark selectivities:

* shipdate uniform over ~7 years, so ``shipdate <= 1998-09-02`` keeps ~98%;
* receiptdate > commitdate for roughly half the lineitems (Q21's "late"
  filter, tunable);
* orderstatus 'F' for roughly half the orders;
* discount 0-10%, tax 0-8%, quantity 1-50 (Q1 aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ra.relation import Relation
from .schema import (
    C_MKTSEGMENTS,
    LINESTATUS_CODES,
    L_SHIPINSTRUCTS,
    L_SHIPMODES,
    NATION_NAMES,
    NATION_REGION,
    O_COMMENTS,
    O_PRIORITIES,
    ORDERSTATUS_CODES,
    P_BRANDS,
    P_CONTAINERS,
    P_MFGRS,
    P_NAMES,
    P_TYPES,
    REGION_NAMES,
    RETURNFLAG_CODES,
    S_COMMENTS,
    date_to_int,
    scaled_rows,
)


@dataclass(frozen=True)
class TpchConfig:
    scale_factor: float = 0.01
    seed: int = 1992
    #: fraction of lineitems with receiptdate > commitdate (Q21 filter)
    late_fraction: float = 0.5
    #: Zipf exponent for the orderkey/suppkey foreign keys; 0 = uniform.
    #: Skew concentrates lineitems on few orders/suppliers, stressing the
    #: duplicate-key paths of joins and the per-order aggregates.
    skew: float = 0.0


def _skewed_keys(rng: np.random.Generator, n: int, n_keys: int,
                 skew: float) -> np.ndarray:
    """Foreign keys in [1, n_keys], Zipf-distributed when skew > 0."""
    if skew <= 0:
        return rng.integers(1, n_keys + 1, n).astype(np.int32)
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    keys = rng.choice(np.arange(1, n_keys + 1, dtype=np.int32), size=n,
                      p=weights)
    # randomize which key is "hot" so skew does not correlate with key value
    perm = rng.permutation(n_keys).astype(np.int32)
    return perm[keys - 1] + 1


def generate_nation() -> Relation:
    n = len(NATION_NAMES)
    return Relation({
        "nationkey": np.arange(n, dtype=np.int32),
        "name_code": np.arange(n, dtype=np.int32),
        "regionkey": np.array(NATION_REGION, dtype=np.int32),
    }, key="nationkey")


def generate_region() -> Relation:
    n = len(REGION_NAMES)
    return Relation({
        "regionkey": np.arange(n, dtype=np.int32),
        "name_code": np.arange(n, dtype=np.int32),
    }, key="regionkey")


def generate_supplier(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 1)
    n = scaled_rows("supplier", config.scale_factor)
    # draw order matters: nationkey first keeps pre-existing columns
    # byte-identical across generator versions
    nationkey = rng.integers(0, len(NATION_NAMES), n).astype(np.int32)
    acctbal = rng.random(n).astype(np.float32) * np.float32(10_999.98) \
        - np.float32(999.99)
    comment_code = rng.integers(0, len(S_COMMENTS), n).astype(np.int16)
    return Relation({
        "suppkey": np.arange(1, n + 1, dtype=np.int32),
        "nationkey": nationkey,
        "acctbal": acctbal,
        "comment_code": comment_code,
        "name": np.array([f"Supplier#{k:09d}" for k in range(1, n + 1)]),
    }, key="suppkey")


def generate_part(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 5)
    n = scaled_rows("part", config.scale_factor)
    return Relation({
        "partkey": np.arange(1, n + 1, dtype=np.int32),
        "name_code": rng.integers(0, len(P_NAMES), n).astype(np.int16),
        "mfgr": rng.integers(0, len(P_MFGRS), n).astype(np.int8),
        "brand": rng.integers(0, len(P_BRANDS), n).astype(np.int8),
        "type": rng.integers(0, len(P_TYPES), n).astype(np.int16),
        "size": rng.integers(1, 51, n).astype(np.int32),
        "container": rng.integers(0, len(P_CONTAINERS), n).astype(np.int8),
        "retailprice": rng.random(n).astype(np.float32) * 1_100 + 900,
    }, key="partkey")


def _partsupp_step(n_suppliers: int) -> tuple[int, int]:
    """(suppliers per part, key stride) of the partsupp association."""
    return min(4, n_suppliers), max(1, n_suppliers // 4)


def generate_partsupp(config: TpchConfig, n_parts: int | None = None,
                      n_suppliers: int | None = None) -> Relation:
    """Each part is supplied by up to four suppliers picked by a fixed
    formula, so lineitem's (partkey, suppkey) pairs can be made consistent
    with partsupp without sampling it."""
    rng = np.random.default_rng(config.seed + 6)
    n_parts = n_parts or scaled_rows("part", config.scale_factor)
    n_suppliers = n_suppliers or scaled_rows("supplier", config.scale_factor)
    per, step = _partsupp_step(n_suppliers)
    p = np.repeat(np.arange(1, n_parts + 1, dtype=np.int64), per)
    k = np.tile(np.arange(per, dtype=np.int64), n_parts)
    suppkey = ((p - 1 + k * step) % n_suppliers + 1).astype(np.int32)
    n = len(p)
    return Relation({
        "partkey": p.astype(np.int32),
        "suppkey": suppkey,
        "availqty": rng.integers(1, 10_000, n).astype(np.int32),
        "supplycost": rng.random(n).astype(np.float32) * 999 + 1,
    }, key="partkey")


def generate_customer(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 4)
    n = scaled_rows("customer", config.scale_factor)
    nationkey = rng.integers(0, len(NATION_NAMES), n).astype(np.int32)
    mktsegment = rng.integers(0, len(C_MKTSEGMENTS), n).astype(np.int8)
    acctbal = rng.random(n).astype(np.float32) * np.float32(10_999.98) \
        - np.float32(999.99)
    d1 = rng.integers(100, 1_000, n)
    d2 = rng.integers(100, 1_000, n)
    d3 = rng.integers(1_000, 10_000, n)
    # country code = 10 + nationkey, the first two phone characters (Q22)
    phone = np.array([f"{10 + c}-{a}-{b}-{e}"
                      for c, a, b, e in zip(nationkey, d1, d2, d3)])
    return Relation({
        "custkey": np.arange(1, n + 1, dtype=np.int32),
        "nationkey": nationkey,
        "mktsegment": mktsegment,
        "acctbal": acctbal,
        "phone": phone,
        "name": np.array([f"Customer#{k:09d}" for k in range(1, n + 1)]),
    }, key="custkey")


def generate_orders(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 2)
    n = scaled_rows("orders", config.scale_factor)
    status = rng.choice(
        [ORDERSTATUS_CODES["F"], ORDERSTATUS_CODES["O"], ORDERSTATUS_CODES["P"]],
        size=n, p=[0.49, 0.49, 0.02],
    ).astype(np.int8)
    # new columns are drawn after every pre-existing draw so the original
    # columns stay byte-identical across generator versions
    return Relation({
        "orderkey": np.arange(1, n + 1, dtype=np.int32),
        "custkey": rng.integers(1, max(2, n // 10), n).astype(np.int32),
        "orderstatus": status,
        "orderdate": rng.integers(0, date_to_int("1998-08-02"), n).astype(np.int32),
        "totalprice": rng.random(n).astype(np.float32) * 450_000 + 900,
        "orderpriority": rng.integers(0, len(O_PRIORITIES), n).astype(np.int8),
        "comment_code": rng.integers(0, len(O_COMMENTS), n).astype(np.int16),
        "shippriority": np.zeros(n, dtype=np.int8),
    }, key="orderkey")


def generate_lineitem(config: TpchConfig, n_orders: int | None = None,
                      n_suppliers: int | None = None,
                      n_parts: int | None = None) -> Relation:
    rng = np.random.default_rng(config.seed + 3)
    n = scaled_rows("lineitem", config.scale_factor)
    n_orders = n_orders or scaled_rows("orders", config.scale_factor)
    n_suppliers = n_suppliers or scaled_rows("supplier", config.scale_factor)
    n_parts = n_parts or scaled_rows("part", config.scale_factor)

    shipdate = rng.integers(0, date_to_int("1998-12-01"), n).astype(np.int32)
    commitdate = shipdate + rng.integers(1, 60, n).astype(np.int32)
    late = rng.random(n) < config.late_fraction
    receipt_delta = np.where(
        late,
        rng.integers(1, 30, n),      # received after commit date
        -rng.integers(0, 30, n),     # on time
    )
    receiptdate = (commitdate + receipt_delta).astype(np.int32)

    cols = {
        "orderkey": _skewed_keys(rng, n, n_orders, config.skew),
        "suppkey": _skewed_keys(rng, n, n_suppliers, config.skew),
        "linenumber": (np.arange(n) % 7 + 1).astype(np.int32),
        "quantity": rng.integers(1, 51, n).astype(np.float32),
        "extendedprice": (rng.random(n).astype(np.float32) * 90_000 + 1_000),
        "discount": (rng.integers(0, 11, n) / 100).astype(np.float32),
        "tax": (rng.integers(0, 9, n) / 100).astype(np.float32),
        "returnflag": rng.choice(
            [RETURNFLAG_CODES["A"], RETURNFLAG_CODES["N"], RETURNFLAG_CODES["R"]],
            size=n, p=[0.25, 0.5, 0.25]).astype(np.int8),
        "linestatus": rng.choice(
            [LINESTATUS_CODES["F"], LINESTATUS_CODES["O"]],
            size=n, p=[0.5, 0.5]).astype(np.int8),
        "shipdate": shipdate,
        "commitdate": commitdate,
        "receiptdate": receiptdate,
    }
    # new columns are drawn after every pre-existing draw so the original
    # columns stay byte-identical across generator versions.  partkey is
    # *derived* from the already-drawn suppkey by inverting the partsupp
    # association formula, so every (partkey, suppkey) pair exists in
    # partsupp.
    per, step = _partsupp_step(n_suppliers)
    k = rng.integers(0, per, n)
    base_p = (cols["suppkey"].astype(np.int64) - 1 - k * step) % n_suppliers + 1
    reps = (n_parts - base_p) // n_suppliers + 1
    m = rng.integers(0, 1 << 30, n) % reps
    cols["partkey"] = (base_p + m * n_suppliers).astype(np.int32)
    cols["shipmode"] = rng.integers(0, len(L_SHIPMODES), n).astype(np.int8)
    cols["shipinstruct"] = rng.integers(0, len(L_SHIPINSTRUCTS), n).astype(np.int8)
    return Relation(cols, key="orderkey")


@dataclass
class TpchData:
    nation: Relation
    supplier: Relation
    orders: Relation
    lineitem: Relation
    config: TpchConfig
    region: Relation | None = None
    part: Relation | None = None
    partsupp: Relation | None = None
    customer: Relation | None = None

    def tables(self) -> dict[str, Relation]:
        """All generated relations keyed by TPC-H table name."""
        return {
            "nation": self.nation, "supplier": self.supplier,
            "orders": self.orders, "lineitem": self.lineitem,
            "region": self.region, "part": self.part,
            "partsupp": self.partsupp, "customer": self.customer,
        }


def generate(config: TpchConfig = TpchConfig()) -> TpchData:
    """Generate all eight tables consistently (FK ranges line up)."""
    nation = generate_nation()
    region = generate_region()
    supplier = generate_supplier(config)
    orders = generate_orders(config)
    part = generate_part(config)
    partsupp = generate_partsupp(config, n_parts=part.num_rows,
                                 n_suppliers=supplier.num_rows)
    customer = generate_customer(config)
    lineitem = generate_lineitem(config, n_orders=orders.num_rows,
                                 n_suppliers=supplier.num_rows,
                                 n_parts=part.num_rows)
    return TpchData(nation=nation, supplier=supplier, orders=orders,
                    lineitem=lineitem, config=config, region=region,
                    part=part, partsupp=partsupp, customer=customer)

"""Synthetic TPC-H data generator (dbgen substitute).

Generates the lineitem / orders / supplier / nation tables at a given scale
factor with value distributions matching the TPC-H specification closely
enough for Q1/Q21 selectivities:

* shipdate uniform over ~7 years, so ``shipdate <= 1998-09-02`` keeps ~98%;
* receiptdate > commitdate for roughly half the lineitems (Q21's "late"
  filter, tunable);
* orderstatus 'F' for roughly half the orders;
* discount 0-10%, tax 0-8%, quantity 1-50 (Q1 aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ra.relation import Relation
from .schema import (
    LINESTATUS_CODES,
    NATION_NAMES,
    ORDERSTATUS_CODES,
    RETURNFLAG_CODES,
    date_to_int,
    scaled_rows,
)


@dataclass(frozen=True)
class TpchConfig:
    scale_factor: float = 0.01
    seed: int = 1992
    #: fraction of lineitems with receiptdate > commitdate (Q21 filter)
    late_fraction: float = 0.5
    #: Zipf exponent for the orderkey/suppkey foreign keys; 0 = uniform.
    #: Skew concentrates lineitems on few orders/suppliers, stressing the
    #: duplicate-key paths of joins and the per-order aggregates.
    skew: float = 0.0


def _skewed_keys(rng: np.random.Generator, n: int, n_keys: int,
                 skew: float) -> np.ndarray:
    """Foreign keys in [1, n_keys], Zipf-distributed when skew > 0."""
    if skew <= 0:
        return rng.integers(1, n_keys + 1, n).astype(np.int32)
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    keys = rng.choice(np.arange(1, n_keys + 1, dtype=np.int32), size=n,
                      p=weights)
    # randomize which key is "hot" so skew does not correlate with key value
    perm = rng.permutation(n_keys).astype(np.int32)
    return perm[keys - 1] + 1


def generate_nation() -> Relation:
    n = len(NATION_NAMES)
    return Relation({
        "nationkey": np.arange(n, dtype=np.int32),
        "name_code": np.arange(n, dtype=np.int32),
    }, key="nationkey")


def generate_supplier(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 1)
    n = scaled_rows("supplier", config.scale_factor)
    return Relation({
        "suppkey": np.arange(1, n + 1, dtype=np.int32),
        "nationkey": rng.integers(0, len(NATION_NAMES), n).astype(np.int32),
    }, key="suppkey")


def generate_orders(config: TpchConfig) -> Relation:
    rng = np.random.default_rng(config.seed + 2)
    n = scaled_rows("orders", config.scale_factor)
    status = rng.choice(
        [ORDERSTATUS_CODES["F"], ORDERSTATUS_CODES["O"], ORDERSTATUS_CODES["P"]],
        size=n, p=[0.49, 0.49, 0.02],
    ).astype(np.int8)
    return Relation({
        "orderkey": np.arange(1, n + 1, dtype=np.int32),
        "custkey": rng.integers(1, max(2, n // 10), n).astype(np.int32),
        "orderstatus": status,
        "orderdate": rng.integers(0, date_to_int("1998-08-02"), n).astype(np.int32),
    }, key="orderkey")


def generate_lineitem(config: TpchConfig, n_orders: int | None = None,
                      n_suppliers: int | None = None) -> Relation:
    rng = np.random.default_rng(config.seed + 3)
    n = scaled_rows("lineitem", config.scale_factor)
    n_orders = n_orders or scaled_rows("orders", config.scale_factor)
    n_suppliers = n_suppliers or scaled_rows("supplier", config.scale_factor)

    shipdate = rng.integers(0, date_to_int("1998-12-01"), n).astype(np.int32)
    commitdate = shipdate + rng.integers(1, 60, n).astype(np.int32)
    late = rng.random(n) < config.late_fraction
    receipt_delta = np.where(
        late,
        rng.integers(1, 30, n),      # received after commit date
        -rng.integers(0, 30, n),     # on time
    )
    receiptdate = (commitdate + receipt_delta).astype(np.int32)

    return Relation({
        "orderkey": _skewed_keys(rng, n, n_orders, config.skew),
        "suppkey": _skewed_keys(rng, n, n_suppliers, config.skew),
        "linenumber": (np.arange(n) % 7 + 1).astype(np.int32),
        "quantity": rng.integers(1, 51, n).astype(np.float32),
        "extendedprice": (rng.random(n).astype(np.float32) * 90_000 + 1_000),
        "discount": (rng.integers(0, 11, n) / 100).astype(np.float32),
        "tax": (rng.integers(0, 9, n) / 100).astype(np.float32),
        "returnflag": rng.choice(
            [RETURNFLAG_CODES["A"], RETURNFLAG_CODES["N"], RETURNFLAG_CODES["R"]],
            size=n, p=[0.25, 0.5, 0.25]).astype(np.int8),
        "linestatus": rng.choice(
            [LINESTATUS_CODES["F"], LINESTATUS_CODES["O"]],
            size=n, p=[0.5, 0.5]).astype(np.int8),
        "shipdate": shipdate,
        "commitdate": commitdate,
        "receiptdate": receiptdate,
    }, key="orderkey")


@dataclass
class TpchData:
    nation: Relation
    supplier: Relation
    orders: Relation
    lineitem: Relation
    config: TpchConfig


def generate(config: TpchConfig = TpchConfig()) -> TpchData:
    """Generate all four tables consistently (FK ranges line up)."""
    nation = generate_nation()
    supplier = generate_supplier(config)
    orders = generate_orders(config)
    lineitem = generate_lineitem(config, n_orders=orders.num_rows,
                                 n_suppliers=supplier.num_rows)
    return TpchData(nation=nation, supplier=supplier, orders=orders,
                    lineitem=lineitem, config=config)

"""TPC-H Q21 ("suppliers who kept orders waiting") -- paper Fig 17(b).

Q21 finds suppliers in a given nation whose line items were received late
(receiptdate > commitdate) on multi-supplier 'F' orders where *only* that
supplier was late.  The correlated EXISTS / NOT EXISTS are decorrelated the
standard way:

* EXISTS l2 (another supplier on the same order)      -> semi-join against
  orders with >= 2 distinct suppliers (min suppkey != max suppkey);
* NOT EXISTS l3 (another *late* supplier on the order) -> anti-join against
  orders with >= 2 distinct late suppliers.

Compared with Q1, Q21 has many more relational operators and several
AGGREGATE/SORT barriers, which is exactly why the paper measures a smaller
end-to-end gain (13.2%) -- fewer kernels can fuse.
"""

from __future__ import annotations

import numpy as np

from ..plans.plan import Plan
from ..ra.arithmetic import AggSpec
from ..ra.expr import Field
from ..ra.relation import Relation
from .schema import NATION_CODES, ORDERSTATUS_CODES

Q21_NATION = NATION_CODES["SAUDI ARABIA"]


def build_q21_plan(late_fraction: float = 0.5) -> Plan:
    """The decorrelated Q21 plan.

    Selectivity annotations (used for virtual/timing runs) assume the
    synthetic generator's distributions; functional runs ignore them.
    """
    plan = Plan(name="tpch_q21")
    lineitem = plan.source("lineitem", row_nbytes=48)
    orders = plan.source("orders", row_nbytes=13)
    supplier = plan.source("supplier", row_nbytes=8)
    nation = plan.source("nation", row_nbytes=8)

    # saudi suppliers
    sel_nation = plan.select(nation, Field("name_code").eq(Q21_NATION),
                             selectivity=1 / 25, name="sel_nation")
    saudi_supp = plan.join(supplier, sel_nation, on="nationkey",
                           match_rate=1 / 25, out_row_nbytes=8,
                           name="join_supp_nation")

    # late lineitems of saudi suppliers on F orders
    l1 = plan.select(lineitem, Field("receiptdate") > Field("commitdate"),
                     selectivity=late_fraction, name="sel_late")
    l1_keys = plan.project(l1, ["suppkey", "orderkey"], out_row_nbytes=8,
                           name="proj_late_keys")
    l1_saudi = plan.semi_join(l1_keys, saudi_supp, on="suppkey",
                              match_rate=1 / 25, name="semi_saudi")
    orders_f = plan.select(orders, Field("orderstatus").eq(ORDERSTATUS_CODES["F"]),
                           selectivity=0.49, name="sel_orders_f")
    lof = plan.semi_join(l1_saudi, orders_f, on="orderkey",
                         match_rate=0.49, name="semi_orders_f")

    # orders with >= 2 distinct suppliers (EXISTS l2): an order has two
    # distinct suppliers iff min(suppkey) != max(suppkey) within the order
    all_pairs = plan.project(lineitem, ["orderkey", "suppkey"],
                             out_row_nbytes=8, name="proj_all_pairs")
    supp_per_order = plan.aggregate(
        all_pairs, group_by=["orderkey"],
        aggs={"min_supp": AggSpec("min", "suppkey"),
              "max_supp": AggSpec("max", "suppkey")},
        n_groups=None, group_rate=0.25, name="agg_supp_per_order")
    multi_supp = plan.select(
        supp_per_order, Field("min_supp").ne(Field("max_supp")),
        selectivity=0.9, name="sel_multi_supp")
    exists_l2 = plan.semi_join(lof, multi_supp, on="orderkey",
                               match_rate=0.9, name="semi_exists_l2")

    # orders with >= 2 distinct *late* suppliers (NOT EXISTS l3)
    late_pairs = plan.project(l1, ["orderkey", "suppkey"],
                              out_row_nbytes=8, name="proj_late_pairs")
    late_per_order = plan.aggregate(
        late_pairs, group_by=["orderkey"],
        aggs={"min_late": AggSpec("min", "suppkey"),
              "max_late": AggSpec("max", "suppkey")},
        n_groups=None, group_rate=0.4, name="agg_late_per_order")
    multi_late = plan.select(
        late_per_order, Field("min_late").ne(Field("max_late")),
        selectivity=0.6, name="sel_multi_late")
    only_one_late = plan.anti_join(exists_l2, multi_late, on="orderkey",
                                   match_rate=0.5, name="anti_not_exists_l3")

    # count waits per supplier, sort by numwait descending
    numwait = plan.aggregate(
        only_one_late, group_by=["suppkey"],
        aggs={"numwait": AggSpec("count")},
        n_groups=None, group_rate=0.9, name="agg_numwait")
    plan.sort(numwait, by=["numwait"], descending=True, name="sort_numwait")
    return plan


def q21_source_rows(n_lineitem: int, n_orders: int, n_supplier: int,
                    n_nation: int = 25) -> dict[str, int]:
    return {"lineitem": n_lineitem, "orders": n_orders,
            "supplier": n_supplier, "nation": n_nation}


def q21_reference(lineitem: Relation, orders: Relation, supplier: Relation,
                  nation: Relation) -> dict[int, int]:
    """Direct NumPy computation of Q21: {suppkey: numwait}."""
    saudi_nk = nation["nationkey"][nation["name_code"] == Q21_NATION]
    saudi_supp = set(supplier["suppkey"][np.isin(supplier["nationkey"], saudi_nk)].tolist())

    f_orders = set(orders["orderkey"][orders["orderstatus"]
                                      == ORDERSTATUS_CODES["F"]].tolist())

    ok = lineitem["orderkey"]
    sk = lineitem["suppkey"]
    late = lineitem["receiptdate"] > lineitem["commitdate"]

    # distinct suppliers / distinct late suppliers per order
    supp_sets: dict[int, set[int]] = {}
    late_sets: dict[int, set[int]] = {}
    for o, s, is_late in zip(ok.tolist(), sk.tolist(), late.tolist()):
        supp_sets.setdefault(o, set()).add(s)
        if is_late:
            late_sets.setdefault(o, set()).add(s)

    counts: dict[int, int] = {}
    for o, s, is_late in zip(ok.tolist(), sk.tolist(), late.tolist()):
        if not is_late or s not in saudi_supp or o not in f_orders:
            continue
        if len(supp_sets[o]) < 2:
            continue  # EXISTS l2 fails
        if len(late_sets.get(o, ())) >= 2:
            continue  # NOT EXISTS l3 fails
        counts[s] = counts.get(s, 0) + 1
    return counts

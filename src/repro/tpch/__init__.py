"""TPC-H substrate: schema, synthetic data generator, and queries Q1/Q21."""

from .datagen import TpchConfig, TpchData, generate, generate_lineitem, generate_nation, generate_orders, generate_supplier
from .q1 import (
    Q1_CUTOFF,
    Q1_SELECT_FRACTION,
    Q1_VALUE_COLUMNS,
    build_q1_plan,
    q1_column_relations,
    q1_reference,
    q1_source_rows,
)
from .q21 import Q21_NATION, build_q21_plan, q21_reference, q21_source_rows
from .q6 import build_q6_plan, q6_reference, q6_source_rows
from .schema import (
    BASE_ROWS,
    DATE_EPOCH,
    LINESTATUS_CODES,
    NATION_CODES,
    NATION_NAMES,
    ORDERSTATUS_CODES,
    RETURNFLAG_CODES,
    date_to_int,
    scaled_rows,
)

__all__ = [
    "TpchConfig", "TpchData", "generate", "generate_lineitem",
    "generate_nation", "generate_orders", "generate_supplier", "Q1_CUTOFF",
    "Q1_SELECT_FRACTION", "Q1_VALUE_COLUMNS", "build_q1_plan",
    "q1_column_relations", "q1_reference", "q1_source_rows", "Q21_NATION",
    "build_q21_plan", "q21_reference", "q21_source_rows", "build_q6_plan",
    "q6_reference", "q6_source_rows", "BASE_ROWS",
    "DATE_EPOCH", "LINESTATUS_CODES", "NATION_CODES", "NATION_NAMES",
    "ORDERSTATUS_CODES", "RETURNFLAG_CODES", "date_to_int", "scaled_rows",
]

"""TPC-H as seen by the SQL frontend: catalog, data binding, queries.

Three layers glue the synthetic generator (:mod:`repro.tpch.datagen`) to
the frontend (:mod:`repro.frontend`):

* ``CATALOG`` -- the eight tables with SQL column names and kinds, with
  every dictionary-encoded column carrying its value pool so the binder
  can fold string predicates to code comparisons;
* ``sql_tables`` -- physical generator columns renamed to SQL names;
* ``QUERIES`` -- all 22 TPC-H queries, authored against this catalog.

The SQL is adapted to the generated dataset where the official text
would be degenerate (thresholds scaled to the synthetic row counts,
LIKE patterns restricted to values that exist in the pools); the query
*shapes* -- join graphs, subquery structure, aggregation -- follow the
specification.
"""

from __future__ import annotations

from ..frontend import Catalog, Column, Table
from ..ra.relation import Relation
from . import schema
from .datagen import TpchConfig, TpchData, generate

RETURNFLAGS = ("A", "N", "R")
LINESTATUSES = ("F", "O")
ORDERSTATUSES = ("F", "O", "P")

CATALOG = Catalog([
    Table("lineitem", [
        Column("l_orderkey", "int"),
        Column("l_partkey", "int"),
        Column("l_suppkey", "int"),
        Column("l_linenumber", "int"),
        Column("l_quantity", "float"),
        Column("l_extendedprice", "float"),
        Column("l_discount", "float"),
        Column("l_tax", "float"),
        Column("l_returnflag", "code", pool=RETURNFLAGS),
        Column("l_linestatus", "code", pool=LINESTATUSES),
        Column("l_shipdate", "date"),
        Column("l_commitdate", "date"),
        Column("l_receiptdate", "date"),
        Column("l_shipmode", "code", pool=tuple(schema.L_SHIPMODES)),
        Column("l_shipinstruct", "code", pool=tuple(schema.L_SHIPINSTRUCTS)),
    ]),
    Table("orders", [
        Column("o_orderkey", "int"),
        Column("o_custkey", "int"),
        Column("o_orderstatus", "code", pool=ORDERSTATUSES),
        Column("o_orderdate", "date"),
        Column("o_totalprice", "float"),
        Column("o_orderpriority", "code", pool=tuple(schema.O_PRIORITIES)),
        Column("o_comment", "code", pool=tuple(schema.O_COMMENTS)),
        Column("o_shippriority", "int"),
    ]),
    Table("supplier", [
        Column("s_suppkey", "int"),
        Column("s_nationkey", "int"),
        Column("s_acctbal", "float"),
        Column("s_comment", "code", pool=tuple(schema.S_COMMENTS)),
        Column("s_name", "str"),
    ]),
    Table("nation", [
        Column("n_nationkey", "int"),
        Column("n_name", "code", pool=tuple(schema.NATION_NAMES)),
        Column("n_regionkey", "int"),
    ]),
    Table("part", [
        Column("p_partkey", "int"),
        Column("p_name", "code", pool=tuple(schema.P_NAMES)),
        Column("p_mfgr", "code", pool=tuple(schema.P_MFGRS)),
        Column("p_brand", "code", pool=tuple(schema.P_BRANDS)),
        Column("p_type", "code", pool=tuple(schema.P_TYPES)),
        Column("p_size", "int"),
        Column("p_container", "code", pool=tuple(schema.P_CONTAINERS)),
        Column("p_retailprice", "float"),
    ]),
    Table("partsupp", [
        Column("ps_partkey", "int"),
        Column("ps_suppkey", "int"),
        Column("ps_availqty", "int"),
        Column("ps_supplycost", "float"),
    ]),
    Table("customer", [
        Column("c_custkey", "int"),
        Column("c_nationkey", "int"),
        Column("c_mktsegment", "code", pool=tuple(schema.C_MKTSEGMENTS)),
        Column("c_acctbal", "float"),
        Column("c_phone", "str"),
        Column("c_name", "str"),
    ]),
    Table("region", [
        Column("r_regionkey", "int"),
        Column("r_name", "code", pool=tuple(schema.REGION_NAMES)),
    ]),
])

#: physical generator column -> SQL column, per table
SQL_COLUMNS: dict[str, dict[str, str]] = {
    "lineitem": {
        "orderkey": "l_orderkey", "partkey": "l_partkey",
        "suppkey": "l_suppkey", "linenumber": "l_linenumber",
        "quantity": "l_quantity", "extendedprice": "l_extendedprice",
        "discount": "l_discount", "tax": "l_tax",
        "returnflag": "l_returnflag", "linestatus": "l_linestatus",
        "shipdate": "l_shipdate", "commitdate": "l_commitdate",
        "receiptdate": "l_receiptdate", "shipmode": "l_shipmode",
        "shipinstruct": "l_shipinstruct",
    },
    "orders": {
        "orderkey": "o_orderkey", "custkey": "o_custkey",
        "orderstatus": "o_orderstatus", "orderdate": "o_orderdate",
        "totalprice": "o_totalprice", "orderpriority": "o_orderpriority",
        "comment_code": "o_comment", "shippriority": "o_shippriority",
    },
    "supplier": {
        "suppkey": "s_suppkey", "nationkey": "s_nationkey",
        "acctbal": "s_acctbal", "comment_code": "s_comment",
        "name": "s_name",
    },
    "nation": {
        "nationkey": "n_nationkey", "name_code": "n_name",
        "regionkey": "n_regionkey",
    },
    "part": {
        "partkey": "p_partkey", "name_code": "p_name", "mfgr": "p_mfgr",
        "brand": "p_brand", "type": "p_type", "size": "p_size",
        "container": "p_container", "retailprice": "p_retailprice",
    },
    "partsupp": {
        "partkey": "ps_partkey", "suppkey": "ps_suppkey",
        "availqty": "ps_availqty", "supplycost": "ps_supplycost",
    },
    "customer": {
        "custkey": "c_custkey", "nationkey": "c_nationkey",
        "mktsegment": "c_mktsegment", "acctbal": "c_acctbal",
        "phone": "c_phone", "name": "c_name",
    },
    "region": {
        "regionkey": "r_regionkey", "name_code": "r_name",
    },
}


def sql_tables(data: TpchData) -> dict[str, Relation]:
    """Generated relations with columns renamed to their SQL names."""
    out = {}
    for name, rel in data.tables().items():
        renames = SQL_COLUMNS[name]
        out[name] = Relation({renames[c]: rel.column(c) for c in rel.fields})
    return out


def tpch_source_rows(scale_factor: float) -> dict[str, int]:
    """Row-count hints for the plan cost model at the given scale."""
    return {t: schema.scaled_rows(t, scale_factor) for t in schema.BASE_ROWS}


def tpch_dataset(scale_factor: float = 0.002, seed: int = 1992,
                 ) -> dict[str, Relation]:
    """Generate and rename a full dataset in one call."""
    data = generate(TpchConfig(scale_factor=scale_factor, seed=seed))
    return sql_tables(data)


# ---------------------------------------------------------------------------
# The 22 queries.  The FROM order and conjunct order are deliberate: the
# lowering picks the first evaluable equality as each join key, so the
# authored order selects the intended (selective) key, and every FROM
# entry after the first must share an equality with the chain built so
# far to avoid a cross product.
# ---------------------------------------------------------------------------

QUERIES: dict[str, str] = {}

QUERIES["q1"] = """
SELECT l_returnflag AS l_returnflag, l_linestatus AS l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

QUERIES["q2"] = """
SELECT s_acctbal AS s_acctbal, s_name AS s_name, n_name AS n_name,
       p_partkey AS p_partkey, p_mfgr AS p_mfgr
FROM part, partsupp, supplier, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND p_size < 26 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE'
  AND ps_supplycost = (
    SELECT MIN(ps2.ps_supplycost) AS min_cost
    FROM partsupp AS ps2, supplier AS s2, nation AS n2, region AS r2
    WHERE ps2.ps_partkey = p_partkey AND s2.s_suppkey = ps2.ps_suppkey
      AND s2.s_nationkey = n2.n_nationkey
      AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
"""

QUERIES["q3"] = """
SELECT l_orderkey AS l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate AS o_orderdate, o_shippriority AS o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

QUERIES["q4"] = """
SELECT o_orderpriority AS o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (SELECT l_orderkey AS k FROM lineitem
              WHERE l_orderkey = o_orderkey
                AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

QUERIES["q5"] = """
SELECT n_name AS n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC
"""

QUERIES["q6"] = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.071 AND l_quantity < 24
"""

QUERIES["q7"] = """
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       EXTRACT(YEAR FROM l_shipdate) AS l_year,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM supplier, lineitem, orders, customer, nation AS n1, nation AS n2
WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
  AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey
  AND c_nationkey = n2.n_nationkey
  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
       OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
  AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

QUERIES["q8"] = """
SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(CASE WHEN n2.n_name = 'BRAZIL'
                THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
         / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share
FROM lineitem, part, supplier, orders, customer, nation AS n1,
     nation AS n2, region
WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
  AND l_orderkey = o_orderkey AND o_custkey = c_custkey
  AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
  AND s_nationkey = n2.n_nationkey AND r_name = 'AMERICA'
  AND p_type = 'ECONOMY ANODIZED STEEL'
  AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY o_year
ORDER BY o_year
"""

QUERIES["q9"] = """
SELECT n_name AS nation, EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity) AS sum_profit
FROM lineitem, part, supplier, partsupp, orders, nation
WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
  AND ps_partkey = l_partkey AND ps_suppkey = l_suppkey
  AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
"""

QUERIES["q10"] = """
SELECT c_custkey AS c_custkey, c_name AS c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal AS c_acctbal, n_name AS n_name, c_phone AS c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name
ORDER BY revenue DESC
LIMIT 20
"""

QUERIES["q11"] = """
SELECT ps_partkey AS ps_partkey,
       SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) > (
  SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001 AS threshold
  FROM partsupp AS ps2, supplier AS s2, nation AS n2
  WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey
    AND n2.n_name = 'GERMANY')
ORDER BY value DESC
"""

QUERIES["q12"] = """
SELECT l_shipmode AS l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

QUERIES["q13"] = """
SELECT c_count AS c_count, COUNT(*) AS custdist
FROM (SELECT c_custkey AS c_custkey, COUNT(o_orderkey) AS c_count
      FROM customer LEFT JOIN orders
        ON c_custkey = o_custkey
       AND o_comment NOT LIKE '%special%requests%'
      GROUP BY c_custkey) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""

QUERIES["q14"] = """
SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0 END)
         / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
"""

_Q15_VIEW = """SELECT l_suppkey AS supplier_no,
             SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= DATE '1996-01-01'
        AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
      GROUP BY supplier_no"""

QUERIES["q15"] = f"""
SELECT s_suppkey AS s_suppkey, s_name AS s_name,
       total_revenue AS total_revenue
FROM supplier, ({_Q15_VIEW}) AS revenue0
WHERE s_suppkey = supplier_no
  AND total_revenue = (SELECT MAX(total_revenue) AS max_revenue
                       FROM ({_Q15_VIEW}) AS revenue1)
ORDER BY s_suppkey
"""

QUERIES["q16"] = """
SELECT p_brand AS p_brand, p_type AS p_type, p_size AS p_size,
       COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (3, 9, 14, 19, 23, 36, 45, 49)
  AND ps_suppkey NOT IN (SELECT s_suppkey AS s_suppkey FROM supplier
                         WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""

QUERIES["q17"] = """
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) AS threshold
                    FROM lineitem AS l2
                    WHERE l2.l_partkey = lineitem.l_partkey)
"""

QUERIES["q18"] = """
SELECT c_name AS c_name, c_custkey AS c_custkey,
       o_orderkey AS o_orderkey, o_orderdate AS o_orderdate,
       o_totalprice AS o_totalprice, SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
  AND o_orderkey IN (SELECT l2.l_orderkey AS l_orderkey
                     FROM lineitem AS l2
                     GROUP BY l_orderkey
                     HAVING SUM(l2.l_quantity) > 150)
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

QUERIES["q19"] = """
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5
        AND l_shipmode IN ('AIR', 'REG AIR'))
       OR (p_brand = 'Brand#23'
           AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
           AND l_quantity >= 10 AND l_quantity <= 20
           AND p_size BETWEEN 1 AND 10
           AND l_shipmode IN ('AIR', 'REG AIR'))
       OR (p_brand = 'Brand#34'
           AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
           AND l_quantity >= 20 AND l_quantity <= 30
           AND p_size BETWEEN 1 AND 15
           AND l_shipmode IN ('AIR', 'REG AIR')))
"""

QUERIES["q20"] = """
SELECT s_name AS s_name, s_acctbal AS s_acctbal
FROM supplier, nation
WHERE s_nationkey = n_nationkey
  AND n_name IN ('CANADA', 'BRAZIL', 'ARGENTINA', 'PERU', 'UNITED STATES')
  AND s_suppkey IN (
    SELECT ps_suppkey AS ps_suppkey FROM partsupp
    WHERE ps_partkey IN (SELECT p_partkey AS p_partkey FROM part
                         WHERE p_name LIKE '%green%')
      AND ps_availqty > (SELECT 0.5 * SUM(l_quantity) AS threshold
                         FROM lineitem
                         WHERE l_partkey = ps_partkey
                           AND l_suppkey = ps_suppkey
                           AND l_shipdate >= DATE '1994-01-01'
                           AND l_shipdate <
                               DATE '1994-01-01' + INTERVAL '1' YEAR))
ORDER BY s_name
"""

QUERIES["q21"] = """
SELECT s_name AS s_name, COUNT(*) AS numwait
FROM supplier, lineitem AS l1, orders, nation
WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (SELECT l2.l_orderkey AS k FROM lineitem AS l2
              WHERE l2.l_orderkey = l1.l_orderkey
                AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (SELECT l3.l_orderkey AS k FROM lineitem AS l3
                  WHERE l3.l_orderkey = l1.l_orderkey
                    AND l3.l_suppkey <> l1.l_suppkey
                    AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey
  AND n_name IN ('SAUDI ARABIA', 'IRAN', 'IRAQ', 'JORDAN', 'EGYPT')
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
"""

QUERIES["q22"] = """
SELECT cntrycode AS cntrycode, COUNT(*) AS numcust,
       SUM(c_acctbal) AS totacctbal
FROM (SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode,
             c_acctbal AS c_acctbal
      FROM customer
      WHERE SUBSTRING(c_phone FROM 1 FOR 2)
              IN ('13', '31', '23', '29', '30', '18', '17')
        AND c_acctbal > (
          SELECT AVG(c2.c_acctbal) AS avg_bal FROM customer AS c2
          WHERE c2.c_acctbal > 0.0
            AND SUBSTRING(c2.c_phone FROM 1 FOR 2)
                  IN ('13', '31', '23', '29', '30', '18', '17'))
        AND NOT EXISTS (SELECT o_orderkey AS k FROM orders
                        WHERE o_custkey = c_custkey
                          AND o_orderdate >= DATE '1998-01-01')) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode
"""

QUERIES = {f"q{i}": QUERIES[f"q{i}"].strip() for i in range(1, 23)}


def compile_tpch(name: str, scale_factor: float = 0.01):
    """Compile one catalog query to a plan (raises on unsupported)."""
    from ..frontend import compile_sql
    return compile_sql(QUERIES[name], CATALOG,
                       source_rows=tpch_source_rows(scale_factor),
                       name=name)


def validate_tpch(scale_factor: float = 0.002, seed: int = 1992):
    """Differentially validate the whole suite at the given scale."""
    from ..frontend import validate_suite
    tables = tpch_dataset(scale_factor=scale_factor, seed=seed)
    return validate_suite(QUERIES, CATALOG, tables,
                          source_rows=tpch_source_rows(scale_factor))

"""The full eight-table TPC-H schema.

Columns are stored as compact NumPy dtypes ("compressed row data" in the
paper's terms): dates are int32 days since 1992-01-01, enumerated strings
(flags, statuses, names, comments) are small integer codes with decode
pools.  Only genuinely free-form text (customer phone numbers, the derived
``Supplier#``/``Customer#`` names) is stored as unicode.
"""

from __future__ import annotations

import numpy as np

#: epoch for integer dates
DATE_EPOCH = np.datetime64("1992-01-01")


def date_to_int(date: str) -> int:
    """Days since 1992-01-01 for an ISO date string."""
    return int((np.datetime64(date) - DATE_EPOCH).astype(int))


# enumerated column code tables -------------------------------------------------
RETURNFLAG_CODES = {"A": 0, "N": 1, "R": 2}
LINESTATUS_CODES = {"F": 0, "O": 1}
ORDERSTATUS_CODES = {"F": 0, "O": 1, "P": 2}
NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
NATION_CODES = {name: i for i, name in enumerate(NATION_NAMES)}

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
REGION_CODES = {name: i for i, name in enumerate(REGION_NAMES)}

#: region of each nation, indexed by nationkey (TPC-H fixed mapping)
NATION_REGION = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
    4, 2, 3, 3, 1,
]

# decode pools for dictionary-encoded string columns ---------------------------
_P_TYPE_S1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_P_TYPE_S2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_P_TYPE_S3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
P_TYPES = [f"{a} {b} {c}" for a in _P_TYPE_S1 for b in _P_TYPE_S2
           for c in _P_TYPE_S3]

_P_CONTAINER_S1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_P_CONTAINER_S2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
P_CONTAINERS = [f"{a} {b}" for a in _P_CONTAINER_S1 for b in _P_CONTAINER_S2]

P_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
P_MFGRS = [f"Manufacturer#{m}" for m in range(1, 6)]

_P_NAME_COLORS = [
    "almond", "antique", "azure", "beige", "bisque", "blush", "burnished",
    "chartreuse", "chiffon", "coral", "cornsilk", "firebrick", "forest",
    "frosted", "goldenrod", "green", "honeydew", "indian", "ivory",
    "lavender", "lemon", "magenta", "maroon", "midnight",
]
#: deterministic triples of color words (dbgen's five-word names, shortened)
P_NAMES = [
    " ".join((
        _P_NAME_COLORS[i % len(_P_NAME_COLORS)],
        _P_NAME_COLORS[(7 * i + 3) % len(_P_NAME_COLORS)],
        _P_NAME_COLORS[(13 * i + 5) % len(_P_NAME_COLORS)],
    ))
    for i in range(120)
]

O_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

#: order comments; a few match Q13's ``%special%requests%`` exclusion
O_COMMENTS = [
    "carefully final deposits boost blithely",
    "pending accounts nag furiously",
    "special packages among the requests detect slyly",
    "quickly express ideas haggle",
    "ironic requests sleep carefully",
    "special pending requests are quietly regular",
    "furiously unusual theodolites cajole",
    "regular instructions above the foxes wake",
    "silent deposits use about the slyly special packages",
    "bold requests along the platelets solve",
    "blithely ironic accounts affix special bold requests",
    "express foxes nag against the even asymptotes",
    "daring courts sleep along the quiet dependencies",
    "even pinto beans integrate furiously",
    "enticing requests boost carefully special sentiments",
    "final ideas detect above the stealthy dolphins",
]

#: supplier comments; a few match Q16's ``%Customer%Complaints%`` exclusion
S_COMMENTS = [
    "blithely regular packages use carefully",
    "requests sleep against the instructions",
    "Customer deposits wake slyly Complaints about the furious accounts",
    "quickly even asymptotes among the theodolites",
    "express dependencies print furiously",
    "Customer accounts cajole quickly after the final Complaints",
    "carefully ironic packages detect about the foxes",
    "silent requests along the pending warhorses nag",
    "slyly bold excuses across the regular ideas boost",
    "unusual deposits haggle furiously",
    "final theodolites against the dugouts thrash",
    "enticing platelets sleep quietly",
]

C_MKTSEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                 "HOUSEHOLD"]
L_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
L_SHIPINSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                   "TAKE BACK RETURN"]

#: base (scale factor 1) cardinalities
BASE_ROWS = {
    "lineitem": 6_001_215,
    "orders": 1_500_000,
    "supplier": 10_000,
    "nation": 25,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "region": 5,
}

#: tables whose cardinality does not scale
FIXED_TABLES = ("nation", "region")

LINEITEM_COLUMNS = [
    ("orderkey", np.int32),
    ("suppkey", np.int32),
    ("linenumber", np.int32),
    ("quantity", np.float32),
    ("extendedprice", np.float32),
    ("discount", np.float32),
    ("tax", np.float32),
    ("returnflag", np.int8),
    ("linestatus", np.int8),
    ("shipdate", np.int32),
    ("commitdate", np.int32),
    ("receiptdate", np.int32),
    ("partkey", np.int32),
    ("shipmode", np.int8),
    ("shipinstruct", np.int8),
]

ORDERS_COLUMNS = [
    ("orderkey", np.int32),
    ("custkey", np.int32),
    ("orderstatus", np.int8),
    ("orderdate", np.int32),
    ("totalprice", np.float32),
    ("orderpriority", np.int8),
    ("comment_code", np.int16),
    ("shippriority", np.int8),
]

SUPPLIER_COLUMNS = [
    ("suppkey", np.int32),
    ("nationkey", np.int32),
    ("acctbal", np.float32),
    ("comment_code", np.int16),
    ("name", np.str_),
]

NATION_COLUMNS = [
    ("nationkey", np.int32),
    ("name_code", np.int32),
    ("regionkey", np.int32),
]

PART_COLUMNS = [
    ("partkey", np.int32),
    ("name_code", np.int16),
    ("mfgr", np.int8),
    ("brand", np.int8),
    ("type", np.int16),
    ("size", np.int32),
    ("container", np.int8),
    ("retailprice", np.float32),
]

PARTSUPP_COLUMNS = [
    ("partkey", np.int32),
    ("suppkey", np.int32),
    ("availqty", np.int32),
    ("supplycost", np.float32),
]

CUSTOMER_COLUMNS = [
    ("custkey", np.int32),
    ("nationkey", np.int32),
    ("mktsegment", np.int8),
    ("acctbal", np.float32),
    ("phone", np.str_),
    ("name", np.str_),
]

REGION_COLUMNS = [
    ("regionkey", np.int32),
    ("name_code", np.int32),
]


def scaled_rows(table: str, scale_factor: float) -> int:
    """Row count for `table` at the given scale factor (nation/region fixed)."""
    if table not in BASE_ROWS:
        raise KeyError(f"unknown table {table!r}; have {sorted(BASE_ROWS)}")
    if table in FIXED_TABLES:
        return BASE_ROWS[table]
    return max(1, int(round(BASE_ROWS[table] * scale_factor)))

"""TPC-H schema subset used by Q1 and Q21.

Columns are stored as compact NumPy dtypes ("compressed row data" in the
paper's terms): dates are int32 days since 1992-01-01, enumerated strings
(flags, statuses, nation names) are small integer codes with decode tables.
"""

from __future__ import annotations

import numpy as np

#: epoch for integer dates
DATE_EPOCH = np.datetime64("1992-01-01")


def date_to_int(date: str) -> int:
    """Days since 1992-01-01 for an ISO date string."""
    return int((np.datetime64(date) - DATE_EPOCH).astype(int))


# enumerated column code tables -------------------------------------------------
RETURNFLAG_CODES = {"A": 0, "N": 1, "R": 2}
LINESTATUS_CODES = {"F": 0, "O": 1}
ORDERSTATUS_CODES = {"F": 0, "O": 1, "P": 2}
NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
NATION_CODES = {name: i for i, name in enumerate(NATION_NAMES)}

#: base (scale factor 1) cardinalities
BASE_ROWS = {
    "lineitem": 6_001_215,
    "orders": 1_500_000,
    "supplier": 10_000,
    "nation": 25,
}

LINEITEM_COLUMNS = [
    ("orderkey", np.int32),
    ("suppkey", np.int32),
    ("linenumber", np.int32),
    ("quantity", np.float32),
    ("extendedprice", np.float32),
    ("discount", np.float32),
    ("tax", np.float32),
    ("returnflag", np.int8),
    ("linestatus", np.int8),
    ("shipdate", np.int32),
    ("commitdate", np.int32),
    ("receiptdate", np.int32),
]

ORDERS_COLUMNS = [
    ("orderkey", np.int32),
    ("custkey", np.int32),
    ("orderstatus", np.int8),
    ("orderdate", np.int32),
]

SUPPLIER_COLUMNS = [
    ("suppkey", np.int32),
    ("nationkey", np.int32),
]

NATION_COLUMNS = [
    ("nationkey", np.int32),
    ("name_code", np.int32),
]


def scaled_rows(table: str, scale_factor: float) -> int:
    """Row count for `table` at the given scale factor (nation is fixed)."""
    if table not in BASE_ROWS:
        raise KeyError(f"unknown table {table!r}; have {sorted(BASE_ROWS)}")
    if table == "nation":
        return BASE_ROWS["nation"]
    return max(1, int(round(BASE_ROWS[table] * scale_factor)))

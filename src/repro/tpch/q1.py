"""TPC-H Q1 ("pricing summary report") as the paper runs it (Fig 17(a)).

The paper's engine stores lineitem columnarly; its Q1 plan is

1. SELECT over the shipdate column (date <= 1998-09-02, ~98% pass),
2. six JOINs on the implicit row id, merging the other six columns
   (price, tax, discount, quantity, returnflag, linestatus) into one wide
   table,
3. SORT by the grouping key (returnflag, linestatus),
4. fused ARITHmetic: disc_price = price*(1-discount),
   charge = disc_price*(1+tax),
5. AGGREGATE per group: sums, averages, count.

The SELECT + 6 JOINs fuse into one kernel; the arithmetic (+ terminal
aggregation) fuses into another; SORT is the barrier in between and
dominates the baseline (~71% of its time, Fig 18(a)).
"""

from __future__ import annotations

import numpy as np

from ..plans.plan import Plan, PlanNode
from ..ra.arithmetic import AggSpec
from ..ra.expr import Const, Field
from ..ra.relation import Relation
from .schema import date_to_int

#: Q1 cutoff: 1998-12-01 minus 90 days
Q1_CUTOFF = date_to_int("1998-09-02")

#: columns merged by the six row-id JOINs, in plan order
Q1_VALUE_COLUMNS = ["extendedprice", "tax", "discount", "quantity",
                    "returnflag", "linestatus"]

#: fraction of lineitems passing the shipdate filter (shipdate uniform
#: over [0, 1998-12-01) against the 1998-09-02 cutoff)
Q1_SELECT_FRACTION = date_to_int("1998-09-02") / date_to_int("1998-12-01")


def q1_column_relations(lineitem: Relation) -> dict[str, Relation]:
    """Decompose lineitem into the 7 keyed column relations Q1 reads."""
    rowid = np.arange(lineitem.num_rows, dtype=np.int32)
    cols = {"l_shipdate": Relation(
        {"rowid": rowid, "shipdate": lineitem["shipdate"]}, key="rowid")}
    for name in Q1_VALUE_COLUMNS:
        cols[f"l_{name}"] = Relation(
            {"rowid": rowid, name: lineitem[name]}, key="rowid")
    return cols


def build_q1_plan() -> Plan:
    """The paper's Q1 plan over the columnar sources."""
    plan = Plan(name="tpch_q1")
    # columns are positional ("compressed row data"): 4 B per value, the
    # row id is implicit on the host and materialized by the SELECT
    src_date = plan.source("l_shipdate", row_nbytes=4)
    node: PlanNode = plan.select(
        src_date, Field("shipdate") <= Q1_CUTOFF,
        selectivity=Q1_SELECT_FRACTION, name="sel_shipdate")
    node.out_row_nbytes = 8  # survivors carry their materialized row id
    row_bytes = 8
    for name in Q1_VALUE_COLUMNS:
        src = plan.source(f"l_{name}", row_nbytes=4)
        row_bytes += 4
        node = plan.join(node, src, on="rowid", match_rate=1.0,
                         out_row_nbytes=row_bytes, gather=True,
                         name=f"join_{name}")
    node = plan.sort(node, by=["returnflag", "linestatus"], name="sort_group")
    node = plan.arith(
        node,
        outputs={
            "disc_price": Field("extendedprice") * (Const(1.0) - Field("discount")),
            "charge": Field("extendedprice") * (Const(1.0) - Field("discount"))
            * (Const(1.0) + Field("tax")),
        },
        out_row_nbytes=row_bytes + 16,
        name="arith_prices")
    plan.aggregate(
        node,
        group_by=["returnflag", "linestatus"],
        aggs={
            "sum_qty": AggSpec("sum", "quantity"),
            "sum_base_price": AggSpec("sum", "extendedprice"),
            "sum_disc_price": AggSpec("sum", "disc_price"),
            "sum_charge": AggSpec("sum", "charge"),
            "avg_qty": AggSpec("mean", "quantity"),
            "avg_price": AggSpec("mean", "extendedprice"),
            "avg_disc": AggSpec("mean", "discount"),
            "count_order": AggSpec("count"),
        },
        n_groups=6,
        name="agg_pricing")
    return plan


def q1_source_rows(n_lineitems: int) -> dict[str, int]:
    """Row counts for every Q1 source at the given lineitem cardinality."""
    rows = {"l_shipdate": n_lineitems}
    for name in Q1_VALUE_COLUMNS:
        rows[f"l_{name}"] = n_lineitems
    return rows


def q1_reference(lineitem: Relation) -> dict[tuple[int, int], dict[str, float]]:
    """Direct NumPy computation of the Q1 answer, for cross-checking."""
    mask = lineitem["shipdate"] <= Q1_CUTOFF
    flag = lineitem["returnflag"][mask]
    status = lineitem["linestatus"][mask]
    qty = lineitem["quantity"][mask].astype(np.float64)
    price = lineitem["extendedprice"][mask].astype(np.float64)
    disc = lineitem["discount"][mask].astype(np.float64)
    tax = lineitem["tax"][mask].astype(np.float64)
    disc_price = price * (1.0 - disc)
    charge = disc_price * (1.0 + tax)

    out: dict[tuple[int, int], dict[str, float]] = {}
    for f in np.unique(flag):
        for s in np.unique(status):
            grp = (flag == f) & (status == s)
            if not grp.any():
                continue
            out[(int(f), int(s))] = {
                "sum_qty": float(qty[grp].sum()),
                "sum_base_price": float(price[grp].sum()),
                "sum_disc_price": float(disc_price[grp].sum()),
                "sum_charge": float(charge[grp].sum()),
                "avg_qty": float(qty[grp].mean()),
                "avg_price": float(price[grp].mean()),
                "avg_disc": float(disc[grp].mean()),
                "count_order": int(grp.sum()),
            }
    return out

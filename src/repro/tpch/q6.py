"""TPC-H Q6 ("forecasting revenue change") -- an extension experiment.

Q6 is not in the paper's evaluation, but it is the limiting case its
Figure 2 patterns point at: three SELECTs (2(a)), arithmetic over the
survivors (2(h)) and a global AGGREGATION (2(g)) -- *every* operator is
elementwise-dependent on its producer, so the whole query fuses into a
single kernel with no barrier anywhere.  The ablation bench uses it to
show the upper bound of fusion's benefit on a real query shape.

    SELECT sum(extendedprice * discount) FROM lineitem
    WHERE shipdate >= '1994-01-01' AND shipdate < '1995-01-01'
      AND discount BETWEEN 0.05 AND 0.07 AND quantity < 24
"""

from __future__ import annotations

import numpy as np

from ..plans.plan import Plan
from ..ra.arithmetic import AggSpec
from ..ra.expr import Field
from ..ra.relation import Relation
from .schema import date_to_int

Q6_DATE_LO = date_to_int("1994-01-01")
Q6_DATE_HI = date_to_int("1995-01-01")
Q6_DISC_LO = 0.05 - 1e-6
Q6_DISC_HI = 0.07 + 1e-6
Q6_QTY = 24

#: selectivity annotations under the synthetic generator's distributions
Q6_DATE_SEL = (Q6_DATE_HI - Q6_DATE_LO) / date_to_int("1998-12-01")
Q6_DISC_SEL = 3 / 11          # discount is uniform over {0.00 .. 0.10}
Q6_QTY_SEL = 23 / 50          # quantity uniform over 1..50


def build_q6_plan() -> Plan:
    """Q6 as a plan: three SELECTs -> ARITH -> global AGGREGATE."""
    plan = Plan(name="tpch_q6")
    node = plan.source("lineitem", row_nbytes=16)
    node = plan.select(
        node,
        (Field("shipdate") >= Q6_DATE_LO) & (Field("shipdate") < Q6_DATE_HI),
        selectivity=Q6_DATE_SEL, name="sel_date")
    node = plan.select(
        node,
        (Field("discount") >= Q6_DISC_LO) & (Field("discount") <= Q6_DISC_HI),
        selectivity=Q6_DISC_SEL, name="sel_discount")
    node = plan.select(node, Field("quantity") < Q6_QTY,
                       selectivity=Q6_QTY_SEL, name="sel_quantity")
    node = plan.arith(
        node, {"revenue_item": Field("extendedprice") * Field("discount")},
        name="arith_revenue")
    plan.aggregate(node, [], {"revenue": AggSpec("sum", "revenue_item")},
                   n_groups=1, name="agg_revenue")
    return plan


def q6_source_rows(n_lineitems: int) -> dict[str, int]:
    return {"lineitem": n_lineitems}


def q6_reference(lineitem: Relation) -> float:
    """Direct NumPy computation of the Q6 revenue."""
    mask = ((lineitem["shipdate"] >= Q6_DATE_LO)
            & (lineitem["shipdate"] < Q6_DATE_HI)
            & (lineitem["discount"] >= Q6_DISC_LO)
            & (lineitem["discount"] <= Q6_DISC_HI)
            & (lineitem["quantity"] < Q6_QTY))
    price = lineitem["extendedprice"][mask].astype(np.float64)
    disc = lineitem["discount"][mask].astype(np.float64)
    return float((price * disc).sum())

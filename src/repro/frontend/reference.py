"""Reference interpreter: bound SQL -> NumPy result, no plan IR.

The differential oracle for the frontend.  It replays the shared recipes
(:mod:`repro.frontend.common`) over plain relations but takes the *naive*
road everywhere the lowering optimizes:

* no filter pushdown -- WHERE conjuncts run after the full join chain;
* no decorrelation -- EXISTS/IN/scalar subqueries are evaluated directly,
  correlated ones by probing per outer row.

Everything that determines float bit patterns is shared with the plan
path: the join-key choices, the join/aggregate/sort primitives from
:mod:`repro.ra`, and the aggregate-naming recipe.  A disagreement in the
byte-for-byte comparison therefore points at a real semantic divergence,
not float noise.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..ra import arithmetic, operators
from ..ra.expr import Compare, Field, Predicate, conjoin
from ..ra.relation import Relation
from ..ra.sort import sort as ra_sort, top_n as ra_top_n, unique as ra_unique
from ..sql.ast import Exists, InSubquery, ScalarSubquery
from .binder import BoundQuery
from .common import (
    UnsupportedError, item_outputs, order_spec, plan_aggregate, plan_chain,
    subst_expr, subst_pred,
)


def execute(bq: BoundQuery, tables: dict[str, Relation]) -> Relation:
    """Execute a bound query over ``tables`` (SQL column names)."""
    return _Reference(tables).query(bq)


class _Reference:
    def __init__(self, tables: dict[str, Relation]):
        self.tables = tables

    # -- relations -----------------------------------------------------------
    def _rel(self, bq: BoundQuery, i: int) -> Relation:
        rel = bq.rels[i]
        if rel.subquery is not None:
            return self.query(rel.subquery)
        if rel.table not in self.tables:
            raise UnsupportedError(f"no data bound for table {rel.table!r}")
        base = self.tables[rel.table]
        return Relation({rel.canonical(c): base.column(c)
                         for c in rel.columns})

    def _chain(self, bq: BoundQuery, recipe) -> Relation:
        cur = self._rel(bq, 0)
        for step in recipe.steps:
            right = self._rel(bq, step.index)
            for pred in step.push_right:
                right = operators.select(right, pred)
            if step.kind == "left":
                cur = operators.left_join(cur, right, on=step.key,
                                          match_field=step.match_field)
            elif step.key is not None:
                cur = operators.join(cur, right, on=step.key)
            else:
                cur = operators.product(cur, right)
        return cur

    # -- subquery predicates -------------------------------------------------
    def _subquery_mask(self, cur: Relation, pred: Predicate,
                       repr_map: dict[str, str]) -> np.ndarray:
        if isinstance(pred, Exists):
            return self._exists_mask(cur, pred, repr_map)
        if isinstance(pred, InSubquery):
            inner = self.query(pred.query)
            vals = inner.column(inner.fields[0])
            arr = np.asarray(
                subst_expr(pred.expr, repr_map).evaluate(cur.columns))
            mask = np.isin(arr, vals)
            return ~mask if pred.negated else mask
        if isinstance(pred, Compare):
            return self._scalar_mask(cur, pred, repr_map)
        raise UnsupportedError(
            "subquery predicates must be top-level EXISTS / IN / "
            "comparisons, not nested under OR")

    def _inner_chain(self, inner: BoundQuery):
        recipe = plan_chain(inner)
        if recipe.subqueries:
            raise UnsupportedError(
                "a subquery nested inside another subquery's WHERE clause "
                "is not supported")
        rel = self._chain(inner, recipe)
        if recipe.post_chain:
            rel = operators.select(rel, conjoin(
                [subst_pred(p, recipe.repr_map) for p in recipe.post_chain]))
        pairs = [(oc, recipe.repr_map.get(ic, ic))
                 for oc, ic in recipe.corr_pairs]
        return rel, recipe, pairs

    def _exists_mask(self, cur: Relation, pred: Exists,
                     repr_map: dict[str, str]) -> np.ndarray:
        inner = pred.query
        rel, recipe, pairs = self._inner_chain(inner)
        pairs = [(repr_map.get(oc, oc), ic) for oc, ic in pairs]
        n = cur.num_rows
        if not pairs and not recipe.corr_resid:
            mask = np.full(n, rel.num_rows > 0)
        elif not recipe.corr_resid:
            if len(pairs) == 1:
                oc, ic = pairs[0]
                mask = np.isin(cur.column(oc), rel.column(ic))
            else:
                inner_keys = set(zip(*(rel.column(ic) for _, ic in pairs)))
                mask = np.fromiter(
                    (t in inner_keys
                     for t in zip(*(cur.column(oc) for oc, _ in pairs))),
                    dtype=bool, count=n)
        else:
            # general correlation: probe candidate rows per outer row with
            # the outer values bound to the __corr columns
            resid = [subst_pred(p, recipe.repr_map)
                     for p in recipe.corr_resid]
            groups: dict[tuple, list[int]] = defaultdict(list)
            for idx, t in enumerate(zip(*(rel.column(ic)
                                          for _, ic in pairs))):
                groups[t].append(idx)
            outer_eq = [cur.column(oc) for oc, _ in pairs]
            corr_outer = {
                cn: cur.column(repr_map.get(oc, oc))
                for cn, oc in inner.correlated.items()}
            mask = np.zeros(n, dtype=bool)
            for r in range(n):
                idxs = groups.get(tuple(c[r] for c in outer_eq))
                if not idxs:
                    continue
                cols = {f: rel.column(f)[idxs] for f in rel.fields}
                for cn, col in corr_outer.items():
                    cols[cn] = np.full(len(idxs), col[r])
                ok = np.ones(len(idxs), dtype=bool)
                for p in resid:
                    ok &= np.asarray(p.evaluate(cols), dtype=bool)
                mask[r] = bool(ok.any())
        return ~mask if pred.negated else mask

    def _scalar_mask(self, cur: Relation, pred: Compare,
                     repr_map: dict[str, str]) -> np.ndarray:
        sub_left = isinstance(pred.left, ScalarSubquery)
        sub = pred.left if sub_left else pred.right
        other = pred.right if sub_left else pred.left
        if not isinstance(sub, ScalarSubquery) or isinstance(
                other, ScalarSubquery):
            raise UnsupportedError(
                "exactly one comparison side may be a scalar subquery")
        other = subst_expr(other, repr_map)
        inner = sub.query
        n = cur.num_rows
        if not inner.correlated:
            res = self.query(inner)
            col = res.column(res.fields[0])
            if len(col) == 0:
                return np.zeros(n, dtype=bool)
            values = np.full(n, col[0])
            matched = np.ones(n, dtype=bool)
        else:
            rel, recipe, pairs = self._inner_chain(inner)
            if recipe.corr_resid:
                raise UnsupportedError(
                    "correlated scalar subqueries support equality "
                    "correlation only")
            pairs = [(repr_map.get(oc, oc), ic) for oc, ic in pairs]
            group_cols = list(dict.fromkeys(ic for _, ic in pairs))
            arecipe = plan_aggregate(inner, recipe.repr_map, recipe.nullable,
                                     group_override=group_cols)
            if arecipe is None or len(inner.items) != 1:
                raise UnsupportedError(
                    "a correlated scalar subquery must compute one "
                    "aggregate")
            if arecipe.pre:
                rel = arithmetic.arith(rel, arecipe.pre)
            grouped = arithmetic.aggregate(rel, group_cols, arecipe.aggs)
            if arecipe.post:
                grouped = arithmetic.arith(grouped, arecipe.post)
            alias = inner.items[0].alias
            vcol = grouped.column(alias)
            probe = {t: vcol[i] for i, t in enumerate(
                zip(*(grouped.column(g) for g in group_cols)))}
            outer_cols = [cur.column(oc) for oc, _ in pairs]
            # dedup outer columns in the same order as group_cols
            seen: dict[str, np.ndarray] = {}
            for (oc, ic), col in zip(pairs, outer_cols):
                seen.setdefault(ic, col)
            keyed = [seen[g] for g in group_cols]
            values = np.zeros(n, dtype=vcol.dtype)
            matched = np.zeros(n, dtype=bool)
            for r in range(n):
                v = probe.get(tuple(c[r] for c in keyed))
                if v is not None:
                    values[r] = v
                    matched[r] = True
        cols = dict(cur.columns)
        cols["__scalar"] = values
        cmp = (Compare(pred.op, Field("__scalar"), other) if sub_left
               else Compare(pred.op, other, Field("__scalar")))
        return np.asarray(cmp.evaluate(cols), dtype=bool) & matched

    # -- full query ----------------------------------------------------------
    def query(self, bq: BoundQuery) -> Relation:
        recipe = plan_chain(bq)
        if recipe.corr_pairs or recipe.corr_resid:
            raise UnsupportedError(
                "correlated references are only supported inside "
                "decorrelatable EXISTS / scalar subqueries")
        cur = self._chain(bq, recipe)
        if recipe.post_chain:
            cur = operators.select(cur, conjoin(
                [subst_pred(p, recipe.repr_map) for p in recipe.post_chain]))
        for sq in recipe.subqueries:
            cur = cur.take(self._subquery_mask(cur, sq, recipe.repr_map))

        arecipe = plan_aggregate(bq, recipe.repr_map, recipe.nullable)
        if arecipe is not None:
            if arecipe.pre:
                cur = arithmetic.arith(cur, arecipe.pre)
            cur = arithmetic.aggregate(cur, arecipe.group_by, arecipe.aggs)
            if arecipe.post:
                cur = arithmetic.arith(cur, arecipe.post)
            for c in arecipe.having_plain:
                cur = operators.select(cur, c)
            for sq in arecipe.having_subqueries:
                cur = cur.take(self._subquery_mask(cur, sq, {}))
        else:
            outs = item_outputs(bq, recipe.repr_map)
            if outs:
                cur = arithmetic.arith(cur, outs)

        out_fields = [i.alias for i in bq.items]
        cur = operators.project(cur, list(out_fields))
        if bq.distinct:
            cur = ra_unique(cur)
        if bq.set_op is not None:
            op, rhs_bq = bq.set_op
            rhs = self.query(rhs_bq)
            if op.startswith("union"):
                cur = operators.union_all(cur, rhs)
            else:
                cur = operators.except_all(cur, rhs)
            if op in ("union", "except"):
                cur = ra_unique(cur)
        if bq.order_by:
            by, descending = order_spec(bq)
            if bq.limit is not None:
                cur = ra_top_n(cur, by, bq.limit, descending=descending)
            else:
                cur = ra_sort(cur, by=by, descending=descending)
        elif bq.limit is not None:
            raise UnsupportedError("LIMIT without ORDER BY has no "
                                   "deterministic meaning here")
        return cur

"""Lowering: bound SQL -> fusable plan IR.

The chain/aggregation *decisions* come from :mod:`repro.frontend.common`;
this module turns them into plan nodes, applying the optimizations the
reference interpreter deliberately does not: per-relation filter pushdown
(so SELECT chains sit on the sources where fusion wants them) and
decorrelation of EXISTS / IN / scalar subqueries into SEMI/ANTI/LEFT
joins.  A correlated reference that survives lowering is a bug; the
PLN010 lint proves none do.

Decorrelation strategies, by subquery shape:

* uncorrelated ``[NOT] IN (subquery)``   -> SEMI/ANTI join on the column;
* equality-correlated ``[NOT] EXISTS``   -> SEMI/ANTI join on the pair;
* EXISTS with an extra ``<>`` conjunct   -> per-key MIN/MAX aggregate +
  LEFT JOIN + match-indicator predicate (the Q21 shape);
* uncorrelated scalar subquery           -> 1-row aggregate + PRODUCT;
* equality-correlated scalar aggregate   -> per-key aggregate + inner
  JOIN (order-preserving) + comparison against the joined value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..plans.plan import Plan, PlanNode
from ..ra.arithmetic import AggSpec
from ..ra.expr import And, Compare, Const, Field, Not, Or, Predicate
from ..sql.ast import AggExpr, Exists, InSubquery, ScalarSubquery
from .binder import BoundQuery, BoundRel, bind_sql
from .catalog import Catalog, table_row_nbytes
from .common import (
    AggRecipe, ChainRecipe, UnsupportedError, item_outputs, order_spec,
    plan_aggregate, plan_chain, subst_expr, subst_pred,
)

#: default selectivity assumed for a pushed-down filter conjunct
FILTER_SELECTIVITY = 0.5


@dataclass
class CompiledQuery:
    """A lowered query: the plan, its sink, and the output column order."""

    plan: Plan
    sink: PlanNode
    out_fields: list[str]
    bound: BoundQuery


class Lowering:
    def __init__(self, catalog: Catalog,
                 source_rows: dict[str, int] | None = None,
                 name: str = "query"):
        self.catalog = catalog
        self.source_rows = source_rows or {}
        self.plan = Plan(name=name)
        self._sources: dict[str, PlanNode] = {}
        self._uid = itertools.count()

    # -- relations -----------------------------------------------------------
    def _source(self, table: str) -> PlanNode:
        if table not in self._sources:
            t = self.catalog.table(table)
            self._sources[table] = self.plan.source(
                table, row_nbytes=table_row_nbytes(t),
                n_rows=self.source_rows.get(table),
                fields=t.column_names)
        return self._sources[table]

    def _rel_node(self, rel: BoundRel) -> PlanNode:
        if rel.subquery is not None:
            node, _ = self._query(rel.subquery)
            return node
        node = self._source(rel.table)
        if rel.prefix:
            outputs = {rel.canonical(c): Field(c) for c in rel.columns}
            node = self.plan.arith(node, outputs, keep=[],
                                   name=f"alias_{rel.name}")
        return node

    # -- chain ---------------------------------------------------------------
    def _chain(self, bq: BoundQuery, recipe: ChainRecipe) -> PlanNode:
        def with_local(i: int) -> PlanNode:
            node = self._rel_node(bq.rels[i])
            for pred in recipe.local[i]:
                node = self.plan.select(node, pred,
                                        selectivity=FILTER_SELECTIVITY)
            return node

        cur = with_local(0)
        for step in recipe.steps:
            right = with_local(step.index)
            if step.kind == "left":
                cur = self.plan.left_join(cur, right, on=step.key,
                                          match_field=step.match_field)
            elif step.key is not None:
                cur = self.plan.join(cur, right, on=step.key)
            else:
                right_rows = self.source_rows.get(
                    bq.rels[step.index].table or "", 1)
                cur = self.plan.product(cur, right, right_rows=right_rows)
            for pred in step.residual:
                cur = self.plan.select(cur, subst_pred(pred, recipe.repr_map),
                                       selectivity=FILTER_SELECTIVITY)
        return cur

    # -- decorrelation -------------------------------------------------------
    def _inner_chain(self, inner: BoundQuery) -> tuple[PlanNode, ChainRecipe]:
        recipe = plan_chain(inner)
        if recipe.subqueries:
            raise UnsupportedError(
                "a subquery nested inside another subquery's WHERE clause "
                "is not supported")
        return self._chain(inner, recipe), recipe

    def _resolve_pairs(self, recipe, repr_map) -> "list[tuple[str, str]]":
        return [(repr_map.get(o, o),
                 recipe.repr_map.get(i, i)) for o, i in recipe.corr_pairs]

    def _apply_subquery(self, cur: PlanNode, pred: Predicate,
                        repr_map: dict[str, str]) -> PlanNode:
        if isinstance(pred, Exists):
            return self._lower_exists(cur, pred, repr_map)
        if isinstance(pred, InSubquery):
            return self._lower_in(cur, pred, repr_map)
        if isinstance(pred, Compare):
            return self._lower_scalar_compare(cur, pred, repr_map)
        raise UnsupportedError(
            "subquery predicates must be top-level EXISTS / IN / "
            "comparisons, not nested under OR")

    def _lower_exists(self, cur, pred: Exists, repr_map) -> PlanNode:
        inner: BoundQuery = pred.query
        node, recipe = self._inner_chain(inner)
        pairs = self._resolve_pairs(recipe, repr_map)
        if not pairs:
            raise UnsupportedError(
                "EXISTS without a correlated equality is not supported")
        if not recipe.corr_resid:
            if len(pairs) != 1:
                raise UnsupportedError(
                    "EXISTS supports one correlated equality, "
                    f"found {len(pairs)}")
            outer_col, inner_col = pairs[0]
            node = self.plan.project(node, [inner_col])
            joiner = self.plan.anti_join if pred.negated else self.plan.semi_join
            return joiner(cur, node, on=(outer_col, inner_col))
        # Q21 shape: one equality plus one inequality against the outer row.
        # A per-key MIN/MAX summary decides "any inner row differs".
        if len(pairs) != 1 or len(recipe.corr_resid) != 1:
            raise UnsupportedError(
                "EXISTS supports one equality plus one inequality "
                "correlation, found more")
        resid = recipe.corr_resid[0]
        if not (isinstance(resid, Compare) and resid.op == "!="
                and isinstance(resid.left, Field)
                and isinstance(resid.right, Field)):
            raise UnsupportedError(
                "the extra EXISTS correlation must be a '<>' between two "
                "columns")
        sides = {resid.left.name, resid.right.name}
        corr_name = next((s for s in sides if s in inner.correlated), None)
        if corr_name is None or len(sides) != 2:
            raise UnsupportedError(
                "the extra EXISTS correlation must compare an inner column "
                "with an outer column")
        inner_neq = next(s for s in sides if s != corr_name)
        inner_neq = recipe.repr_map.get(inner_neq, inner_neq)
        outer_neq = inner.correlated[corr_name]
        outer_neq = repr_map.get(outer_neq, outer_neq)
        outer_eq, inner_eq = pairs[0]
        u = next(self._uid)
        mn, mx, match = f"__mn{u}", f"__mx{u}", f"__dm{u}"
        agg = self.plan.aggregate(
            node, [inner_eq], {mn: AggSpec("min", inner_neq),
                               mx: AggSpec("max", inner_neq)},
            n_groups=None, group_rate=0.1)
        cur = self.plan.left_join(cur, agg, on=(outer_eq, inner_eq),
                                  match_field=match)
        exists = And(Compare("==", Field(match), Const(1)),
                     Or(Compare("!=", Field(mn), Field(outer_neq)),
                        Compare("!=", Field(mx), Field(outer_neq))))
        return self.plan.select(cur, Not(exists) if pred.negated else exists,
                                selectivity=FILTER_SELECTIVITY)

    def _lower_in(self, cur, pred: InSubquery, repr_map) -> PlanNode:
        inner: BoundQuery = pred.query
        if inner.correlated:
            raise UnsupportedError(
                "correlated IN (subquery) is not supported; use EXISTS")
        probe = subst_expr(pred.expr, repr_map)
        if not isinstance(probe, Field):
            raise UnsupportedError(
                "the left side of IN (subquery) must be a plain column")
        node, fields = self._query(inner)
        joiner = self.plan.anti_join if pred.negated else self.plan.semi_join
        return joiner(cur, node, on=(probe.name, fields[0]))

    def _lower_scalar_compare(self, cur, pred: Compare, repr_map) -> PlanNode:
        sub_left = isinstance(pred.left, ScalarSubquery)
        sub = pred.left if sub_left else pred.right
        other = pred.right if sub_left else pred.left
        if not isinstance(sub, ScalarSubquery) or isinstance(
                other, ScalarSubquery):
            raise UnsupportedError(
                "exactly one comparison side may be a scalar subquery")
        other = subst_expr(other, repr_map)
        inner: BoundQuery = sub.query
        u = next(self._uid)
        if not inner.correlated:
            node, fields = self._query(inner)
            value = f"__scalar{u}"
            node = self.plan.arith(node, {value: Field(fields[0])}, keep=[])
            cur = self.plan.product(cur, node, right_rows=1)
        else:
            node, recipe = self._inner_chain(inner)
            if recipe.corr_resid:
                raise UnsupportedError(
                    "correlated scalar subqueries support equality "
                    "correlation only")
            pairs = self._resolve_pairs(recipe, repr_map)
            group_cols = list(dict.fromkeys(i for _, i in pairs))
            arecipe = plan_aggregate(inner, recipe.repr_map, recipe.nullable,
                                     group_override=group_cols)
            if arecipe is None or len(inner.items) != 1:
                raise UnsupportedError(
                    "a correlated scalar subquery must compute one "
                    "aggregate")
            if arecipe.pre:
                node = self.plan.arith(node, arecipe.pre)
            node = self.plan.aggregate(node, arecipe.group_by, arecipe.aggs,
                                       n_groups=None, group_rate=0.1)
            alias = inner.items[0].alias
            value_expr = arecipe.post.get(alias, Field(alias))
            gnames = {f"__g{u}_{j}": Field(c)
                      for j, c in enumerate(group_cols)}
            value = f"__v{u}"
            node = self.plan.arith(node, {**gnames, value: value_expr},
                                   keep=[])
            keyed = list(gnames)
            cur = self.plan.join(cur, node, on=(pairs[0][0], keyed[0]),
                                 preserve_order=True)
            for j in range(1, len(pairs)):
                outer_j = pairs[j][0]
                # map this pair's inner column to its __g name
                g = keyed[group_cols.index(pairs[j][1])]
                cur = self.plan.select(
                    cur, Compare("==", Field(outer_j), Field(g)),
                    selectivity=FILTER_SELECTIVITY)
        final = (Compare(pred.op, Field(value), other) if sub_left
                 else Compare(pred.op, other, Field(value)))
        return self.plan.select(cur, final, selectivity=FILTER_SELECTIVITY)

    # -- full query ----------------------------------------------------------
    def _query(self, bq: BoundQuery) -> tuple[PlanNode, list[str]]:
        if bq.correlated:
            raise UnsupportedError(
                "correlated references are only supported inside "
                "decorrelatable EXISTS / scalar subqueries")
        recipe = plan_chain(bq)
        if recipe.corr_pairs or recipe.corr_resid:
            raise UnsupportedError(
                "correlated references are only supported inside "
                "decorrelatable EXISTS / scalar subqueries")
        cur = self._chain(bq, recipe)
        for sq in recipe.subqueries:
            cur = self._apply_subquery(cur, sq, recipe.repr_map)

        arecipe = plan_aggregate(bq, recipe.repr_map, recipe.nullable)
        if arecipe is not None:
            if arecipe.pre:
                cur = self.plan.arith(cur, arecipe.pre)
            cur = self.plan.aggregate(
                cur, arecipe.group_by, arecipe.aggs,
                n_groups=1 if not arecipe.group_by else None,
                group_rate=0.01)
            if arecipe.post:
                cur = self.plan.arith(cur, arecipe.post)
            for c in arecipe.having_plain:
                cur = self.plan.select(cur, c,
                                       selectivity=FILTER_SELECTIVITY)
            for sq in arecipe.having_subqueries:
                cur = self._apply_subquery(cur, sq, {})
        else:
            outs = item_outputs(bq, recipe.repr_map)
            if outs:
                cur = self.plan.arith(cur, outs)

        out_fields = [i.alias for i in bq.items]
        cur = self.plan.project(cur, list(out_fields))
        if bq.distinct:
            cur = self.plan.unique(cur, distinct_rate=0.5)
        if bq.set_op is not None:
            op, rhs = bq.set_op
            rnode, rfields = self._query(rhs)
            if rfields != out_fields:
                rnode = self.plan.arith(
                    rnode, {a: Field(b) for a, b in zip(out_fields, rfields)},
                    keep=[])
            if op.startswith("union"):
                cur = self.plan.union_all(cur, rnode)
            else:
                cur = self.plan.except_all(cur, rnode, keep_rate=0.5)
            if op in ("union", "except"):
                cur = self.plan.unique(cur, distinct_rate=0.5)
        if bq.order_by:
            by, descending = order_spec(bq)
            if bq.limit is not None:
                cur = self.plan.top_n(cur, by, bq.limit,
                                      descending=descending)
            else:
                cur = self.plan.sort(cur, by=by, descending=descending)
        elif bq.limit is not None:
            raise UnsupportedError("LIMIT without ORDER BY has no "
                                   "deterministic meaning here")
        return cur, out_fields


def lower(bq: BoundQuery, catalog: Catalog,
          source_rows: dict[str, int] | None = None,
          name: str = "query") -> CompiledQuery:
    """Lower a bound query to a plan."""
    lowering = Lowering(catalog, source_rows=source_rows, name=name)
    sink, out_fields = lowering._query(bq)
    return CompiledQuery(plan=lowering.plan, sink=sink,
                         out_fields=out_fields, bound=bq)


def compile_sql(sql: str, catalog: Catalog,
                source_rows: dict[str, int] | None = None,
                name: str = "query") -> CompiledQuery:
    """Parse, bind, and lower in one call."""
    return lower(bind_sql(sql, catalog), catalog,
                 source_rows=source_rows, name=name)

"""Schema catalog the SQL frontend binds against.

A :class:`Catalog` names tables and typed columns.  Column kinds:

* ``int`` / ``float`` -- plain numeric columns;
* ``date``   -- int32 day-counts since the repo-wide 1992-01-01 epoch;
* ``str``    -- real unicode columns (free-form text);
* ``code``   -- dictionary-encoded strings: the stored value is an index
  into ``pool``, and the binder rewrites string comparisons/LIKE patterns
  on such columns into integer comparisons over the pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.lexer import SqlError

#: kinds that order and do arithmetic like numbers
NUMERIC_KINDS = ("int", "float", "date")


class BindError(SqlError):
    """Raised when a query does not bind against the catalog."""


@dataclass(frozen=True)
class Column:
    name: str
    kind: str                          # 'int' | 'float' | 'date' | 'str' | 'code'
    pool: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.kind not in ("int", "float", "date", "str", "code"):
            raise ValueError(f"unknown column kind {self.kind!r}")
        if (self.kind == "code") != (self.pool is not None):
            raise ValueError("exactly the 'code' kind carries a decode pool")


@dataclass(frozen=True)
class Table:
    name: str
    columns: tuple[Column, ...]

    def column(self, name: str) -> Column | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


class Catalog:
    def __init__(self, tables):
        self.tables: dict[str, Table] = {t.name: t for t in tables}

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise BindError(
                f"unknown table {name!r}; have {sorted(self.tables)}")
        return self.tables[name]


#: bytes per stored value, for plan row-width annotations
KIND_NBYTES = {"int": 4, "float": 4, "date": 4, "code": 2, "str": 16}


def table_row_nbytes(table: Table) -> int:
    return sum(KIND_NBYTES[c.kind] for c in table.columns)

"""Rules shared by the lowering and the reference interpreter.

Byte-for-byte differential validation only works if the two execution
paths agree on everything that affects *values* -- which conjunct becomes
the hash-join key, how an aggregate argument is named, when a COUNT over
a null-padded column turns into a SUM over the match indicator.  Those
decisions live here, once, as pure functions from the bound query to a
*recipe*; the lowering turns the recipe into a plan, the reference
interpreter replays it directly over NumPy relations.  The two paths then
diverge deliberately everywhere else (pushdown vs. post-join filtering,
decorrelation vs. naive nested evaluation) so they cross-check each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyze.plan_lints import CORR_PREFIX
from ..ra.arithmetic import AggSpec
from ..ra.expr import (
    And, BinOp, Case, Compare, Const, Expr, Field, Func, InList, Like, Not,
    Or, Predicate, TruePredicate,
)
from ..sql.ast import AggExpr, Exists, InSubquery, ScalarSubquery
from ..sql.lexer import SqlError
from .binder import BoundQuery


class UnsupportedError(SqlError):
    """The query parses and binds but uses a shape the frontend cannot
    lower yet; the message names the missing feature."""


# ---------------------------------------------------------------------------
# predicate utilities
# ---------------------------------------------------------------------------

def split_conjuncts(pred: Predicate | None) -> list[Predicate]:
    if pred is None or isinstance(pred, TruePredicate):
        return []
    if isinstance(pred, And):
        return split_conjuncts(pred.left) + split_conjuncts(pred.right)
    return [pred]


def has_subquery(pred: Predicate) -> bool:
    if isinstance(pred, (Exists, InSubquery)):
        return True
    if isinstance(pred, Compare):
        return (isinstance(pred.left, ScalarSubquery)
                or isinstance(pred.right, ScalarSubquery))
    if isinstance(pred, (And, Or)):
        return has_subquery(pred.left) or has_subquery(pred.right)
    if isinstance(pred, Not):
        return has_subquery(pred.inner)
    return False


def is_correlated(pred: Predicate) -> bool:
    return any(f.startswith(CORR_PREFIX) for f in pred.fields())


def subst_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite Field names through ``mapping`` (dropped join keys -> their
    surviving representative)."""
    if not mapping:
        return expr
    if isinstance(expr, Field):
        return Field(mapping.get(expr.name, expr.name))
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, subst_expr(expr.left, mapping),
                     subst_expr(expr.right, mapping))
    if isinstance(expr, Func):
        return Func(expr.func, subst_expr(expr.arg, mapping), expr.meta)
    if isinstance(expr, Case):
        whens = tuple((subst_pred(p, mapping), subst_expr(e, mapping))
                      for p, e in expr.whens)
        return Case(whens, subst_expr(expr.default, mapping))
    if isinstance(expr, AggExpr):
        arg = (subst_expr(expr.argument, mapping)
               if expr.argument is not None else None)
        return AggExpr(expr.func, arg, expr.distinct)
    return expr  # ScalarSubquery: inner scope, not rewritten


def subst_pred(pred: Predicate, mapping: dict[str, str]) -> Predicate:
    if not mapping:
        return pred
    if isinstance(pred, And):
        return And(subst_pred(pred.left, mapping),
                   subst_pred(pred.right, mapping))
    if isinstance(pred, Or):
        return Or(subst_pred(pred.left, mapping),
                  subst_pred(pred.right, mapping))
    if isinstance(pred, Not):
        return Not(subst_pred(pred.inner, mapping))
    if isinstance(pred, Compare):
        return Compare(pred.op, subst_expr(pred.left, mapping),
                       subst_expr(pred.right, mapping))
    if isinstance(pred, InList):
        return InList(subst_expr(pred.expr, mapping), pred.values)
    if isinstance(pred, Like):
        return Like(subst_expr(pred.expr, mapping), pred.pattern)
    if isinstance(pred, InSubquery):
        return InSubquery(subst_expr(pred.expr, mapping), pred.query,
                          pred.negated)
    return pred  # TruePredicate / Exists


# ---------------------------------------------------------------------------
# join-chain recipe
# ---------------------------------------------------------------------------

@dataclass
class ChainStep:
    """How relation ``rels[index]`` joins onto the chain built so far."""

    index: int
    kind: str                            # 'inner' | 'left' | 'cross'
    key: tuple[str, str] | None          # (chain field, new-rel field)
    residual: list[Predicate] = field(default_factory=list)
    push_right: list[Predicate] = field(default_factory=list)
    match_field: str | None = None       # left joins only


@dataclass
class ChainRecipe:
    local: list[list[Predicate]]         # per-rel pushable conjuncts
    steps: list[ChainStep]
    post_chain: list[Predicate]          # every non-key plain conjunct,
                                         # original order (reference path)
    subqueries: list[Predicate]          # EXISTS/IN/scalar conjuncts
    corr_pairs: list[tuple[str, str]]    # (outer canonical, inner canonical)
    corr_resid: list[Predicate]
    repr_map: dict[str, str]             # dropped field -> representative
    nullable: dict[str, str]             # null-padded field -> match field
    rel_fields: list[set[str]]


def _eq_edge(pred: Predicate, joined: set[str],
             incoming: set[str]) -> tuple[str, str] | None:
    """``a = b`` with one side already joined and the other incoming."""
    if not (isinstance(pred, Compare) and pred.op == "=="
            and isinstance(pred.left, Field) and isinstance(pred.right, Field)):
        return None
    a, b = pred.left.name, pred.right.name
    if a in joined and b in incoming:
        return (a, b)
    if b in joined and a in incoming:
        return (b, a)
    return None


def _corr_split(pred: Predicate, correlated: dict[str, str]):
    """Classify a correlated conjunct: an equality pair or a residual."""
    if (isinstance(pred, Compare) and pred.op == "=="
            and isinstance(pred.left, Field) and isinstance(pred.right, Field)):
        a, b = pred.left.name, pred.right.name
        if a in correlated and not b.startswith(CORR_PREFIX):
            return (correlated[a], b)
        if b in correlated and not a.startswith(CORR_PREFIX):
            return (correlated[b], a)
    return None


def plan_chain(bq: BoundQuery) -> ChainRecipe:
    """Decide, once, how the FROM entries chain into joins and where each
    WHERE/ON conjunct lands.  Deterministic in the query text."""
    rel_fields = [{rel.canonical(c) for c in rel.columns} for rel in bq.rels]
    seen: set[str] = set()
    for rel, fs in zip(bq.rels, rel_fields):
        clash = seen & fs
        if clash:
            raise UnsupportedError(
                f"column name {sorted(clash)[0]!r} appears in two FROM "
                "entries; alias one of them")
        seen |= fs

    subqueries: list[Predicate] = []
    corr_pairs: list[tuple[str, str]] = []
    corr_resid: list[Predicate] = []
    plain: list[tuple[Predicate, str, int]] = []   # (pred, origin, min step)

    def route(pred: Predicate, origin: str, min_step: int) -> None:
        if has_subquery(pred):
            subqueries.append(pred)
            return
        if is_correlated(pred):
            pair = _corr_split(pred, bq.correlated)
            if pair is not None:
                corr_pairs.append(pair)
            else:
                corr_resid.append(pred)
            return
        plain.append((pred, origin, min_step))

    for c in split_conjuncts(bq.where):
        route(c, "where", 0)
    for i, rel in enumerate(bq.rels):
        for c in split_conjuncts(rel.on):
            route(c, "on", i)

    local: list[list[Predicate]] = [[] for _ in bq.rels]
    deferred: list[tuple[Predicate, str, int]] = []
    for pred, origin, min_step in plain:
        fs = pred.fields()
        owner = next((i for i, rf in enumerate(rel_fields) if fs <= rf), None)
        on_left_join = origin == "on" and bq.rels[min_step].kind == "left"
        if on_left_join and owner is not None and owner != min_step:
            raise UnsupportedError(
                "a LEFT JOIN ON conjunct over the preserved side changes "
                "match semantics and is not supported")
        if owner is None or not fs:
            deferred.append((pred, origin, min_step))
            continue
        if bq.rels[owner].kind == "left" and origin == "where":
            # WHERE filters see the pads, so they stay post-join
            deferred.append((pred, origin, owner))
        else:
            local[owner].append(pred)

    repr_map: dict[str, str] = {}
    nullable: dict[str, str] = {}
    post_chain = [p for p, _, _ in plain]
    steps: list[ChainStep] = []
    joined = set(rel_fields[0])

    for i in range(1, len(bq.rels)):
        rel = bq.rels[i]
        incoming = rel_fields[i]
        if rel.kind == "left":
            # the edge must come from this join's ON list; the other ON
            # conjuncts were already pushed into the null-producing side
            on_edges = [(e, p) for e, p in
                        ((_eq_edge(c, joined, incoming), c)
                         for c in split_conjuncts(rel.on)) if e is not None]
            if len(on_edges) != 1:
                raise UnsupportedError(
                    "LEFT JOIN needs exactly one equality between the two "
                    f"sides, found {len(on_edges)}")
            key, key_pred = on_edges[0]
            key = (repr_map.get(key[0], key[0]), key[1])
            match = f"__m{i}"
            for f in incoming:
                if f != key[1]:
                    nullable[f] = match
            step = ChainStep(index=i, kind="left", key=key,
                             push_right=list(local[i]), match_field=match)
            if key_pred in post_chain:
                post_chain.remove(key_pred)
            deferred = [d for d in deferred if d[0] is not key_pred]
            joined |= incoming | {match}
        else:
            step = ChainStep(index=i, kind="cross" if rel.kind == "cross"
                             else "inner", key=None)
            if rel.kind != "cross":
                for j, (pred, origin, min_step) in enumerate(deferred):
                    if min_step > i:
                        continue
                    if not pred.fields() <= joined | incoming:
                        continue
                    edge = _eq_edge(pred, joined, incoming)
                    if edge is not None:
                        # the chain-side field may itself have been dropped
                        # as an earlier join's right key
                        step.key = (repr_map.get(edge[0], edge[0]), edge[1])
                        if pred in post_chain:
                            post_chain.remove(pred)
                        deferred.pop(j)
                        break
            joined |= incoming
        if step.key is not None:
            repr_map[step.key[1]] = repr_map.get(step.key[0], step.key[0])
        # everything now evaluable lands here, in original order
        remaining = []
        for pred, origin, min_step in deferred:
            if min_step <= i and pred.fields() <= joined:
                if origin == "on" and bq.rels[min_step].kind == "left":
                    raise UnsupportedError(
                        "a LEFT JOIN supports one equality plus conjuncts "
                        "over the null-producing side only")
                step.residual.append(pred)
            else:
                remaining.append((pred, origin, min_step))
        deferred = remaining
        steps.append(step)

    if deferred:
        bad = deferred[0][0]
        raise UnsupportedError(
            f"conjunct references fields never joined together: {bad!r}")

    # push_right conjuncts are semantic (pre-join); drop them from the
    # reference path's post-join filter
    for step in steps:
        for p in step.push_right:
            if p in post_chain:
                post_chain.remove(p)

    return ChainRecipe(local=local, steps=steps, post_chain=post_chain,
                       subqueries=subqueries, corr_pairs=corr_pairs,
                       corr_resid=corr_resid, repr_map=repr_map,
                       nullable=nullable, rel_fields=rel_fields)


# ---------------------------------------------------------------------------
# aggregation recipe
# ---------------------------------------------------------------------------

@dataclass
class AggRecipe:
    pre: dict[str, Expr]            # computed before AGGREGATE
    group_by: list[str]
    aggs: dict[str, AggSpec]
    post: dict[str, Expr]           # computed after AGGREGATE
    having_plain: list[Predicate]
    having_subqueries: list[Predicate]


def _collect_aggs(expr: Expr, out: list[AggExpr]) -> None:
    if isinstance(expr, AggExpr):
        if expr not in out:
            out.append(expr)
        return
    if isinstance(expr, BinOp):
        _collect_aggs(expr.left, out)
        _collect_aggs(expr.right, out)
    elif isinstance(expr, Case):
        for p, e in expr.whens:
            _collect_aggs_pred(p, out)
            _collect_aggs(e, out)
        _collect_aggs(expr.default, out)
    elif isinstance(expr, Func):
        _collect_aggs(expr.arg, out)


def _collect_aggs_pred(pred: Predicate, out: list[AggExpr]) -> None:
    if isinstance(pred, (And, Or)):
        _collect_aggs_pred(pred.left, out)
        _collect_aggs_pred(pred.right, out)
    elif isinstance(pred, Not):
        _collect_aggs_pred(pred.inner, out)
    elif isinstance(pred, Compare):
        _collect_aggs(pred.left, out)
        _collect_aggs(pred.right, out)


def _replace_aggs(expr: Expr, keys: dict[AggExpr, str]) -> Expr:
    if isinstance(expr, AggExpr):
        return Field(keys[expr])
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _replace_aggs(expr.left, keys),
                     _replace_aggs(expr.right, keys))
    if isinstance(expr, Case):
        whens = tuple((_replace_aggs_pred(p, keys), _replace_aggs(e, keys))
                      for p, e in expr.whens)
        return Case(whens, _replace_aggs(expr.default, keys))
    if isinstance(expr, Func):
        return Func(expr.func, _replace_aggs(expr.arg, keys), expr.meta)
    return expr


def _replace_aggs_pred(pred: Predicate, keys: dict[AggExpr, str]) -> Predicate:
    if isinstance(pred, And):
        return And(_replace_aggs_pred(pred.left, keys),
                   _replace_aggs_pred(pred.right, keys))
    if isinstance(pred, Or):
        return Or(_replace_aggs_pred(pred.left, keys),
                  _replace_aggs_pred(pred.right, keys))
    if isinstance(pred, Not):
        return Not(_replace_aggs_pred(pred.inner, keys))
    if isinstance(pred, Compare):
        return Compare(pred.op, _replace_aggs(pred.left, keys),
                       _replace_aggs(pred.right, keys))
    return pred


def plan_aggregate(bq: BoundQuery, repr_map: dict[str, str],
                   nullable: dict[str, str],
                   group_override: list[str] | None = None
                   ) -> AggRecipe | None:
    """The shared aggregation recipe: naming of aggregate outputs and
    intermediate arguments, COUNT-over-padded-column rewrites, pre/post
    compute stages, and the HAVING split."""
    items = [(i.alias, subst_expr(i.expr, repr_map)) for i in bq.items]
    having = (subst_pred(bq.having, repr_map)
              if bq.having is not None else None)

    leaves: list[AggExpr] = []
    for _, expr in items:
        _collect_aggs(expr, leaves)
    having_plain_raw: list[Predicate] = []
    having_subqueries: list[Predicate] = []
    for c in split_conjuncts(having):
        (having_subqueries if has_subquery(c) else having_plain_raw).append(c)
    for c in having_plain_raw + having_subqueries:
        # subquery leaves stay untouched; only scalar sides carry aggregates
        _collect_aggs_pred(c, leaves)

    if not leaves and not bq.group_by and group_override is None:
        return None

    keys: dict[AggExpr, str] = {}
    for idx, leaf in enumerate(leaves):
        alias = next((a for a, e in items if e == leaf), None)
        keys[leaf] = alias if alias is not None else f"__agg_{idx}"

    pre: dict[str, Expr] = {}
    group_by: list[str] = []
    if group_override is not None:
        group_by = list(group_override)
    else:
        for name in bq.group_by:
            if name in bq.group_item_aliases:
                expr = next(e for a, e in items if a == name)
                pre[name] = expr
                group_by.append(name)
            else:
                group_by.append(repr_map.get(name, name))

    aggs: dict[str, AggSpec] = {}
    for idx, leaf in enumerate(leaves):
        key = keys[leaf]
        if leaf.argument is None:
            aggs[key] = AggSpec("count")
        elif isinstance(leaf.argument, Field):
            name = leaf.argument.name
            if leaf.func == "count" and name in nullable:
                # COUNT over a null-padded column counts matches, which is
                # exactly the sum of the join's 0/1 indicator
                aggs[key] = AggSpec("sum", nullable[name])
            else:
                aggs[key] = AggSpec(leaf.func, name)
        else:
            arg = f"__arg_{idx}"
            pre[arg] = leaf.argument
            aggs[key] = AggSpec(leaf.func, arg)

    post: dict[str, Expr] = {}
    for alias, expr in items:
        if isinstance(expr, AggExpr):
            continue   # keyed directly by the item alias
        if alias in pre:
            continue   # a computed group column, already named
        if isinstance(expr, Field) and expr.name == alias:
            continue
        post[alias] = _replace_aggs(expr, keys)

    having_plain = [_replace_aggs_pred(c, keys) for c in having_plain_raw]
    having_subs = [_replace_aggs_pred(c, keys) for c in having_subqueries]
    return AggRecipe(pre=pre, group_by=group_by, aggs=aggs, post=post,
                     having_plain=having_plain,
                     having_subqueries=having_subs)


def item_outputs(bq: BoundQuery, repr_map: dict[str, str]) -> dict[str, Expr]:
    """Non-aggregated queries: the computed/renamed output columns."""
    out: dict[str, Expr] = {}
    for item in bq.items:
        expr = subst_expr(item.expr, repr_map)
        if isinstance(expr, Field) and expr.name == item.alias:
            continue
        out[item.alias] = expr
    return out


def order_spec(bq: BoundQuery) -> tuple[list[str], "bool | list[bool]"]:
    by = [name for name, _ in bq.order_by]
    descending: "bool | list[bool]" = [desc for _, desc in bq.order_by]
    if descending and all(d == descending[0] for d in descending):
        descending = descending[0]
    return by, descending

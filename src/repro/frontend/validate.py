"""Differential validation: plan execution vs. the reference interpreter.

Both executors produce NumPy relations; equality is *byte-for-byte* after
a canonical sort on every output column (the two paths agree on values,
not necessarily on row order).  Queries with ORDER BY are additionally
checked for the ordering property itself: a stable re-sort of the plan
output on the ORDER BY keys must be a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..plans.interp import evaluate
from ..ra.relation import Relation
from ..ra.sort import sort_order
from ..sql.lexer import SqlError
from .binder import bind_sql
from .catalog import BindError, Catalog
from .common import UnsupportedError, order_spec
from .lower import CompiledQuery, lower
from .reference import execute as reference_execute


def canonical(rel: Relation) -> Relation:
    """Sort on all columns; ties cannot survive over the full width."""
    if rel.num_rows <= 1:
        return rel
    order = sort_order(rel.columns, by=list(rel.fields))
    return rel.take(order)


def compare_relations(got: Relation, want: Relation) -> str | None:
    """Byte-level comparison after canonical sorting; None when equal."""
    if got.fields != want.fields:
        return f"field mismatch: {got.fields} vs {want.fields}"
    if got.num_rows != want.num_rows:
        return f"row count mismatch: {got.num_rows} vs {want.num_rows}"
    g, w = canonical(got), canonical(want)
    for name in g.fields:
        a, b = g.column(name), w.column(name)
        if a.dtype != b.dtype:
            return f"dtype mismatch on {name!r}: {a.dtype} vs {b.dtype}"
        if a.tobytes() != b.tobytes():
            diff = int(np.count_nonzero(a != b)) if a.dtype.kind != "f" else \
                int(np.count_nonzero(a.view(np.uint8) != b.view(np.uint8)))
            return f"value mismatch on {name!r} ({diff} diffs)"
    return None


def ordering_violation(rel: Relation, by: list[str],
                       descending) -> str | None:
    """A stable re-sort on the ORDER BY keys must leave every byte alone."""
    if rel.num_rows <= 1:
        return None
    order = sort_order(rel.columns, by=by, descending=descending)
    if not np.array_equal(order, np.arange(rel.num_rows)):
        return f"output is not ordered by {by}"
    return None


def run_plan(compiled: CompiledQuery, tables: dict[str, Relation]) -> Relation:
    """Execute the lowered plan over the given base tables."""
    results = evaluate(compiled.plan, sources=tables)
    return results[compiled.sink.name]


@dataclass
class QueryReport:
    """Coverage/validation record for one query (JSON-friendly)."""

    query: str
    status: str                  # ok | parse_error | bind_error | unsupported
                                 # | mismatch | error
    detail: str = ""
    rows: int = -1

    def to_json(self) -> dict:
        return {"query": self.query, "status": self.status,
                "detail": self.detail, "rows": self.rows}


def validate_sql(name: str, sql: str, catalog: Catalog,
                 tables: dict[str, Relation],
                 source_rows: dict[str, int] | None = None) -> QueryReport:
    """Compile + execute + differentially validate one query."""
    try:
        bound = bind_sql(sql, catalog)
    except BindError as exc:
        return QueryReport(name, "bind_error", str(exc))
    except SqlError as exc:
        return QueryReport(name, "parse_error", str(exc))
    try:
        compiled = lower(bound, catalog, source_rows=source_rows, name=name)
    except UnsupportedError as exc:
        return QueryReport(name, "unsupported", str(exc))
    try:
        got = run_plan(compiled, tables)
        want = reference_execute(bound, tables)
    except UnsupportedError as exc:
        return QueryReport(name, "unsupported", str(exc))
    diff = compare_relations(got, want)
    if diff is not None:
        return QueryReport(name, "mismatch", diff, rows=got.num_rows)
    if bound.order_by:
        by, descending = order_spec(bound)
        for rel in (got, want):
            diff = ordering_violation(rel, by, descending)
            if diff is not None:
                return QueryReport(name, "mismatch", diff, rows=got.num_rows)
    return QueryReport(name, "ok", rows=got.num_rows)


@dataclass
class CoverageReport:
    reports: list[QueryReport] = field(default_factory=list)

    @property
    def covered(self) -> list[str]:
        return [r.query for r in self.reports if r.status == "ok"]

    @property
    def failed(self) -> list[QueryReport]:
        return [r for r in self.reports
                if r.status in ("mismatch", "error", "parse_error")]

    def to_json(self) -> dict:
        return {
            "covered": len(self.covered),
            "total": len(self.reports),
            "queries": {r.query: r.to_json() for r in self.reports},
        }


def validate_suite(queries: dict[str, str], catalog: Catalog,
                   tables: dict[str, Relation],
                   source_rows: dict[str, int] | None = None
                   ) -> CoverageReport:
    """Differentially validate every query; never raises per-query."""
    report = CoverageReport()
    for name, sql in queries.items():
        try:
            report.reports.append(
                validate_sql(name, sql, catalog, tables,
                             source_rows=source_rows))
        except Exception as exc:   # a crash is a reportable failure, not
            report.reports.append(  # a suite abort
                QueryReport(name, "error", f"{type(exc).__name__}: {exc}"))
    return report

"""Schema-aware SQL frontend: parse, bind, lower, and validate.

The legacy :mod:`repro.sql` binder covers single-table queries; this
package handles the TPC-H-class shapes -- multi-join chains, outer joins,
subqueries (decorrelated), CASE/LIKE/date arithmetic, HAVING, top-N, and
set operations -- and pairs every compiled plan with an independent
reference interpreter for byte-for-byte differential validation.
"""

from .binder import BoundQuery, bind, bind_sql
from .catalog import BindError, Catalog, Column, Table, table_row_nbytes
from .common import UnsupportedError
from .lower import CompiledQuery, compile_sql, lower
from .reference import execute as reference_execute
from .validate import (
    CoverageReport, QueryReport, compare_relations, run_plan, validate_sql,
    validate_suite,
)

__all__ = [
    "BindError", "BoundQuery", "Catalog", "Column", "CompiledQuery",
    "CoverageReport", "QueryReport", "Table", "UnsupportedError",
    "bind", "bind_sql", "compare_relations", "compile_sql", "lower",
    "reference_execute", "run_plan", "table_row_nbytes", "validate_sql",
    "validate_suite",
]

"""Schema-aware binder: parsed SQL -> bound query.

Binding resolves every column reference against the catalog, producing
*canonical* column names that are unique across the whole query:

* columns of an unaliased table keep their SQL names (``l_orderkey``);
* columns reached through an alias get prefixed (``n1.n_name`` ->
  ``n1_n_name``), which is also how the lowering names the physical
  rename it emits for self-joins;
* references to an *enclosing* query's columns (correlation) become
  ``__corr_<canonical>`` fields -- the decorrelation pass consumes these,
  and the PLN010 lint proves none survive into the final plan.

The binder also type-checks comparisons (stable, actionable errors) and
rewrites string operations over dictionary-encoded columns into integer
form: ``p_type LIKE 'PROMO%'`` becomes an ``InList`` over the matching
pool codes, ``r_name = 'ASIA'`` becomes a comparison with the code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from ..analyze.plan_lints import CORR_PREFIX
from ..ra.expr import (
    And, BinOp, Case, Compare, Const, Expr, Field, Func, InList, Like, Not,
    Or, Predicate, TruePredicate, like_to_regex,
)
from ..sql.ast import (
    AggExpr, Exists, InSubquery, Query, ScalarSubquery, SelectItem, TableRef,
)
from ..sql.parser import parse
from .catalog import BindError, Catalog, Column, NUMERIC_KINDS, Table

_EQ_OPS = ("==", "!=")


@dataclass
class BoundRel:
    """One relation in scope: a FROM entry or a JOIN clause."""

    name: str                      # scope name (alias or table name)
    table: str | None              # catalog table name (None for derived)
    prefix: str                    # '' or '<alias>_'
    columns: dict[str, Column]     # SQL-visible name -> column meta
    kind: str                      # 'from' | 'inner' | 'left' | 'cross'
    on: Predicate | None = None    # bound ON predicate (join entries)
    subquery: "BoundQuery | None" = None

    def canonical(self, col: str) -> str:
        return self.prefix + col


@dataclass
class BoundItem:
    alias: str
    expr: Expr                     # bound; may contain AggExpr leaves
    kind: str
    pool: tuple[str, ...] | None = None   # carried for plain code columns


@dataclass
class BoundQuery:
    rels: list[BoundRel]
    items: list[BoundItem]
    where: Predicate | None
    group_by: list[str] = field(default_factory=list)        # canonical
    group_item_aliases: list[str] = field(default_factory=list)
    having: Predicate | None = None
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    set_op: "tuple[str, BoundQuery] | None" = None
    correlated: dict[str, str] = field(default_factory=dict)  # __corr_x -> x

    @property
    def output_fields(self) -> list[str]:
        return [i.alias for i in self.items]

    @property
    def has_aggregates(self) -> bool:
        return any(_contains_agg(i.expr) for i in self.items) or (
            self.having is not None and _pred_contains_agg(self.having))

    def describe(self) -> str:
        """Human-readable summary of the bound query (CLI ``--explain``)."""
        lines = ["bound query:"]
        for rel in self.rels:
            src = "(subquery)" if rel.subquery is not None else rel.table
            alias = "" if rel.name == rel.table else f" AS {rel.name}"
            on = f" ON {_short_pred(rel.on)}" if rel.on is not None else ""
            lines.append(f"  {rel.kind:>5s} {src}{alias}{on}")
        for item in self.items:
            lines.append(f"   item {item.alias} = {item.expr}")
        if self.where is not None:
            lines.append(f"  where {_short_pred(self.where)}")
        if self.group_by:
            lines.append(f"  group by {', '.join(self.group_by)}")
        if self.having is not None:
            lines.append(f" having {_short_pred(self.having)}")
        if self.order_by:
            lines.append("  order by " + ", ".join(
                f"{n} DESC" if d else n for n, d in self.order_by))
        if self.limit is not None:
            lines.append(f"  limit {self.limit}")
        if self.correlated:
            lines.append(f"   corr {self.correlated}")
        if self.set_op is not None:
            op, rhs = self.set_op
            rhs_desc = "\n".join("  " + ln for ln in
                                 rhs.describe().splitlines())
            lines.append(f" {op}:\n{rhs_desc}")
        return "\n".join(lines)


def _short_pred(pred: Predicate) -> str:
    """Predicate rendering that does not dump nested bound subqueries."""
    if isinstance(pred, And):
        return f"({_short_pred(pred.left)} AND {_short_pred(pred.right)})"
    if isinstance(pred, Or):
        return f"({_short_pred(pred.left)} OR {_short_pred(pred.right)})"
    if isinstance(pred, Not):
        return f"NOT {_short_pred(pred.inner)}"
    if isinstance(pred, Exists):
        kw = "NOT EXISTS" if pred.negated else "EXISTS"
        corr = sorted(pred.query.correlated.values())
        return f"{kw}(subquery, correlated on {corr})" if corr \
            else f"{kw}(subquery)"
    if isinstance(pred, InSubquery):
        kw = "NOT IN" if pred.negated else "IN"
        return f"{pred.expr} {kw} (subquery)"
    if isinstance(pred, Compare):
        left = ("(scalar subquery)"
                if isinstance(pred.left, ScalarSubquery) else pred.left)
        right = ("(scalar subquery)"
                 if isinstance(pred.right, ScalarSubquery) else pred.right)
        return f"{left} {pred.op} {right}"
    return str(pred)


def _contains_agg(expr: Expr) -> bool:
    if isinstance(expr, AggExpr):
        return True
    if isinstance(expr, BinOp):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    if isinstance(expr, Case):
        return (_contains_agg(expr.default)
                or any(_pred_contains_agg(p) or _contains_agg(e)
                       for p, e in expr.whens))
    if isinstance(expr, Func):
        return _contains_agg(expr.arg)
    return False


def _pred_contains_agg(pred: Predicate) -> bool:
    if isinstance(pred, (And, Or)):
        return _pred_contains_agg(pred.left) or _pred_contains_agg(pred.right)
    if isinstance(pred, Not):
        return _pred_contains_agg(pred.inner)
    if isinstance(pred, Compare):
        return _contains_agg(pred.left) or _contains_agg(pred.right)
    return False


@dataclass(frozen=True)
class _Typed:
    """A bound expression plus its inferred kind (and pool, for plain
    references to dictionary-encoded columns)."""

    expr: Expr
    kind: str
    pool: tuple[str, ...] | None = None


def _describe(t: _Typed) -> str:
    if isinstance(t.expr, Field):
        return f"{t.expr.name} ({t.kind})"
    if isinstance(t.expr, Const):
        return f"{t.expr.value!r} ({t.kind})"
    return f"expression ({t.kind})"


class _Binder:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- scope handling ------------------------------------------------------
    def bind(self, query: Query,
             outer: list[list[BoundRel]] | None = None) -> BoundQuery:
        outer = outer or []
        rels: list[BoundRel] = []
        correlated: dict[str, str] = {}
        scope_stack = [rels] + outer  # innermost first

        for ref in query.tables:
            rels.append(self._bind_ref(ref.table, ref.alias, ref.subquery,
                                       "from", outer))
        for clause in query.joins:
            rel = self._bind_ref(clause.table, clause.alias, clause.subquery,
                                 clause.kind, outer)
            rels.append(rel)
            if clause.using:
                lhs = self._resolve(clause.using, [rels[:-1]] + outer,
                                    correlated)
                rhs = self._resolve(clause.using, [[rel]], correlated)
                rel.on = Compare("==", lhs.expr, rhs.expr)
            elif clause.on is not None:
                rel.on = self._bind_pred(clause.on, scope_stack, correlated)

        where = (self._bind_pred(query.where, scope_stack, correlated)
                 if query.where is not None else None)

        items: list[BoundItem] = []
        for item in query.items:
            items.append(self._bind_item(item, scope_stack, correlated))
        by_alias = {i.alias: i for i in items}

        group_by: list[str] = []
        group_item_aliases: list[str] = []
        for name in query.group_by:
            try:
                typed = self._resolve(name, scope_stack, correlated)
                group_by.append(typed.expr.name)
            except BindError:
                if name in by_alias and not _contains_agg(by_alias[name].expr):
                    group_by.append(name)
                    group_item_aliases.append(name)
                else:
                    raise

        self._check_grouping(items, group_by, by_alias)

        having = None
        if query.having is not None:
            having = self._bind_pred(query.having, scope_stack, correlated,
                                     items=by_alias)

        order_by: list[tuple[str, bool]] = []
        for name, desc in query.order_by:
            if name not in by_alias:
                raise BindError(
                    f"ORDER BY column {name!r} must appear in the SELECT list")
            order_by.append((name, desc))

        set_op = None
        if query.set_op is not None:
            op, rhs_query = query.set_op
            rhs = self.bind(rhs_query, outer)
            if len(rhs.items) != len(items):
                raise BindError(
                    f"set operation arity mismatch: {len(items)} vs "
                    f"{len(rhs.items)} columns")
            set_op = (op, rhs)

        return BoundQuery(rels=rels, items=items, where=where,
                          group_by=group_by,
                          group_item_aliases=group_item_aliases,
                          having=having, order_by=order_by,
                          limit=query.limit, distinct=query.distinct,
                          set_op=set_op, correlated=correlated)

    def _bind_ref(self, table: str, alias: str | None, subquery,
                  kind: str, outer) -> BoundRel:
        if subquery is not None:
            sub = self.bind(subquery)  # derived tables are uncorrelated
            columns = {i.alias: Column(i.alias, i.kind, i.pool)
                       for i in sub.items}
            return BoundRel(name=alias or table, table=None, prefix="",
                            columns=columns, kind=kind, subquery=sub)
        cat_table = self.catalog.table(table)
        prefix = f"{alias}_" if alias else ""
        return BoundRel(name=alias or table, table=table, prefix=prefix,
                        columns={c.name: c for c in cat_table.columns},
                        kind=kind)

    def _resolve(self, name: str, scope_stack, correlated) -> _Typed:
        if "." in name:
            alias, col = name.split(".", 1)
            for depth, scope in enumerate(scope_stack):
                for rel in scope:
                    if rel.name != alias:
                        continue
                    if col not in rel.columns:
                        raise BindError(
                            f"unknown column {col!r} in table {alias!r}")
                    return self._hit(rel, col, depth, correlated)
            raise BindError(f"unknown table or alias {alias!r}")
        for depth, scope in enumerate(scope_stack):
            hits = [rel for rel in scope if name in rel.columns]
            if len(hits) > 1:
                names = ", ".join(sorted(r.name for r in hits))
                raise BindError(
                    f"ambiguous column {name!r}: present in {names}")
            if hits:
                return self._hit(hits[0], name, depth, correlated)
        raise BindError(f"unknown column {name!r}")

    def _hit(self, rel: BoundRel, col: str, depth: int,
             correlated) -> _Typed:
        meta = rel.columns[col]
        canonical = rel.canonical(col)
        if depth > 0:
            corr = f"{CORR_PREFIX}_{canonical}"
            correlated[corr] = canonical
            return _Typed(Field(corr), meta.kind, meta.pool)
        return _Typed(Field(canonical), meta.kind, meta.pool)

    # -- expressions ---------------------------------------------------------
    def _bind_expr(self, expr: Expr, scopes, correlated,
                   items=None) -> _Typed:
        if isinstance(expr, Field):
            try:
                return self._resolve(expr.name, scopes, correlated)
            except BindError:
                if items and expr.name in items:
                    it = items[expr.name]
                    return _Typed(it.expr, it.kind, it.pool)
                raise
        if isinstance(expr, Const):
            kind = ("str" if isinstance(expr.value, str)
                    else "float" if isinstance(expr.value, float) else "int")
            return _Typed(expr, kind)
        if isinstance(expr, BinOp):
            left = self._bind_expr(expr.left, scopes, correlated, items)
            right = self._bind_expr(expr.right, scopes, correlated, items)
            for side in (left, right):
                if side.kind not in NUMERIC_KINDS:
                    raise BindError(
                        f"arithmetic needs numeric operands, got "
                        f"{_describe(side)}")
            kind = ("float" if expr.op == "/"
                    or "float" in (left.kind, right.kind) else "int")
            return _Typed(BinOp(expr.op, left.expr, right.expr), kind)
        if isinstance(expr, Func):
            arg = self._bind_expr(expr.arg, scopes, correlated, items)
            if expr.func == "year":
                if arg.kind != "date":
                    raise BindError(
                        f"EXTRACT(YEAR ...) needs a date column, got "
                        f"{_describe(arg)}")
                return _Typed(Func("year", arg.expr, expr.meta), "int")
            if arg.kind != "str":
                raise BindError(
                    f"SUBSTRING needs a string column, got {_describe(arg)}")
            return _Typed(Func("substring", arg.expr, expr.meta), "str")
        if isinstance(expr, Case):
            whens = tuple(
                (self._bind_pred(p, scopes, correlated, items=items),
                 self._bind_expr(e, scopes, correlated, items).expr)
                for p, e in expr.whens)
            default = self._bind_expr(expr.default, scopes, correlated, items)
            return _Typed(Case(whens, default.expr), "float")
        if isinstance(expr, AggExpr):
            if expr.argument is None:
                return _Typed(AggExpr(expr.func, None), "int")
            arg = self._bind_expr(expr.argument, scopes, correlated, items)
            kind = ("int" if expr.func in ("count", "count_distinct")
                    else "float" if expr.func in ("sum", "mean") else arg.kind)
            return _Typed(AggExpr(expr.func, arg.expr), kind)
        if isinstance(expr, ScalarSubquery):
            sub = self.bind(expr.query, outer=scopes)
            if len(sub.items) != 1:
                raise BindError("a scalar subquery must select one column")
            return _Typed(ScalarSubquery(sub), sub.items[0].kind)
        raise BindError(f"cannot bind expression {expr!r}")

    def _bind_item(self, item: SelectItem, scopes, correlated) -> BoundItem:
        if item.agg is not None:
            agg = AggExpr(item.agg.func, item.agg.argument)
            typed = self._bind_expr(agg, scopes, correlated)
        else:
            typed = self._bind_expr(item.expr, scopes, correlated)
        return BoundItem(alias=item.alias, expr=typed.expr, kind=typed.kind,
                         pool=typed.pool)

    def _check_grouping(self, items, group_by, by_alias) -> None:
        grouped = set(group_by)
        for item in items:
            if _contains_agg(item.expr):
                continue
            if item.alias in grouped:
                continue
            if isinstance(item.expr, Field) and item.expr.name in grouped:
                continue
            if group_by or any(_contains_agg(i.expr) for i in items):
                raise BindError(
                    f"column {item.alias!r} must appear in GROUP BY or inside "
                    "an aggregate")

    # -- predicates ----------------------------------------------------------
    def _bind_pred(self, pred: Predicate, scopes, correlated,
                   items=None) -> Predicate:
        if isinstance(pred, TruePredicate):
            return pred
        if isinstance(pred, And):
            return And(self._bind_pred(pred.left, scopes, correlated, items),
                       self._bind_pred(pred.right, scopes, correlated, items))
        if isinstance(pred, Or):
            return Or(self._bind_pred(pred.left, scopes, correlated, items),
                      self._bind_pred(pred.right, scopes, correlated, items))
        if isinstance(pred, Not):
            inner = self._bind_pred(pred.inner, scopes, correlated, items)
            if isinstance(inner, (Exists, InSubquery)):
                return replace(inner, negated=not inner.negated)
            return Not(inner)
        if isinstance(pred, Compare):
            return self._bind_compare(pred, scopes, correlated, items)
        if isinstance(pred, InList):
            return self._bind_in_list(pred, scopes, correlated, items)
        if isinstance(pred, Like):
            return self._bind_like(pred, scopes, correlated, items)
        if isinstance(pred, Exists):
            sub = self.bind(pred.query, outer=scopes)
            return Exists(sub, pred.negated)
        if isinstance(pred, InSubquery):
            typed = self._bind_expr(pred.expr, scopes, correlated, items)
            sub = self.bind(pred.query, outer=scopes)
            if len(sub.items) != 1:
                raise BindError("IN (subquery) must select one column")
            return InSubquery(typed.expr, sub, pred.negated)
        raise BindError(f"cannot bind predicate {pred!r}")

    def _bind_compare(self, pred: Compare, scopes, correlated,
                      items) -> Predicate:
        left = self._bind_expr(pred.left, scopes, correlated, items)
        right = self._bind_expr(pred.right, scopes, correlated, items)
        # dictionary-encoded column vs string literal -> integer compare
        for a, b in ((left, right), (right, left)):
            if a.pool is not None and isinstance(b.expr, Const) \
                    and b.kind == "str":
                if pred.op not in _EQ_OPS:
                    raise BindError(
                        f"only =/<> comparisons are supported on encoded "
                        f"string column {_describe(a)}")
                code = (a.pool.index(b.expr.value)
                        if b.expr.value in a.pool else -1)
                if a is left:
                    return Compare(pred.op, a.expr, Const(code))
                return Compare(pred.op, Const(code), a.expr)
        lk = "code" if left.pool is not None else left.kind
        rk = "code" if right.pool is not None else right.kind
        numeric = set(NUMERIC_KINDS)
        if (lk in numeric) != (rk in numeric) or ("str" in (lk, rk)
                                                  and lk != rk):
            raise BindError(
                f"type mismatch: cannot compare {_describe(left)} with "
                f"{_describe(right)}")
        if lk == "str" and pred.op not in _EQ_OPS:
            raise BindError("ordering comparisons on string columns are not "
                            "supported")
        return Compare(pred.op, left.expr, right.expr)

    def _bind_in_list(self, pred: InList, scopes, correlated,
                      items) -> Predicate:
        typed = self._bind_expr(pred.expr, scopes, correlated, items)
        str_values = all(isinstance(v, str) for v in pred.values)
        if typed.pool is not None:
            if not str_values:
                raise BindError(
                    f"IN list for encoded string column {_describe(typed)} "
                    "must hold string literals")
            codes = tuple(typed.pool.index(v) for v in pred.values
                          if v in typed.pool)
            return InList(typed.expr, codes)
        if typed.kind == "str":
            if not str_values:
                raise BindError(
                    f"type mismatch: IN list for {_describe(typed)} must "
                    "hold string literals")
            return InList(typed.expr, pred.values)
        if str_values and pred.values:
            raise BindError(
                f"type mismatch: cannot compare {_describe(typed)} with "
                "string literals")
        return InList(typed.expr, pred.values)

    def _bind_like(self, pred: Like, scopes, correlated, items) -> Predicate:
        typed = self._bind_expr(pred.expr, scopes, correlated, items)
        if typed.pool is not None:
            rx = re.compile(like_to_regex(pred.pattern))
            codes = tuple(i for i, s in enumerate(typed.pool)
                          if rx.match(s) is not None)
            return InList(typed.expr, codes)
        if typed.kind != "str":
            raise BindError(
                f"LIKE needs a string column, got {_describe(typed)}")
        return Like(typed.expr, pred.pattern)


def bind(query: Query, catalog: Catalog) -> BoundQuery:
    """Bind a parsed query against the catalog."""
    return _Binder(catalog).bind(query)


def bind_sql(sql: str, catalog: Catalog) -> BoundQuery:
    """Parse + bind in one call."""
    return bind(parse(sql), catalog)

"""Multi-device cluster subsystem (docs/CLUSTER.md).

Extends the single-device reproduction along the scaling axis the paper
leaves open: the same fused/fissioned pipelines, run shard-parallel over N
simulated devices behind one host whose PCIe staging bandwidth they share.

* :mod:`~repro.cluster.partition` -- deterministic hash/range/round-robin
  sharding with keyed and positional co-partitioning;
* :mod:`~repro.cluster.host`      -- the shared-host PCIe contention model;
* :mod:`~repro.cluster.exchange`  -- functional shuffle + the byte-exact
  host merge rules;
* :mod:`~repro.cluster.executor`  -- the ClusterExecutor (timing and
  functional paths, device-loss recovery).

The plan-side distribution rewrite lives in
:mod:`repro.plans.distribute`, so plans stay importable without this
package.
"""

from .exchange import (EXCHANGE_CHUNK_ROWS, combine_partial_states,
                       merge_concat, merge_concat_tree, merge_group_sorted,
                       merge_group_sorted_tree, repartition,
                       repartition_chunked)
from .executor import (ClusterConfig, ClusterExecutor, ClusterRunResult,
                       ShardRun, single_device_makespan)
from .host import ClusterSpec, contended_calibration, contended_device
from .partition import (Partitioner, PartitionScheme, concat, even_counts,
                        hash_shard, parse_scheme, range_boundaries,
                        range_shard, skew)

__all__ = [
    "ClusterConfig", "ClusterExecutor", "ClusterRunResult", "ShardRun",
    "ClusterSpec", "single_device_makespan",
    "contended_calibration", "contended_device",
    "Partitioner", "PartitionScheme", "parse_scheme", "hash_shard",
    "range_boundaries", "range_shard", "even_counts", "skew", "concat",
    "merge_concat", "merge_group_sorted", "repartition",
    "merge_concat_tree", "merge_group_sorted_tree", "repartition_chunked",
    "combine_partial_states", "EXCHANGE_CHUNK_ROWS",
]

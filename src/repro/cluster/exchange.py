"""Functional side of the exchange operator and the host merge rules.

The timing side of the exchange (device->host->device staging through the
shared PCIe model) lives in :mod:`repro.cluster.executor`; this module
implements what the shuffled bytes *mean*, with the invariants that make
the merged cluster result byte-identical to the single-device
interpreter (docs/CLUSTER.md):

* **repartition** keeps whole key-groups on one destination (hash of the
  key value), and restores the original global row order first whenever
  the buffer carries a ``rowid`` column -- so order-sensitive float
  aggregations later see rows in exactly the single-device order;
* **merge_group_sorted** reassembles per-destination aggregate outputs by
  the same packed-key sort :func:`repro.ra.arithmetic.aggregate` uses, so
  a disjoint-group concat lands in exactly the single-device group order;
* **repartition_chunked** streams the same shuffle in row chunks -- the
  pieces the pipelined exchange puts on the wire -- and is byte-identical
  to the materialized :func:`repartition` because destination ids are
  fixed on the order-restored buffer before chunking and each
  destination reassembles its pieces in chunk order;
* the ``*_tree`` merges and :func:`combine_partial_states` are the
  functional side of the hierarchical (pairwise device-level) merge:
  adjacent pairing preserves part order, so a concat tree equals the
  flat concat, and combining partial aggregate states up a tree is exact
  for order-insensitive aggregates (count/min/max).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ra.relation import Relation
from ..ra.rows import pack_rows
from .partition import concat, hash_shard

#: the implicit original-row-position column of the TPC-H column tables;
#: when present it is used to restore single-device row order
ORDER_FIELD = "rowid"

#: rows per streamed exchange chunk (the pipelined wire grain); one chunk
#: is what a source device hands the host while later rows still compute
EXCHANGE_CHUNK_ROWS = 1 << 18


def restore_row_order(rel: Relation, order_field: str = ORDER_FIELD) -> Relation:
    """Rows re-sorted by their original position (stable)."""
    return rel.take(np.argsort(rel.column(order_field), kind="stable"))


def merge_concat(parts: list[Relation],
                 order_field: str = ORDER_FIELD) -> Relation:
    """Shard-order concat; restores original row order when the buffer
    carries the order field."""
    merged = concat(parts)
    if order_field in merged.fields:
        merged = restore_row_order(merged, order_field)
    return merged


def merge_group_sorted(parts: list[Relation],
                       group_by: list[str]) -> Relation:
    """Merge per-destination aggregate outputs over *disjoint* groups.

    Stable-sorts the concat by the packed group key -- the exact order
    ``np.unique`` gives a single-device aggregation -- so when every group
    lives wholly on one destination the result is byte-identical to the
    unsharded aggregate.
    """
    merged = concat(parts)
    packed = pack_rows(merged, list(group_by))
    return merged.take(np.argsort(packed, kind="stable"))


def repartition(parts: list[Relation], key: tuple[str, ...],
                num_dest: int, seed: int = 0,
                order_field: str = ORDER_FIELD) -> list[Relation]:
    """Shuffle shard buffers onto `num_dest` destinations by key.

    Whole key-groups land on one destination (factorized key hashed by
    value), and if the buffer carries `order_field` the global row order
    is restored before splitting, so each destination holds its groups'
    rows in original order.
    """
    merged = merge_concat(parts, order_field)
    packed = pack_rows(merged, list(key))
    _, inverse = np.unique(packed, return_inverse=True)
    ids = hash_shard(inverse, num_dest, seed)
    return [merged.take(np.flatnonzero(ids == d)) for d in range(num_dest)]


def repartition_chunked(parts: list[Relation], key: tuple[str, ...],
                        num_dest: int, seed: int = 0,
                        order_field: str = ORDER_FIELD,
                        chunk_rows: int = EXCHANGE_CHUNK_ROWS
                        ) -> list[Relation]:
    """Chunk-streamed shuffle, byte-identical to :func:`repartition`.

    Destination ids are fixed on the order-restored merged buffer (same
    factorized-key hash as the materialized path, so whole key-groups
    still land on one destination), then the buffer is cut into
    ``chunk_rows`` pieces and each chunk is split per destination
    independently.  A destination concatenates its pieces in chunk order
    -- which is the merged row order -- so the result equals filtering
    the whole buffer at once.
    """
    merged = merge_concat(parts, order_field)
    packed = pack_rows(merged, list(key))
    _, inverse = np.unique(packed, return_inverse=True)
    ids = hash_shard(inverse, num_dest, seed)
    pieces: list[list[Relation]] = [[] for _ in range(num_dest)]
    for lo in range(0, max(merged.num_rows, 1), max(int(chunk_rows), 1)):
        chunk_ids = ids[lo:lo + chunk_rows]
        for dest in range(num_dest):
            sel = np.flatnonzero(chunk_ids == dest) + lo
            if sel.size:
                pieces[dest].append(merged.take(sel))
    empty = merged.take(np.zeros(0, dtype=np.int64))
    return [concat(p) if p else empty for p in pieces]


# ---------------------------------------------------------------------------
# hierarchical (tree) merges
# ---------------------------------------------------------------------------

def _tree_fold(parts: list[Relation], combine) -> Relation:
    """Pairwise-adjacent reduction; order-preserving by construction."""
    if not parts:
        raise ValueError("nothing to merge")
    live = list(parts)
    while len(live) > 1:
        live = [combine(live[i:i + 2]) if i + 1 < len(live) else live[i]
                for i in range(0, len(live), 2)]
    return live[0]


def merge_concat_tree(parts: list[Relation],
                      order_field: str = ORDER_FIELD) -> Relation:
    """Pairwise concat tree; equals :func:`merge_concat` because adjacent
    pairing keeps shard order and concat is associative."""
    merged = _tree_fold(parts, concat)
    if order_field in merged.fields:
        merged = restore_row_order(merged, order_field)
    return merged


def merge_group_sorted_tree(parts: list[Relation],
                            group_by: list[str]) -> Relation:
    """Tree-shaped :func:`merge_group_sorted`: pairwise concat up the
    tree, one packed-key sort at the root.  Identical to the flat merge
    over disjoint groups (the tree concat reproduces the flat concat row
    order, and the root sort is the same stable sort)."""
    merged = _tree_fold(parts, concat)
    packed = pack_rows(merged, list(group_by))
    return merged.take(np.argsort(packed, kind="stable"))


def combine_partial_states(parts: list[Relation], group_by: list[str],
                           aggs: Mapping) -> Relation:
    """Tree-combine per-shard partial aggregate states.

    `aggs` is the *combine* half of the split (counts/sums re-add,
    min/max re-reduce -- see
    :meth:`repro.plans.distribute.DistributedPlan.combine_plan`).  Each
    tree node re-aggregates the pair's concatenated states, so the root
    carries one row per group in ``np.unique`` packed-key order -- the
    single-device aggregate order.  Bit-exact whenever every aggregate is
    order-insensitive (count/min/max: integer sums and idempotent
    extrema re-associate freely).
    """
    from ..ra.arithmetic import aggregate

    def combine(pair: list[Relation]) -> Relation:
        return aggregate(concat(pair), list(group_by), aggs)

    if len(parts) == 1:
        return parts[0]
    return _tree_fold(parts, combine)

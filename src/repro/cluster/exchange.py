"""Functional side of the exchange operator and the host merge rules.

The timing side of the exchange (device->host->device staging through the
shared PCIe model) lives in :mod:`repro.cluster.executor`; this module
implements what the shuffled bytes *mean*, with the invariants that make
the merged cluster result byte-identical to the single-device
interpreter (docs/CLUSTER.md):

* **repartition** keeps whole key-groups on one destination (hash of the
  key value), and restores the original global row order first whenever
  the buffer carries a ``rowid`` column -- so order-sensitive float
  aggregations later see rows in exactly the single-device order;
* **merge_group_sorted** reassembles per-destination aggregate outputs by
  the same packed-key sort :func:`repro.ra.arithmetic.aggregate` uses, so
  a disjoint-group concat lands in exactly the single-device group order.
"""

from __future__ import annotations

import numpy as np

from ..ra.relation import Relation
from ..ra.rows import pack_rows
from .partition import concat, hash_shard

#: the implicit original-row-position column of the TPC-H column tables;
#: when present it is used to restore single-device row order
ORDER_FIELD = "rowid"


def restore_row_order(rel: Relation, order_field: str = ORDER_FIELD) -> Relation:
    """Rows re-sorted by their original position (stable)."""
    return rel.take(np.argsort(rel.column(order_field), kind="stable"))


def merge_concat(parts: list[Relation],
                 order_field: str = ORDER_FIELD) -> Relation:
    """Shard-order concat; restores original row order when the buffer
    carries the order field."""
    merged = concat(parts)
    if order_field in merged.fields:
        merged = restore_row_order(merged, order_field)
    return merged


def merge_group_sorted(parts: list[Relation],
                       group_by: list[str]) -> Relation:
    """Merge per-destination aggregate outputs over *disjoint* groups.

    Stable-sorts the concat by the packed group key -- the exact order
    ``np.unique`` gives a single-device aggregation -- so when every group
    lives wholly on one destination the result is byte-identical to the
    unsharded aggregate.
    """
    merged = concat(parts)
    packed = pack_rows(merged, list(group_by))
    return merged.take(np.argsort(packed, kind="stable"))


def repartition(parts: list[Relation], key: tuple[str, ...],
                num_dest: int, seed: int = 0,
                order_field: str = ORDER_FIELD) -> list[Relation]:
    """Shuffle shard buffers onto `num_dest` destinations by key.

    Whole key-groups land on one destination (factorized key hashed by
    value), and if the buffer carries `order_field` the global row order
    is restored before splitting, so each destination holds its groups'
    rows in original order.
    """
    merged = merge_concat(parts, order_field)
    packed = pack_rows(merged, list(key))
    _, inverse = np.unique(packed, return_inverse=True)
    ids = hash_shard(inverse, num_dest, seed)
    return [merged.take(np.flatnonzero(ids == d)) for d in range(num_dest)]

"""Shared-host PCIe contention model for the simulated cluster.

All N devices hang off one host (the paper's Table II host, N slots).
Each device keeps its *own* PCIe x16 link -- links are point-to-point --
but every staging transfer is ultimately a host-DRAM read or write, and
the host memory system is shared.  So the per-device staging bandwidth
when ``sharers`` devices transfer concurrently is::

    min(link_bw, host_staging_bw / sharers)

with ``host_staging_bw`` the host's aggregate streaming bandwidth
(:class:`~repro.simgpu.calibration.CpuCalibration` ``read_bw``, 25 GB/s).
Few devices are link-limited (no contention visible); many devices become
host-memory-limited and per-device bandwidth falls off as 1/N -- the
crossover at ``host_bw / link_bw`` (~4 devices for the simulated C2070
host) is what bends the scaling curves in ``BENCH_cluster.json``.

We model this statically: each device gets a
:class:`~repro.simgpu.device.DeviceSpec` whose PCIe calibration carries
the shared-host quotient as a **throughput cap**
(``PcieCalibration.host_share_bw``): a transfer of ``n`` bytes takes
``max(link_time(n), latency + n / (host_bw / sharers))``.  The fixed
per-transfer latency and the saturation knee are per-link properties and
stay unchanged -- capping the *asymptotic* link bandwidths instead (the
old model) silently multiplied the small-transfer knee penalty by the
sharer count, which is what produced the spurious 4->8-device regression
in early ``BENCH_cluster.json`` snapshots.  Static (rather than
time-varying) contention keeps every
per-device :class:`~repro.simgpu.engine.SimEngine` run a pure function of
its own inputs -- the property the validation layer and the
byte-identical CI smoke depend on -- at the cost of being conservative
when devices' transfer phases do not actually overlap (docs/CLUSTER.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..simgpu.calibration import Calibration
from ..simgpu.device import DeviceSpec


def contended_calibration(calib: Calibration, sharers: int,
                          host_staging_bw: float | None = None) -> Calibration:
    """`calib` with staging throughput capped at the shared-host quotient.

    The four asymptotic link bandwidths, the latency, and the saturation
    knee are untouched (they are per-link properties); the cap rides in
    ``pcie.host_share_bw`` and applies in
    :meth:`repro.simgpu.pcie.PcieModel.transfer_time` as a floor on
    transfer time, so contention never amplifies the small-transfer knee.
    """
    sharers = max(1, int(sharers))
    if sharers == 1:
        return calib
    host_bw = (host_staging_bw if host_staging_bw is not None
               else calib.cpu.read_bw)
    cap = host_bw / sharers
    return replace(calib, pcie=replace(calib.pcie, host_share_bw=cap))


def contended_device(base: DeviceSpec, sharers: int,
                     host_staging_bw: float | None = None) -> DeviceSpec:
    """`base` as seen when `sharers` devices share the host's memory."""
    if max(1, int(sharers)) == 1:
        return base
    return replace(base, calib=contended_calibration(
        base.calib, sharers, host_staging_bw))


@dataclass(frozen=True)
class ClusterSpec:
    """Static shape of the simulated cluster.

    ``pcie_sharers`` defaults to ``num_devices`` (every device's staging
    phases overlap -- the conservative worst case); callers that know the
    phases are staggered can pass a smaller value.
    """

    num_devices: int = 4
    base: DeviceSpec = DeviceSpec()
    pcie_sharers: int | None = None

    def __post_init__(self):
        if self.num_devices < 1:
            raise ValueError(
                f"num_devices must be >= 1, got {self.num_devices}")

    @property
    def sharers(self) -> int:
        if self.pcie_sharers is None:
            return self.num_devices
        return max(1, min(self.pcie_sharers, self.num_devices))

    def devices(self) -> list[DeviceSpec]:
        """One contended DeviceSpec per cluster slot."""
        dev = contended_device(self.base, self.sharers)
        return [dev for _ in range(self.num_devices)]

"""The ClusterExecutor: N simulated devices, one query.

Timing path (``run``): the plan is distributed
(:func:`repro.plans.distribute.distribute_plan`), each shard's local
subplan runs through the existing single-device
:class:`~repro.runtime.executor.Executor` (so fusion, fission, chunking,
the degradation ladder, and fault injection all apply unchanged) on a
:func:`~repro.cluster.host.contended_device` whose staging bandwidth is
divided among the devices sharing the host.  Global barriers separate the
phases::

    [local phase: shard k on device k]  --barrier-->
    [exchange: frontier d2h'd by phase 1, host shuffle, re-h2d by phase 2]
    [suffix phase: repartitioned shard on each device]  --barrier-->
    [host merge]

The exchange is *not* double-counted: the device->host leg is the local
plan's own ``output.*`` downloads and the host->device leg is the suffix
plan's own ``input.*`` uploads; only the host-side shuffle between them is
an extra event.  This gives the conservation law the validator checks:
local output bytes == host shuffle bytes == suffix input bytes.

Fault path: before each phase every device is probed at site
``device.<k>`` (and ``device.<k>.suffix``) for
:attr:`~repro.faults.FaultKind.DEVICE_LOSS`.  A lost device's shards are
re-executed on the least-loaded surviving device -- the top rung of the
cluster degradation ladder (:data:`repro.faults.CLUSTER_DEGRADATION_ORDER`)
-- and the lost device is excluded from later phases.  Results are
unaffected: the functional path below is loss-agnostic by construction.

Functional path (``functional``): real relations are partitioned with the
same deterministic partitioner, the local subplan is interpreted per
shard, the frontier is exchanged/merged under the byte-identity rules of
:mod:`repro.cluster.exchange`, and the suffix is interpreted per
destination (exchange) or on the host (host mode).  The result is
byte-identical to :func:`repro.plans.interp.evaluate_sinks` on the
unsharded inputs -- asserted by the cluster test suite for TPC-H Q1/Q21.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..cpubase.select import cpu_select_time
from ..core.opmodels import out_row_nbytes
from ..faults import FaultInjector, FaultPlan, as_injector
from ..plans.distribute import DistributedPlan, distribute_plan
from ..plans.interp import evaluate
from ..plans.plan import OpType, Plan
from ..ra.relation import Relation
from ..runtime.executor import Executor, RunResult
from ..runtime.sizes import estimate_sizes
from ..runtime.strategies import ExecutionConfig, Strategy
from ..simgpu.device import DeviceSpec
from ..simgpu.timeline import EventKind, Timeline
from . import exchange as xchg
from .host import ClusterSpec, contended_device
from .partition import (Partitioner, even_counts, parse_scheme,
                        range_boundaries)


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one cluster run (all deterministic)."""

    num_devices: int = 4
    scheme: str = "hash"                 # hash | range | rr
    seed: int = 0
    #: per-shard single-device strategy (fusion + fission by default --
    #: the paper's best single-device pipeline, now one per device)
    strategy: Strategy = Strategy.FUSED_FISSION
    check: bool = False
    #: chaos plan shared across devices (one budget for the whole run);
    #: devices are additionally probed for DEVICE_LOSS at ``device.<k>``
    faults: FaultPlan | None = None
    #: devices assumed concurrently active on the host's PCIe complex;
    #: None -> num_devices (worst case)
    pcie_sharers: int | None = None


@dataclass(frozen=True)
class ShardRun:
    """Bookkeeping for one Executor run inside the cluster schedule."""

    shard: int
    device: int
    phase: str                           # "local" | "suffix"
    start: float
    makespan: float
    h2d_bytes: float
    d2h_bytes: float
    output_bytes: float
    degraded_to: str | None
    #: True when this shard ran on a survivor because its home device
    #: was lost (cluster-ladder re-execution)
    recovered: bool = False


@dataclass
class ClusterRunResult:
    """Timing result of one cluster execution."""

    config: ClusterConfig
    dist: DistributedPlan
    device_timelines: dict[int, Timeline]
    host_timeline: Timeline
    makespan: float
    shard_runs: list[ShardRun]
    lost_devices: tuple[int, ...]
    exchange_out_bytes: float
    exchange_in_bytes: float
    merge_bytes: float
    faults_injected: int = 0
    retries: int = 0
    reissues: int = 0
    notes: tuple[str, ...] = ()

    @property
    def recovered_shards(self) -> int:
        return sum(1 for r in self.shard_runs if r.recovered)

    def merged_timeline(self) -> Timeline:
        """Every device lane plus the host lane on one clock."""
        merged = Timeline()
        for tl in self.device_timelines.values():
            merged.extend(tl)
        merged.extend(self.host_timeline)
        return merged

    def trace_lanes(self) -> list[tuple[str, Timeline]]:
        """Lanes for :func:`repro.simgpu.trace.write_cluster_trace`: one
        per device, then the cluster host."""
        lanes = [(f"device {dev_id}", self.device_timelines[dev_id])
                 for dev_id in sorted(self.device_timelines)]
        lanes.append(("cluster host", self.host_timeline))
        return lanes

    def summary(self) -> dict:
        """Flat, deterministically-rounded metrics (CI byte-compares the
        sorted-key JSON dump of this across reruns)."""
        out: dict[str, object] = {
            "cluster.devices": self.config.num_devices,
            "cluster.scheme": self.config.scheme,
            "cluster.seed": self.config.seed,
            "cluster.strategy": self.config.strategy.value,
            "cluster.partition_key": "/".join(self.dist.partition_key or ())
                                     or "positional",
            "cluster.suffix_mode": self.dist.suffix_mode,
            "cluster.makespan_s": round(self.makespan, 9),
            "cluster.lost_devices": list(self.lost_devices),
            "cluster.recovered_shards": self.recovered_shards,
            "exchange.out_bytes": round(self.exchange_out_bytes, 3),
            "exchange.in_bytes": round(self.exchange_in_bytes, 3),
            "merge.bytes": round(self.merge_bytes, 3),
            "faults.injected": self.faults_injected,
            "faults.retries": self.retries,
            "faults.reissues": self.reissues,
        }
        for dev_id in sorted(self.device_timelines):
            tl = self.device_timelines[dev_id]
            runs = [r for r in self.shard_runs if r.device == dev_id]
            out[f"device.{dev_id}.end_s"] = round(tl.end_time, 9)
            out[f"device.{dev_id}.busy_s"] = round(
                tl.busy_time(EventKind.KERNEL), 9)
            out[f"device.{dev_id}.shards"] = len(
                {r.shard for r in runs if r.phase == "local"})
            out[f"device.{dev_id}.h2d_bytes"] = round(
                sum(r.h2d_bytes for r in runs), 3)
            out[f"device.{dev_id}.d2h_bytes"] = round(
                sum(r.d2h_bytes for r in runs), 3)
            out[f"device.{dev_id}.lost"] = int(dev_id in self.lost_devices)
        return out


def _phase_bytes(timeline: Timeline) -> tuple[float, float, float]:
    """(h2d, d2h, output-d2h) bytes of one Executor timeline, excluding
    injected-fault events and intermediate round trips."""
    h2d = d2h = out = 0.0
    for ev in timeline.events:
        if ev.tag.startswith("fault."):
            continue
        if ev.kind is EventKind.H2D and not ev.tag.startswith("roundtrip"):
            h2d += ev.nbytes
        elif ev.kind is EventKind.D2H and not ev.tag.startswith("roundtrip"):
            d2h += ev.nbytes
            if ev.tag.startswith(("output", "d2h.seg")):
                out += ev.nbytes
    return h2d, d2h, out


class ClusterExecutor:
    """Runs distributed plans over N simulated devices (see module doc)."""

    def __init__(self, base_device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 config: ClusterConfig = ClusterConfig()):
        self.base_device = base_device or DeviceSpec()
        self.costs = costs
        self.config = config
        self.spec = ClusterSpec(
            num_devices=config.num_devices, base=self.base_device,
            pcie_sharers=config.pcie_sharers)
        self.device = contended_device(self.base_device, self.spec.sharers)

    # ------------------------------------------------------------------
    def distribute(self, plan: Plan,
                   source_rows: dict[str, int]) -> DistributedPlan:
        return distribute_plan(
            plan, source_rows, self.config.num_devices,
            scheme=self.config.scheme, seed=self.config.seed)

    def _as_dist(self, plan, source_rows) -> DistributedPlan:
        if isinstance(plan, DistributedPlan):
            return plan
        return self.distribute(plan, source_rows)

    # ------------------------------------------------------------------
    # timing path
    # ------------------------------------------------------------------
    def run(self, plan: "Plan | DistributedPlan",
            source_rows: dict[str, int]) -> ClusterRunResult:
        cfg = self.config
        dist = self._as_dist(plan, source_rows)
        n = cfg.num_devices
        injector = as_injector(cfg.faults)
        notes: list[str] = list(dist.notes)

        # -- device-loss probes (phase 1) -------------------------------
        lost: set[int] = set()
        if injector is not None:
            for dev_id in range(n):
                if injector.device_loss(f"device.{dev_id}"):
                    lost.add(dev_id)
        if len(lost) == n:
            # a cluster with zero devices cannot answer; the lowest slot
            # survives (mirrors the retry-absorbs-first-hit OOM rule)
            lost.discard(0)
            notes.append("all devices probed lost; device 0 retained")
        alive = [d for d in range(n) if d not in lost]

        timelines: dict[int, Timeline] = {d: Timeline() for d in range(n)}
        host_tl = Timeline()
        clock: dict[int, float] = {d: 0.0 for d in range(n)}
        shard_runs: list[ShardRun] = []
        detect_s = (cfg.faults.retry.backoff(1)
                    if cfg.faults is not None else 0.0)
        for dev_id in sorted(lost):
            timelines[dev_id].add(0.0, detect_s, EventKind.HOST,
                                  f"fault.device_loss.device.{dev_id}")

        # -- phase 1: shard-local plans ---------------------------------
        local = dist.local_plan()
        has_local = any(nd.op is not OpType.SOURCE for nd in local.nodes)
        owner: dict[int, int] = {}
        assigned = {d: 0 for d in alive}
        for shard in range(n):
            if shard in lost:
                dev_id = min(alive, key=lambda d: (assigned[d], d))
            else:
                dev_id = shard
            owner[shard] = dev_id
            assigned[dev_id] += 1

        local_out_total = 0.0
        if has_local:
            for shard in range(n):
                dev_id = owner[shard]
                rows = self._shard_rows(dist, local, shard)
                res = self._run_executor(local, rows, injector)
                t0 = clock[dev_id]
                timelines[dev_id].extend(res.timeline, offset=t0)
                h2d, d2h, out = _phase_bytes(res.timeline)
                local_out_total += out
                clock[dev_id] = t0 + res.timeline.end_time
                shard_runs.append(ShardRun(
                    shard=shard, device=dev_id, phase="local", start=t0,
                    makespan=res.timeline.end_time, h2d_bytes=h2d,
                    d2h_bytes=d2h, output_bytes=out,
                    degraded_to=res.degraded_to,
                    recovered=shard in lost))
        t_barrier = max([clock[d] for d in alive] + [detect_s])

        # -- phase 2/3: exchange / host suffix / merge ------------------
        exchange_out = exchange_in = merge_bytes = 0.0
        sizes = estimate_sizes(dist.plan, source_rows)
        if dist.suffix_mode == "exchange":
            ex = dist.exchange
            exchange_out = local_out_total
            # device-loss probes between the phases ("mid-run" losses)
            if injector is not None:
                for dev_id in list(alive):
                    if (len(alive) > 1 and injector.device_loss(
                            f"device.{dev_id}.suffix")):
                        lost.add(dev_id)
                        alive.remove(dev_id)
                        timelines[dev_id].add(
                            t_barrier, t_barrier + detect_s, EventKind.HOST,
                            f"fault.device_loss.device.{dev_id}.suffix")
            shuffle_s = exchange_out / self.costs.host_gather_bw
            host_tl.add(t_barrier, t_barrier + shuffle_s, EventKind.HOST,
                        "cluster.exchange", nbytes=exchange_out)
            t2 = t_barrier + shuffle_s
            suffix = dist.suffix_plan()
            dest_rows = even_counts(ex.est_rows, len(alive))
            ends = []
            for slot, dev_id in enumerate(alive):
                res = self._run_executor(
                    suffix, {ex.buffer: dest_rows[slot]}, injector)
                timelines[dev_id].extend(res.timeline, offset=t2)
                h2d, d2h, out = _phase_bytes(res.timeline)
                exchange_in += h2d
                merge_bytes += out
                ends.append(t2 + res.timeline.end_time)
                shard_runs.append(ShardRun(
                    shard=slot, device=dev_id, phase="suffix", start=t2,
                    makespan=res.timeline.end_time, h2d_bytes=h2d,
                    d2h_bytes=d2h, output_bytes=out,
                    degraded_to=res.degraded_to))
            t3 = max(ends) if ends else t2
            merge_s = merge_bytes / self.costs.host_gather_bw
            host_tl.add(t3, t3 + merge_s, EventKind.HOST, "cluster.merge",
                        nbytes=merge_bytes)
        elif dist.suffix_mode == "host":
            # gather the frontier, then interpret the suffix on the host
            # (priced like the cpubase rung: one CPU pass per node)
            gather_bytes = local_out_total
            suffix_s = gather_bytes / self.costs.host_gather_bw
            for node in dist.plan.nodes:
                if (node.name in dist.local_names
                        or node.op is OpType.SOURCE):
                    continue
                prim = node.inputs[0] if node.inputs else node
                suffix_s += cpu_select_time(
                    sizes[prim.name], out_row_nbytes(prim))
            merge_bytes = sum(
                float(sizes[s.name]) * out_row_nbytes(s)
                for s in dist.plan.sinks()
                if s.name not in dist.local_names)
            host_tl.add(t_barrier, t_barrier + suffix_s, EventKind.HOST,
                        "cluster.merge", nbytes=gather_bytes)
        else:  # fully local: the host only merges per-shard sink outputs
            merge_bytes = local_out_total
            merge_s = merge_bytes / self.costs.host_gather_bw
            host_tl.add(t_barrier, t_barrier + merge_s, EventKind.HOST,
                        "cluster.merge", nbytes=merge_bytes)

        makespan = max([tl.end_time for tl in timelines.values()]
                       + [host_tl.end_time])
        result = ClusterRunResult(
            config=cfg, dist=dist, device_timelines=timelines,
            host_timeline=host_tl, makespan=makespan, shard_runs=shard_runs,
            lost_devices=tuple(sorted(lost)),
            exchange_out_bytes=exchange_out, exchange_in_bytes=exchange_in,
            merge_bytes=merge_bytes, notes=tuple(notes))
        if injector is not None:
            result.faults_injected = injector.faults_injected
            result.retries = injector.retries
            result.reissues = injector.reissues
        if cfg.check:
            from ..validate.cluster import validate_cluster
            validate_cluster(result, self.device).raise_if_failed()
        return result

    # ------------------------------------------------------------------
    def _run_executor(self, plan: Plan, rows: dict[str, int],
                      injector: FaultInjector | None) -> RunResult:
        ex = Executor(self.device, costs=self.costs, check=self.config.check,
                      faults=injector,
                      degrade=True if injector is not None else None)
        return ex.run(plan, rows,
                      ExecutionConfig(strategy=self.config.strategy))

    def _shard_rows(self, dist: DistributedPlan, local: Plan,
                    shard: int) -> dict[str, int]:
        """Virtual row counts of shard `shard`'s slice of each source."""
        rows: dict[str, int] = {}
        needed = {s.name for s in local.sources()}
        for src in dist.sources:
            if src.name not in needed:
                continue
            if src.kind == "replicated":
                rows[src.name] = src.rows
            else:
                rows[src.name] = even_counts(
                    src.rows, dist.num_shards)[shard]
        return rows

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def functional(self, plan: "Plan | DistributedPlan",
                   sources: dict[str, Relation]) -> dict[str, Relation]:
        """Distributed evaluation over real relations; byte-identical to
        ``evaluate_sinks(plan, sources)`` (single device) by construction.

        Loss-agnostic: the data path always uses all ``num_shards`` shards
        and destinations; device losses only reroute *where* a shard's
        timing runs, never what it computes.
        """
        dist = self._as_dist(
            plan, {name: rel.num_rows for name, rel in sources.items()})
        n = dist.num_shards
        part = Partitioner(n, parse_scheme(dist.scheme), dist.seed)
        if not self._partitionable(dist, sources):
            # partition key missing from the real schema (statically
            # inferred keys are best-effort): fall back to restoring the
            # sources from a positional split -- still exercises the
            # partitioner, trivially byte-identical
            from ..plans.interp import evaluate_sinks
            restored = {}
            for name, rel in sources.items():
                shards, idx = part.split(rel)
                restored[name] = Partitioner.restore(shards, idx)
            return evaluate_sinks(dist.plan, restored)

        parts: dict[str, list[Relation]] = {}
        positional = {s.name for s in dist.sources
                      if s.kind == "partitioned" and s.key is None}
        if positional:
            aligned, _ = part.split_aligned(
                {name: sources[name] for name in positional})
            parts.update(aligned)
        boundaries = None
        if dist.scheme == "range" and dist.partition_key is not None:
            driver_rel = sources[dist.driver]
            boundaries = range_boundaries(
                driver_rel.column(dist.partition_key[0]), n)
        for src in dist.sources:
            if src.kind == "partitioned" and src.key is not None:
                shards, _ = part.split(sources[src.name], key=src.key[0],
                                       boundaries=boundaries)
                parts[src.name] = shards
            elif src.kind == "replicated":
                parts[src.name] = [sources[src.name]] * n

        local = dist.local_plan()
        local_sources = {s.name for s in local.sources()}
        shard_results: list[dict[str, Relation]] = []
        for shard in range(n):
            bound = {name: parts[name][shard] for name in local_sources}
            shard_results.append(evaluate(local, bound))

        outputs: dict[str, Relation] = {}
        for name in dist.local_sinks():
            outputs[name] = self._merge_local(dist, name, [
                r[name] for r in shard_results])
        if dist.suffix_mode == "none":
            return outputs

        suffix = dist.suffix_plan()
        if dist.suffix_mode == "exchange":
            ex = dist.exchange
            dest_parts = xchg.repartition(
                [r[ex.buffer] for r in shard_results], ex.key, n, dist.seed)
            per_dest = [evaluate(suffix, {ex.buffer: dp})
                        for dp in dest_parts]
            for sink in suffix.sinks():
                group_by = sink.params.get("group_by") or []
                outputs[sink.name] = xchg.merge_group_sorted(
                    [r[sink.name] for r in per_dest], group_by)
            return outputs

        # host mode
        bound: dict[str, Relation] = {}
        for name in dist.frontier:
            parts_f = [r[name] for r in shard_results]
            bound[name] = (parts_f[0]
                           if self._is_replicated(dist, name)
                           else xchg.merge_concat(parts_f))
        for name in dist.suffix_sources:
            bound[name] = sources[name]
        res = evaluate(suffix, bound)
        for sink in suffix.sinks():
            outputs[sink.name] = res[sink.name]
        return outputs

    # ------------------------------------------------------------------
    def _partitionable(self, dist: DistributedPlan,
                       sources: dict[str, Relation]) -> bool:
        for src in dist.sources:
            if src.kind == "partitioned" and src.key is not None:
                rel = sources.get(src.name)
                if rel is None or any(k not in rel.fields for k in src.key):
                    return False
        return True

    def _is_replicated(self, dist: DistributedPlan, name: str) -> bool:
        """Is a local node's value identical on every shard?  True when
        every source it depends on is replicated."""
        node = dist.node(name)
        stack, seen = [node], set()
        while stack:
            cur = stack.pop()
            if cur.name in seen:
                continue
            seen.add(cur.name)
            if cur.op is OpType.SOURCE:
                if dist.source_dist(cur.name).kind != "replicated":
                    return False
            stack.extend(cur.inputs)
        return True

    def _merge_local(self, dist: DistributedPlan, name: str,
                     parts: list[Relation]) -> Relation:
        if self._is_replicated(dist, name):
            return parts[0]
        node = dist.node(name)
        if node.op is OpType.AGGREGATE:
            return xchg.merge_group_sorted(
                parts, node.params.get("group_by") or [])
        return xchg.merge_concat(parts)


def single_device_makespan(plan: Plan, source_rows: dict[str, int],
                           strategy: Strategy = Strategy.FUSED_FISSION,
                           device: DeviceSpec | None = None) -> float:
    """Reference: the plain single-device Executor on the uncontended
    base device (what `BENCH_cluster.json` reports alongside)."""
    ex = Executor(device or DeviceSpec())
    res = ex.run(plan, source_rows, ExecutionConfig(strategy=strategy))
    return res.makespan

"""The ClusterExecutor: N simulated devices, one query.

Timing path (``run``): the plan is distributed
(:func:`repro.plans.distribute.distribute_plan`), each shard's local
subplan runs through the existing single-device
:class:`~repro.runtime.executor.Executor` (so fusion, fission, chunking,
the degradation ladder, and fault injection all apply unchanged) on a
:func:`~repro.cluster.host.contended_device` whose staging throughput is
capped at its share of host DRAM bandwidth.  When the distribution
carries a :class:`~repro.plans.distribute.PreAggSpec`, the local phase
runs the *lowered* plan (suffix chain + partial aggregate below the cut),
so what crosses the exchange is blocks of partial aggregate states, not
raw frontier rows -- per-device exchange volume then *shrinks* as devices
are added (``ceil(shard_rows / PREAGG_FLUSH_ROWS)`` state blocks each).

The exchange itself is **pipelined**, not barrier-then-shuffle: each
shard's outbound buffer is cut into chunks (flush blocks under pre-agg,
:data:`~repro.cluster.exchange.EXCHANGE_CHUNK_ROWS`-row chunks of the raw
frontier otherwise) that become available *during* the shard's local run,
and the host lane stages them greedily in availability order (events
``cluster.exchange.s<shard>.c<k>``).  Transfers therefore overlap shard
compute; a destination's suffix starts as soon as its last inbound chunk
lands and its device is free -- not at a global barrier.  Destination
sizing routes key-group ids through the same hash the functional
repartition uses, so simulated destination sizes track the real
per-destination group counts.

The final merge is **hierarchical** when ``dist.merge == "tree"``:
device-level pairwise merge rounds (host-lane coordination events
``cluster.merge.round<r>``; pairs move in parallel, so a round costs its
largest sender) and the host ingests only the root -- one
``cluster.merge`` event -- instead of serially gathering every
per-device buffer.  Conservation still holds by construction: the bytes
the host stages per chunk are exactly the bytes the flush/chunk model
says each shard sends, and each destination's suffix re-uploads its
routed share of them.

``num_devices == 1`` bypasses all of this: no partitioning, no exchange,
no host merge -- the run is the plain single-device Executor on the
original plan, byte- and time-identical to :func:`single_device_makespan`
(so ``speedup_vs_1`` measures scaling, not partitioning overhead).

Fault path: before each phase every device is probed at site
``device.<k>`` (and ``device.<k>.suffix``) for
:attr:`~repro.faults.FaultKind.DEVICE_LOSS`.  A lost device's shards are
re-executed on the least-loaded surviving device -- the top rung of the
cluster degradation ladder (:data:`repro.faults.CLUSTER_DEGRADATION_ORDER`)
-- and marked ``recovered``.  Destinations are fixed when the exchange
starts, so a device lost at the suffix probe has its *slot* recovered on
a survivor too.  Results are unaffected: the functional path below is
loss-agnostic by construction.

Functional path (``functional``): real relations are partitioned with the
same deterministic partitioner, the local subplan is interpreted per
shard, the frontier is exchanged/merged under the byte-identity rules of
:mod:`repro.cluster.exchange` (chunk-streamed, and through the partial /
tree-combine split whenever it is bit-exact), and the suffix is
interpreted per destination (exchange) or on the host (host mode).  The
result is byte-identical to :func:`repro.plans.interp.evaluate_sinks` on
the unsharded inputs -- asserted by the cluster test suite for TPC-H
Q1/Q21.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..cpubase.select import cpu_select_time
from ..core.opmodels import out_row_nbytes
from ..faults import FaultInjector, FaultPlan, as_injector
from ..plans.distribute import (DistributedPlan, combine_agg_specs,
                                distribute_plan)
from ..plans.interp import evaluate
from ..plans.plan import OpType, Plan
from ..ra.relation import Relation
from ..runtime.executor import Executor, RunResult
from ..runtime.sizes import estimate_sizes
from ..runtime.strategies import ExecutionConfig, Strategy
from ..simgpu.device import DeviceSpec
from ..simgpu.timeline import EventKind, Timeline
from . import exchange as xchg
from .host import ClusterSpec, contended_device
from .partition import (Partitioner, even_counts, hash_shard, parse_scheme,
                        range_boundaries)


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one cluster run (all deterministic)."""

    num_devices: int = 4
    scheme: str = "hash"                 # hash | range | rr
    seed: int = 0
    #: per-shard single-device strategy (fusion + fission by default --
    #: the paper's best single-device pipeline, now one per device)
    strategy: Strategy = Strategy.FUSED_FISSION
    check: bool = False
    #: static memory-safety pre-flight (:mod:`repro.analyze`): vet the
    #: shard-local phase and exchange-volume bounds before any device
    #: runs; a certain-OOM verdict (MEM701) raises AnalysisError
    analyze: bool = False
    #: chaos plan shared across devices (one budget for the whole run);
    #: devices are additionally probed for DEVICE_LOSS at ``device.<k>``
    faults: FaultPlan | None = None
    #: devices assumed concurrently active on the host's PCIe complex;
    #: None -> num_devices (worst case)
    pcie_sharers: int | None = None
    #: lower partial aggregation below the exchange cut when the suffix
    #: decomposes (:func:`repro.plans.distribute.find_preagg`)
    preagg: bool = True
    #: host-merge strategy override ("flat"/"tree"); None lets the
    #: rewrite pick (tree whenever pre-aggregation applies)
    merge: str | None = None


@dataclass(frozen=True)
class ShardRun:
    """Bookkeeping for one Executor run inside the cluster schedule."""

    shard: int
    device: int
    phase: str                           # "local" | "suffix"
    start: float
    makespan: float
    h2d_bytes: float
    d2h_bytes: float
    output_bytes: float
    degraded_to: str | None
    #: True when this shard ran on a survivor because its home device
    #: was lost (cluster-ladder re-execution)
    recovered: bool = False


@dataclass
class ClusterRunResult:
    """Timing result of one cluster execution."""

    config: ClusterConfig
    dist: DistributedPlan
    device_timelines: dict[int, Timeline]
    host_timeline: Timeline
    makespan: float
    shard_runs: list[ShardRun]
    lost_devices: tuple[int, ...]
    exchange_out_bytes: float
    exchange_in_bytes: float
    merge_bytes: float
    #: largest single device's outbound exchange volume -- the
    #: scaling-relevant number (total conserved bytes stay in
    #: ``exchange_out_bytes``); under pre-aggregation this *decreases*
    #: as devices are added
    exchange_out_per_device: float = 0.0
    faults_injected: int = 0
    retries: int = 0
    reissues: int = 0
    notes: tuple[str, ...] = ()

    @property
    def recovered_shards(self) -> int:
        return sum(1 for r in self.shard_runs if r.recovered)

    def merged_timeline(self) -> Timeline:
        """Every device lane plus the host lane on one clock."""
        merged = Timeline()
        for tl in self.device_timelines.values():
            merged.extend(tl)
        merged.extend(self.host_timeline)
        return merged

    def trace_lanes(self) -> list[tuple[str, Timeline]]:
        """Lanes for :func:`repro.simgpu.trace.write_cluster_trace`: one
        per device, then the cluster host."""
        lanes = [(f"device {dev_id}", self.device_timelines[dev_id])
                 for dev_id in sorted(self.device_timelines)]
        lanes.append(("cluster host", self.host_timeline))
        return lanes

    def summary(self) -> dict:
        """Flat, deterministically-rounded metrics (CI byte-compares the
        sorted-key JSON dump of this across reruns)."""
        out: dict[str, object] = {
            "cluster.devices": self.config.num_devices,
            "cluster.scheme": self.config.scheme,
            "cluster.seed": self.config.seed,
            "cluster.strategy": self.config.strategy.value,
            "cluster.partition_key": "/".join(self.dist.partition_key or ())
                                     or "positional",
            "cluster.suffix_mode": self.dist.suffix_mode,
            "cluster.merge_strategy": self.dist.merge,
            "cluster.preagg": int(self.dist.preagg is not None),
            "cluster.makespan_s": round(self.makespan, 9),
            "cluster.lost_devices": list(self.lost_devices),
            "cluster.recovered_shards": self.recovered_shards,
            "exchange.out_bytes": round(self.exchange_out_bytes, 3),
            "exchange.in_bytes": round(self.exchange_in_bytes, 3),
            "exchange.out_bytes_per_device": round(
                self.exchange_out_per_device, 3),
            "merge.bytes": round(self.merge_bytes, 3),
            "faults.injected": self.faults_injected,
            "faults.retries": self.retries,
            "faults.reissues": self.reissues,
        }
        for dev_id in sorted(self.device_timelines):
            tl = self.device_timelines[dev_id]
            runs = [r for r in self.shard_runs if r.device == dev_id]
            out[f"device.{dev_id}.end_s"] = round(tl.end_time, 9)
            out[f"device.{dev_id}.busy_s"] = round(
                tl.busy_time(EventKind.KERNEL), 9)
            out[f"device.{dev_id}.shards"] = len(
                {r.shard for r in runs if r.phase == "local"})
            out[f"device.{dev_id}.h2d_bytes"] = round(
                sum(r.h2d_bytes for r in runs), 3)
            out[f"device.{dev_id}.d2h_bytes"] = round(
                sum(r.d2h_bytes for r in runs), 3)
            out[f"device.{dev_id}.lost"] = int(dev_id in self.lost_devices)
        return out


def _phase_bytes(timeline: Timeline) -> tuple[float, float, float]:
    """(h2d, d2h, output-d2h) bytes of one Executor timeline, excluding
    injected-fault events and intermediate round trips."""
    h2d = d2h = out = 0.0
    for ev in timeline.events:
        if ev.tag.startswith("fault."):
            continue
        if ev.kind is EventKind.H2D and not ev.tag.startswith("roundtrip"):
            h2d += ev.nbytes
        elif ev.kind is EventKind.D2H and not ev.tag.startswith("roundtrip"):
            d2h += ev.nbytes
            if ev.tag.startswith(("output", "d2h.seg")):
                out += ev.nbytes
    return h2d, d2h, out


class ClusterExecutor:
    """Runs distributed plans over N simulated devices (see module doc)."""

    def __init__(self, base_device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 config: ClusterConfig = ClusterConfig(),
                 plan_cache=None):
        self.base_device = base_device or DeviceSpec()
        self.costs = costs
        self.config = config
        self.spec = ClusterSpec(
            num_devices=config.num_devices, base=self.base_device,
            pcie_sharers=config.pcie_sharers)
        self.device = contended_device(self.base_device, self.spec.sharers)
        #: content-addressed compiled-plan cache
        #: (:class:`repro.optimizer.plancache.PlanCache`): the distribution
        #: rewrite is reused across runs of the same (plan, stats) on the
        #: same cluster shape, and per-shard Executors share the cache
        self.plan_cache = plan_cache

    # ------------------------------------------------------------------
    def distribute(self, plan: Plan,
                   source_rows: dict[str, int]) -> DistributedPlan:
        cfg = self.config
        key = None
        if self.plan_cache is not None:
            from ..optimizer.fingerprint import (calibration_fingerprint,
                                                 cluster_fingerprint,
                                                 plan_fingerprint)
            key = self.plan_cache.key(
                "distributed", plan_fingerprint(plan), source_rows,
                calibration_fingerprint(self.base_device),
                cluster_fingerprint(cfg.num_devices, cfg.scheme, cfg.seed,
                                    self.spec.sharers),
                cfg.preagg, cfg.merge)
            hit = self.plan_cache.get(key)
            # the dist rewrite holds node references into the plan object:
            # only reusable when it is literally the same plan
            if hit is not None and hit.plan is plan:
                return hit
        dist = distribute_plan(
            plan, source_rows, cfg.num_devices,
            scheme=cfg.scheme, seed=cfg.seed,
            preagg=cfg.preagg, merge=cfg.merge)
        if self.plan_cache is not None:
            self.plan_cache.put(key, dist)
        return dist

    def _as_dist(self, plan, source_rows) -> DistributedPlan:
        if isinstance(plan, DistributedPlan):
            return plan
        return self.distribute(plan, source_rows)

    # ------------------------------------------------------------------
    # timing path
    # ------------------------------------------------------------------
    def run(self, plan: "Plan | DistributedPlan",
            source_rows: dict[str, int]) -> ClusterRunResult:
        cfg = self.config
        dist = self._as_dist(plan, source_rows)
        if cfg.analyze:
            self._memory_preflight(dist, source_rows)
        n = cfg.num_devices
        injector = as_injector(cfg.faults)
        notes: list[str] = list(dist.notes)

        if n == 1:
            return self._run_single(dist, source_rows, injector, notes)

        # -- device-loss probes (phase 1) -------------------------------
        lost: set[int] = set()
        if injector is not None:
            for dev_id in range(n):
                if injector.device_loss(f"device.{dev_id}"):
                    lost.add(dev_id)
        if len(lost) == n:
            # a cluster with zero devices cannot answer; the lowest slot
            # survives (mirrors the retry-absorbs-first-hit OOM rule)
            lost.discard(0)
            notes.append("all devices probed lost; device 0 retained")
        alive = [d for d in range(n) if d not in lost]

        timelines: dict[int, Timeline] = {d: Timeline() for d in range(n)}
        host_tl = Timeline()
        clock: dict[int, float] = {d: 0.0 for d in range(n)}
        shard_runs: list[ShardRun] = []
        detect_s = (cfg.faults.retry.backoff(1)
                    if cfg.faults is not None else 0.0)
        for dev_id in sorted(lost):
            timelines[dev_id].add(0.0, detect_s, EventKind.HOST,
                                  f"fault.device_loss.device.{dev_id}")

        # -- phase 1: shard-local plans ---------------------------------
        local = (dist.preagg_plan() if dist.preagg is not None
                 else dist.local_plan())
        has_local = any(nd.op is not OpType.SOURCE for nd in local.nodes)
        owner: dict[int, int] = {}
        assigned = {d: 0 for d in alive}
        for shard in range(n):
            if shard in lost:
                dev_id = min(alive, key=lambda d: (assigned[d], d))
            else:
                dev_id = shard
            owner[shard] = dev_id
            assigned[dev_id] += 1

        local_out_total = 0.0
        #: shard -> (start, makespan, output bytes, frontier est rows)
        local_info: dict[int, tuple[float, float, float, float]] = {}
        if has_local:
            for shard in range(n):
                dev_id = owner[shard]
                rows = self._shard_rows(dist, local, shard)
                res = self._run_executor(local, rows, injector)
                t0 = clock[dev_id]
                timelines[dev_id].extend(res.timeline, offset=t0)
                h2d, d2h, out = _phase_bytes(res.timeline)
                local_out_total += out
                clock[dev_id] = t0 + res.timeline.end_time
                f_rows = 0.0
                if dist.frontier:
                    f_rows = float(estimate_sizes(local, rows).get(
                        dist.frontier[0], 0.0))
                local_info[shard] = (t0, res.timeline.end_time, out, f_rows)
                shard_runs.append(ShardRun(
                    shard=shard, device=dev_id, phase="local", start=t0,
                    makespan=res.timeline.end_time, h2d_bytes=h2d,
                    d2h_bytes=d2h, output_bytes=out,
                    degraded_to=res.degraded_to,
                    recovered=shard in lost))
        t_barrier = max([clock[d] for d in alive] + [detect_s])

        # -- phase 2/3: exchange / host suffix / merge ------------------
        exchange_out = exchange_in = merge_bytes = 0.0
        exchange_out_per_device = 0.0
        sizes = estimate_sizes(dist.plan, source_rows)
        if dist.suffix_mode == "exchange":
            ex = dist.exchange
            # destinations and key-group routing are fixed when the
            # pipelined exchange starts; the group -> destination map is
            # the same hash the functional repartition applies to the
            # factorized key, so destination sizes track reality
            barrier_alive = list(alive)
            n_dest = len(barrier_alive)
            G = max(1, int(ex.est_groups))
            gcount = np.bincount(
                hash_shard(np.arange(G, dtype=np.int64), n_dest, dist.seed),
                minlength=n_dest).astype(float)

            # outbound chunks: pre-agg state flush blocks, or
            # EXCHANGE_CHUNK_ROWS-row cuts of the raw frontier.  Chunk k
            # of K becomes available (k+1)/K of the way through its
            # shard's local run -- the stream the fission pipeline
            # drains while later rows still compute.
            chunks: list[tuple[float, int, int, float]] = []
            out_per_shard: dict[int, float] = {}
            for shard in range(n):
                t0, mk, out, f_rows = local_info.get(
                    shard, (0.0, 0.0, 0.0, 0.0))
                if dist.preagg is not None:
                    k_n = dist.preagg.flushes(f_rows)
                    sizes_k = [float(dist.preagg.state_block_nbytes)] * k_n
                else:
                    k_n = max(1, -(-int(f_rows)
                                   // xchg.EXCHANGE_CHUNK_ROWS))
                    sizes_k = [out / k_n] * k_n
                out_per_shard[shard] = float(sum(sizes_k))
                for k, nb in enumerate(sizes_k):
                    chunks.append((t0 + mk * (k + 1) / k_n, shard, k, nb))
            exchange_out = sum(out_per_shard.values())
            exchange_out_per_device = max(out_per_shard.values(),
                                          default=0.0)

            # the host lane stages chunks greedily in availability
            # order; a destination is ready when its last inbound chunk
            # has been staged
            chunks.sort()
            host_clock = 0.0
            dest_ready = [0.0] * n_dest
            dest_in = [0.0] * n_dest
            for avail, shard, k, nb in chunks:
                start = max(host_clock, avail)
                dur = nb / self.costs.host_gather_bw
                host_tl.add(start, start + dur, EventKind.HOST,
                            f"cluster.exchange.s{shard}.c{k}", nbytes=nb)
                host_clock = start + dur
                for d in range(n_dest):
                    share = nb * gcount[d] / G
                    if share > 0.0:
                        dest_in[d] += share
                        dest_ready[d] = host_clock

            # device-loss probes between the phases ("mid-run" losses);
            # destinations are already fixed, so a lost slot is
            # recovered on the least-loaded survivor
            if injector is not None:
                for dev_id in list(alive):
                    if (len(alive) > 1 and injector.device_loss(
                            f"device.{dev_id}.suffix")):
                        lost.add(dev_id)
                        alive.remove(dev_id)
                        timelines[dev_id].add(
                            t_barrier, t_barrier + detect_s, EventKind.HOST,
                            f"fault.device_loss.device.{dev_id}.suffix")

            suffix = (dist.combine_plan() if dist.preagg is not None
                      else dist.suffix_plan())
            src_name = (f"{dist.preagg.agg}.partial"
                        if dist.preagg is not None else ex.buffer)
            unit = float(dist.preagg.state_row_nbytes
                         if dist.preagg is not None else ex.row_nbytes)
            ends: list[float] = []
            slot_out: list[float] = []
            suffix_assigned = {d: 0 for d in alive}
            for slot, home in enumerate(barrier_alive):
                recovered = home not in alive
                if recovered:
                    dev_id = min(alive, key=lambda d: (
                        suffix_assigned[d], clock[d], d))
                else:
                    dev_id = home
                suffix_assigned[dev_id] += 1
                rows_s = int(round(dest_in[slot] / unit))
                if rows_s <= 0:
                    slot_out.append(0.0)
                    shard_runs.append(ShardRun(
                        shard=slot, device=dev_id, phase="suffix",
                        start=dest_ready[slot], makespan=0.0,
                        h2d_bytes=0.0, d2h_bytes=0.0, output_bytes=0.0,
                        degraded_to=None, recovered=recovered))
                    continue
                res = self._run_executor(suffix, {src_name: rows_s},
                                         injector)
                start = max(dest_ready[slot], clock[dev_id])
                if recovered:
                    start = max(start, t_barrier + detect_s)
                timelines[dev_id].extend(res.timeline, offset=start)
                clock[dev_id] = start + res.timeline.end_time
                h2d, d2h, out = _phase_bytes(res.timeline)
                exchange_in += h2d
                slot_out.append(out)
                ends.append(start + res.timeline.end_time)
                shard_runs.append(ShardRun(
                    shard=slot, device=dev_id, phase="suffix", start=start,
                    makespan=res.timeline.end_time, h2d_bytes=h2d,
                    d2h_bytes=d2h, output_bytes=out,
                    degraded_to=res.degraded_to, recovered=recovered))

            t3 = max(ends) if ends else max(host_clock, t_barrier)
            merge_bytes = sum(slot_out)
            if dist.merge == "tree" and len(slot_out) > 1:
                t3 = self._tree_rounds(host_tl, slot_out, t3)
            merge_s = merge_bytes / self.costs.host_gather_bw
            host_tl.add(t3, t3 + merge_s, EventKind.HOST, "cluster.merge",
                        nbytes=merge_bytes)
        elif dist.suffix_mode == "host":
            if dist.preagg is not None:
                # per-shard partial-state blocks combine pairwise up a
                # device-level tree; the host ingests only the root and
                # runs the combine + post chain there
                cap = float(dist.preagg.state_block_nbytes)
                state_row = float(dist.preagg.state_row_nbytes)
                level = [local_info[s][2] for s in sorted(local_info)]
                t_m = t_barrier
                if dist.merge == "tree" and len(level) > 1:
                    t_m = self._tree_rounds(host_tl, level, t_m, cap=cap)
                    root_bytes = self._tree_root(level, cap)
                else:
                    root_bytes = float(sum(level))
                merge_bytes = root_bytes
                suffix_s = root_bytes / self.costs.host_gather_bw
                suffix_s += cpu_select_time(root_bytes / state_row,
                                            int(state_row))
                skip = set(dist.preagg.lowered) | {dist.preagg.agg}
                for node in dist.plan.nodes:
                    if (node.name in dist.local_names
                            or node.op is OpType.SOURCE
                            or node.name in skip):
                        continue
                    prim = node.inputs[0] if node.inputs else node
                    suffix_s += cpu_select_time(
                        sizes[prim.name], out_row_nbytes(prim))
                host_tl.add(t_m, t_m + suffix_s, EventKind.HOST,
                            "cluster.merge", nbytes=root_bytes)
            else:
                # gather the frontier, then interpret the suffix on the
                # host (priced like the cpubase rung: one CPU pass per
                # node)
                gather_bytes = local_out_total
                suffix_s = gather_bytes / self.costs.host_gather_bw
                for node in dist.plan.nodes:
                    if (node.name in dist.local_names
                            or node.op is OpType.SOURCE):
                        continue
                    prim = node.inputs[0] if node.inputs else node
                    suffix_s += cpu_select_time(
                        sizes[prim.name], out_row_nbytes(prim))
                merge_bytes = sum(
                    float(sizes[s.name]) * out_row_nbytes(s)
                    for s in dist.plan.sinks()
                    if s.name not in dist.local_names)
                host_tl.add(t_barrier, t_barrier + suffix_s,
                            EventKind.HOST, "cluster.merge",
                            nbytes=gather_bytes)
        else:  # fully local: the host only merges per-shard sink outputs
            merge_bytes = local_out_total
            merge_s = merge_bytes / self.costs.host_gather_bw
            host_tl.add(t_barrier, t_barrier + merge_s, EventKind.HOST,
                        "cluster.merge", nbytes=merge_bytes)

        if dist.suffix_mode != "exchange":
            exchange_out_per_device = max(
                (info[2] for info in local_info.values()), default=0.0)

        makespan = max([tl.end_time for tl in timelines.values()]
                       + [host_tl.end_time])
        result = ClusterRunResult(
            config=cfg, dist=dist, device_timelines=timelines,
            host_timeline=host_tl, makespan=makespan, shard_runs=shard_runs,
            lost_devices=tuple(sorted(lost)),
            exchange_out_bytes=exchange_out, exchange_in_bytes=exchange_in,
            merge_bytes=merge_bytes,
            exchange_out_per_device=exchange_out_per_device,
            notes=tuple(notes))
        if injector is not None:
            result.faults_injected = injector.faults_injected
            result.retries = injector.retries
            result.reissues = injector.reissues
        if cfg.check:
            from ..validate.cluster import validate_cluster
            validate_cluster(result, self.device).raise_if_failed()
        return result

    # ------------------------------------------------------------------
    def _run_single(self, dist: DistributedPlan, source_rows: dict[str, int],
                    injector: FaultInjector | None,
                    notes: list[str]) -> ClusterRunResult:
        """num_devices == 1: the cluster degenerates to the plain
        single-device Executor on the original plan -- no partitioning,
        no exchange, no host merge -- so makespan and bytes equal
        :func:`single_device_makespan` exactly."""
        cfg = self.config
        if injector is not None and injector.device_loss("device.0"):
            notes.append("sole device probed lost; retained "
                         "(no survivor to recover on)")
        res = self._run_executor(dist.plan, dict(source_rows), injector)
        h2d, d2h, out = _phase_bytes(res.timeline)
        result = ClusterRunResult(
            config=cfg, dist=dist, device_timelines={0: res.timeline},
            host_timeline=Timeline(), makespan=res.timeline.end_time,
            shard_runs=[ShardRun(
                shard=0, device=0, phase="local", start=0.0,
                makespan=res.timeline.end_time, h2d_bytes=h2d,
                d2h_bytes=d2h, output_bytes=out,
                degraded_to=res.degraded_to)],
            lost_devices=(), exchange_out_bytes=0.0, exchange_in_bytes=0.0,
            merge_bytes=0.0, exchange_out_per_device=0.0,
            notes=tuple(notes))
        if injector is not None:
            result.faults_injected = injector.faults_injected
            result.retries = injector.retries
            result.reissues = injector.reissues
        if cfg.check:
            from ..validate.cluster import validate_cluster
            validate_cluster(result, self.device).raise_if_failed()
        return result

    def _tree_rounds(self, host_tl: Timeline, level: list[float],
                     t0: float, cap: float | None = None) -> float:
        """Price pairwise device-level merge rounds onto the host lane
        (coordination events; pairs move in parallel so a round costs its
        largest sender).  Returns the time the root is ready."""
        r = 0
        level = list(level)
        while len(level) > 1:
            senders = [level[i + 1] for i in range(0, len(level) - 1, 2)]
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    merged = level[i] + level[i + 1]
                    nxt.append(min(merged, cap) if cap is not None
                               else merged)
                else:
                    nxt.append(level[i])
            dur = (max(senders) / self.costs.host_gather_bw
                   if senders else 0.0)
            host_tl.add(t0, t0 + dur, EventKind.HOST,
                        f"cluster.merge.round{r}", nbytes=float(sum(senders)))
            t0 += dur
            level = nxt
            r += 1
        return t0

    @staticmethod
    def _tree_root(level: list[float], cap: float | None = None) -> float:
        level = list(level)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    merged = level[i] + level[i + 1]
                    nxt.append(min(merged, cap) if cap is not None
                               else merged)
                else:
                    nxt.append(level[i])
            level = nxt
        return float(level[0]) if level else 0.0

    # ------------------------------------------------------------------
    def _memory_preflight(self, dist: DistributedPlan,
                          source_rows: dict[str, int]) -> None:
        """Refuse certain-OOM dispatch: vet the shard-local phase (on the
        largest shard's slice) and the exchange-volume bounds against the
        contended per-device budget before anything runs."""
        from ..analyze import Analyzer
        from ..analyze.memory_check import MemoryTarget
        target = MemoryTarget(dist, dict(source_rows),
                              strategies=(self.config.strategy,),
                              device=self.device)
        Analyzer(self.device, self.costs).run(target, strict=True)

    def _run_executor(self, plan: Plan, rows: dict[str, int],
                      injector: FaultInjector | None) -> RunResult:
        ex = Executor(self.device, costs=self.costs, check=self.config.check,
                      faults=injector,
                      degrade=True if injector is not None else None,
                      plan_cache=self.plan_cache)
        return ex.run(plan, rows,
                      ExecutionConfig(strategy=self.config.strategy))

    def _shard_rows(self, dist: DistributedPlan, local: Plan,
                    shard: int) -> dict[str, int]:
        """Virtual row counts of shard `shard`'s slice of each source."""
        rows: dict[str, int] = {}
        needed = {s.name for s in local.sources()}
        for src in dist.sources:
            if src.name not in needed:
                continue
            if src.kind == "replicated":
                rows[src.name] = src.rows
            else:
                rows[src.name] = even_counts(
                    src.rows, dist.num_shards)[shard]
        return rows

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    def functional(self, plan: "Plan | DistributedPlan",
                   sources: dict[str, Relation]) -> dict[str, Relation]:
        """Distributed evaluation over real relations; byte-identical to
        ``evaluate_sinks(plan, sources)`` (single device) by construction.

        Loss-agnostic: the data path always uses all ``num_shards`` shards
        and destinations; device losses only reroute *where* a shard's
        timing runs, never what it computes.  The exchange streams in
        chunks (:func:`repro.cluster.exchange.repartition_chunked`) and,
        when the partial/combine split is bit-exact, shards really do
        exchange partial aggregate states and tree-combine them.
        """
        dist = self._as_dist(
            plan, {name: rel.num_rows for name, rel in sources.items()})
        n = dist.num_shards
        part = Partitioner(n, parse_scheme(dist.scheme), dist.seed)
        if not self._partitionable(dist, sources):
            # partition key missing from the real schema (statically
            # inferred keys are best-effort): fall back to restoring the
            # sources from a positional split -- still exercises the
            # partitioner, trivially byte-identical
            from ..plans.interp import evaluate_sinks
            restored = {}
            for name, rel in sources.items():
                shards, idx = part.split(rel)
                restored[name] = Partitioner.restore(shards, idx)
            return evaluate_sinks(dist.plan, restored)

        parts: dict[str, list[Relation]] = {}
        positional = {s.name for s in dist.sources
                      if s.kind == "partitioned" and s.key is None}
        if positional:
            aligned, _ = part.split_aligned(
                {name: sources[name] for name in positional})
            parts.update(aligned)
        boundaries = None
        if dist.scheme == "range" and dist.partition_key is not None:
            driver_rel = sources[dist.driver]
            boundaries = range_boundaries(
                driver_rel.column(dist.partition_key[0]), n)
        for src in dist.sources:
            if src.kind == "partitioned" and src.key is not None:
                shards, _ = part.split(sources[src.name], key=src.key[0],
                                       boundaries=boundaries)
                parts[src.name] = shards
            elif src.kind == "replicated":
                parts[src.name] = [sources[src.name]] * n

        # the exact partial/combine split really runs on the data path;
        # a non-exact split (float sums re-associate) is timing-only and
        # the referee keeps the raw whole-group exchange
        exact_preagg = dist.preagg is not None and dist.preagg.exact
        local = dist.preagg_plan() if exact_preagg else dist.local_plan()
        local_sources = {s.name for s in local.sources()}
        shard_results: list[dict[str, Relation]] = []
        for shard in range(n):
            bound = {name: parts[name][shard] for name in local_sources}
            shard_results.append(evaluate(local, bound))

        outputs: dict[str, Relation] = {}
        for name in dist.local_sinks():
            outputs[name] = self._merge_local(dist, name, [
                r[name] for r in shard_results])
        if dist.suffix_mode == "none":
            return outputs

        if dist.suffix_mode == "exchange":
            ex = dist.exchange
            if exact_preagg:
                partial = f"{dist.preagg.agg}.partial"
                dest_parts = xchg.repartition_chunked(
                    [r[partial] for r in shard_results],
                    dist.preagg.group_by, n, dist.seed)
                suffix = dist.combine_plan()
                per_dest = [evaluate(suffix, {partial: dp})
                            for dp in dest_parts]
            else:
                suffix = dist.suffix_plan()
                dest_parts = xchg.repartition_chunked(
                    [r[ex.buffer] for r in shard_results], ex.key, n,
                    dist.seed)
                per_dest = [evaluate(suffix, {ex.buffer: dp})
                            for dp in dest_parts]
            merge_groups = (xchg.merge_group_sorted_tree
                            if dist.merge == "tree"
                            else xchg.merge_group_sorted)
            for sink in suffix.sinks():
                group_by = sink.params.get("group_by") or []
                outputs[sink.name] = merge_groups(
                    [r[sink.name] for r in per_dest], group_by)
            return outputs

        # host mode
        if exact_preagg:
            agg_name = dist.preagg.agg
            combined = xchg.combine_partial_states(
                [r[f"{agg_name}.partial"] for r in shard_results],
                list(dist.preagg.group_by),
                combine_agg_specs(dist.node(agg_name)))
            post = dist.post_plan()
            res = evaluate(post, {agg_name: combined})
            for sink in post.sinks():
                outputs[sink.name] = res[sink.name]
            return outputs
        suffix = dist.suffix_plan()
        bound: dict[str, Relation] = {}
        merge_all = (xchg.merge_concat_tree if dist.merge == "tree"
                     else xchg.merge_concat)
        for name in dist.frontier:
            parts_f = [r[name] for r in shard_results]
            bound[name] = (parts_f[0]
                           if self._is_replicated(dist, name)
                           else merge_all(parts_f))
        for name in dist.suffix_sources:
            bound[name] = sources[name]
        res = evaluate(suffix, bound)
        for sink in suffix.sinks():
            outputs[sink.name] = res[sink.name]
        return outputs

    # ------------------------------------------------------------------
    def _partitionable(self, dist: DistributedPlan,
                       sources: dict[str, Relation]) -> bool:
        for src in dist.sources:
            if src.kind == "partitioned" and src.key is not None:
                rel = sources.get(src.name)
                if rel is None or any(k not in rel.fields for k in src.key):
                    return False
        return True

    def _is_replicated(self, dist: DistributedPlan, name: str) -> bool:
        """Is a local node's value identical on every shard?  True when
        every source it depends on is replicated."""
        node = dist.node(name)
        stack, seen = [node], set()
        while stack:
            cur = stack.pop()
            if cur.name in seen:
                continue
            seen.add(cur.name)
            if cur.op is OpType.SOURCE:
                if dist.source_dist(cur.name).kind != "replicated":
                    return False
            stack.extend(cur.inputs)
        return True

    def _merge_local(self, dist: DistributedPlan, name: str,
                     parts: list[Relation]) -> Relation:
        if self._is_replicated(dist, name):
            return parts[0]
        node = dist.node(name)
        if node.op is OpType.AGGREGATE:
            return xchg.merge_group_sorted(
                parts, node.params.get("group_by") or [])
        return xchg.merge_concat(parts)


def single_device_makespan(plan: Plan, source_rows: dict[str, int],
                           strategy: Strategy = Strategy.FUSED_FISSION,
                           device: DeviceSpec | None = None) -> float:
    """Reference: the plain single-device Executor on the uncontended
    base device (what `BENCH_cluster.json` reports alongside)."""
    ex = Executor(device or DeviceSpec())
    res = ex.run(plan, source_rows, ExecutionConfig(strategy=strategy))
    return res.makespan

"""Deterministic table partitioner for the simulated cluster.

Shards a TPC-H relation across ``num_shards`` devices under one of three
schemes (hash / range / round-robin), with two co-partitioning modes:

* **keyed** -- every relation carrying the partition key is split by the
  same pure function of the key *value*, so equal keys land on the same
  shard regardless of which table they sit in (joins on the key stay
  shard-local);
* **positional** -- row-aligned relations (the Q1 column tables, all keyed
  by the implicit ``rowid``) are split by the same index sets, preserving
  row order inside every shard.

Round-robin is positional by construction, so a *keyed* co-partition under
``rr`` silently falls back to the hash assigner (documented in
docs/CLUSTER.md; the ``rr`` scheme still shapes the positional splits and
the virtual shard counts).

Everything is a pure function of ``(scheme, num_shards, seed, input)`` --
no global RNG -- so shard contents and the skew metrics are byte-stable
across runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..ra.relation import Relation


class PartitionScheme(enum.Enum):
    HASH = "hash"
    RANGE = "range"
    ROUND_ROBIN = "rr"


#: Fibonacci multiplicative-hash constant (64-bit golden ratio)
_HASH_MULT = 0x9E3779B97F4A7C15


def parse_scheme(name: str) -> PartitionScheme:
    for scheme in PartitionScheme:
        if scheme.value == name:
            return scheme
    raise ValueError(
        f"unknown partition scheme {name!r}; expected one of "
        f"{[s.value for s in PartitionScheme]}")


def hash_shard(keys: np.ndarray, num_shards: int, seed: int = 0) -> np.ndarray:
    """Shard id per key: seeded multiplicative hash of the key *value*.

    A pure function of ``(key, num_shards, seed)`` -- the co-partitioning
    guarantee: the same key maps to the same shard from any table.
    """
    with np.errstate(over="ignore"):
        k = np.asarray(keys).astype(np.uint64)
        mixed = (k + np.uint64(seed) + np.uint64(1)) * np.uint64(_HASH_MULT)
        mixed ^= mixed >> np.uint64(31)
        return (mixed % np.uint64(num_shards)).astype(np.int64)


def range_boundaries(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """``num_shards - 1`` split points putting ~equal key *ranks* per shard.

    Boundaries come from the sorted key sample, so two tables range-split
    with the same boundaries are co-partitioned on that key.
    """
    ordered = np.sort(np.asarray(keys))
    if ordered.size == 0:
        return np.zeros(max(0, num_shards - 1), dtype=np.int64)
    cuts = [ordered[min(ordered.size - 1, (ordered.size * i) // num_shards)]
            for i in range(1, num_shards)]
    return np.asarray(cuts)


def range_shard(keys: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Shard id per key given precomputed boundaries (searchsorted)."""
    return np.searchsorted(boundaries, np.asarray(keys), side="left").astype(np.int64)


def even_counts(n_rows: int, num_shards: int) -> list[int]:
    """Balanced virtual shard sizes (first ``n % N`` shards get the +1)."""
    base, extra = divmod(int(n_rows), num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


def skew(counts) -> float:
    """Max/mean shard-size ratio (1.0 = perfectly balanced, 0.0 = empty)."""
    counts = list(counts)
    total = sum(counts)
    if not counts or total == 0:
        return 0.0
    return max(counts) / (total / len(counts))


@dataclass(frozen=True)
class Partitioner:
    """Shards relations deterministically; see the module docstring."""

    num_shards: int
    scheme: PartitionScheme = PartitionScheme.HASH
    seed: int = 0

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")

    # -- shard-id assignment ------------------------------------------------
    def positional_ids(self, n_rows: int) -> np.ndarray:
        """Shard id per row position (key-free schemes / rowid alignment)."""
        n = int(n_rows)
        if self.scheme is PartitionScheme.ROUND_ROBIN:
            return (np.arange(n, dtype=np.int64) + self.seed) % self.num_shards
        if self.scheme is PartitionScheme.HASH:
            return hash_shard(np.arange(n, dtype=np.int64), self.num_shards,
                              self.seed)
        # RANGE: contiguous row blocks
        counts = even_counts(n, self.num_shards)
        return np.repeat(np.arange(self.num_shards, dtype=np.int64), counts)

    def key_ids(self, keys: np.ndarray,
                boundaries: np.ndarray | None = None) -> np.ndarray:
        """Shard id per row from the key *values* (co-partition safe).

        ``rr`` has no value-based form, so keyed splits under ``rr`` use the
        hash assigner (same seed) -- co-partitioning still holds.
        """
        if self.scheme is PartitionScheme.RANGE:
            if boundaries is None:
                boundaries = range_boundaries(keys, self.num_shards)
            return range_shard(keys, boundaries)
        return hash_shard(keys, self.num_shards, self.seed)

    # -- splitting ----------------------------------------------------------
    def indices(self, ids: np.ndarray) -> list[np.ndarray]:
        """Order-preserving row-index sets, one per shard."""
        return [np.flatnonzero(ids == s) for s in range(self.num_shards)]

    def split(self, rel: Relation, key: str | None = None,
              boundaries: np.ndarray | None = None
              ) -> tuple[list[Relation], list[np.ndarray]]:
        """Split one relation; returns (shards, per-shard row indices)."""
        if key is None:
            ids = self.positional_ids(rel.num_rows)
        else:
            ids = self.key_ids(rel.column(key), boundaries)
        idx = self.indices(ids)
        return [rel.take(i) for i in idx], idx

    def split_aligned(self, rels: dict[str, Relation]
                      ) -> tuple[dict[str, list[Relation]], list[np.ndarray]]:
        """Positionally co-partition row-aligned relations (same length):
        one shared index split applied to every relation."""
        lengths = {r.num_rows for r in rels.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"positional co-partition needs equal lengths, got {lengths}")
        n = lengths.pop() if lengths else 0
        idx = self.indices(self.positional_ids(n))
        return ({name: [rel.take(i) for i in idx]
                 for name, rel in rels.items()}, idx)

    # -- reassembly ---------------------------------------------------------
    @staticmethod
    def restore(shards: list[Relation], indices: list[np.ndarray]) -> Relation:
        """Invert a split: concat shards and undo the row permutation,
        reproducing the original relation byte-for-byte."""
        merged = concat(shards)
        order = np.concatenate([np.asarray(i, dtype=np.int64) for i in indices]
                               ) if indices else np.zeros(0, dtype=np.int64)
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = np.arange(order.size, dtype=np.int64)
        return merged.take(inverse)


def concat(shards: list[Relation]) -> Relation:
    """Concatenate shard relations in shard order (schemas must match).

    Zero-row shards are dropped when any shard has rows: an empty
    aggregate output synthesizes default (wider) dtypes, and letting it
    into ``np.concatenate`` would promote the merged columns.
    """
    shards = [s for s in shards if s is not None]
    nonempty = [s for s in shards if s.num_rows > 0]
    if nonempty:
        shards = nonempty
    if not shards:
        raise ValueError("nothing to concatenate")
    first = shards[0]
    if len(shards) == 1:
        return first
    cols = {f: np.concatenate([s.column(f) for s in shards])
            for f in first.fields}
    return Relation(cols, key=first.key)

"""Declarative fault model: what can go wrong, how often, and how recovery
is paced.

A :class:`FaultPlan` is a pure-data description of a chaos experiment:
which fault kinds fire, at what per-site probability, under which seed, and
within which total budget.  It is consumed by
:class:`repro.faults.injector.FaultInjector`, which turns the plan into
deterministic per-site decisions.

Determinism contract: every decision is a pure function of
``(seed, fault kind, site, attempt index)`` -- *not* of global draw order --
so the same ``(plan, sources, fault seed)`` always produces byte-identical
timelines regardless of how many unrelated sites were probed in between.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class FaultKind(enum.Enum):
    """The failure modes the simulated platform can inject."""

    #: transient host-to-device transfer failure (DMA abort; retryable)
    H2D_FAIL = "h2d_fail"
    #: transient device-to-host transfer failure (retryable)
    D2H_FAIL = "d2h_fail"
    #: kernel launch failure (driver rejects the launch; retryable)
    KERNEL_FAIL = "kernel_fail"
    #: a stream command takes ``stall_factor`` times longer than modeled;
    #: past the stall timeout it is abandoned and re-issued on a fresh stream
    STREAM_STALL = "stream_stall"
    #: spurious device-memory allocation failure (retried once, then the
    #: runtime degrades its strategy)
    DEVICE_OOM = "device_oom"
    #: host staging (pageable-copy / gather) runs ``host_slowdown_factor``
    #: times slower (OS paging pressure; no failure, just latency)
    HOST_SLOWDOWN = "host_slowdown"
    #: a whole simulated device drops out of the cluster (XID-style fatal
    #: error); not retryable in place -- the cluster layer re-executes the
    #: lost device's shards on a surviving device (docs/CLUSTER.md)
    DEVICE_LOSS = "device_loss"
    #: a serving worker process is killed mid-run (OOM-killer / segfault
    #: stand-in); the pool detects the dead worker, re-spawns it warm, and
    #: replays its unacknowledged outbox entries (docs/SERVING.md).  Probed
    #: at ``worker.<k>`` sites by the pool's own injector, never by the
    #: simulation engines, so it changes process lifecycle -- not simulated
    #: results
    WORKER_KILL = "worker_kill"


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime recovers from transient faults.

    Backoff is charged in *simulated* time: after attempt ``k`` fails, the
    stream may not re-dispatch the command before
    ``backoff_base_s * backoff_multiplier ** (k - 1)`` seconds elapse.
    """

    #: retries per command before the typed FaultError escapes
    max_retries: int = 3
    backoff_base_s: float = 1e-4
    backoff_multiplier: float = 2.0
    #: a stalled command is abandoned (and re-issued on a fresh stream)
    #: once its stalled duration exceeds this
    stall_timeout_s: float = 0.2
    #: fraction of the modeled duration a failed transfer occupies its copy
    #: engine before the failure is detected
    transfer_fail_fraction: float = 0.5
    #: time a failed kernel launch holds its SMs before the driver reports
    kernel_fail_latency_s: float = 5e-6

    def backoff(self, attempt: int) -> float:
        """Simulated-seconds delay before retry number `attempt` (1-based)."""
        return self.backoff_base_s * self.backoff_multiplier ** max(0, attempt - 1)


#: every retryable/latency kind, used by :meth:`FaultPlan.chaos`
ALL_KINDS = tuple(FaultKind)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, budgeted description of which faults to inject.

    Parameters
    ----------
    seed:
        Root of every injection decision; two runs with the same plan make
        identical decisions at identical sites.
    rates:
        Per-kind injection probability (0 disables the kind).
    site_rates:
        Per-site overrides: maps a site *prefix* (e.g. ``"input.lineitem"``
        or ``"h2d.seg"``) to a rate that replaces the kind rate at matching
        sites.  The longest matching prefix wins.
    budget:
        Maximum total faults injected per injector; once spent, the run
        proceeds fault-free, so every run terminates and stays reproducible.
    """

    seed: int = 0
    rates: Mapping[FaultKind, float] = field(default_factory=dict)
    site_rates: Mapping[str, float] = field(default_factory=dict)
    budget: int = 64
    stall_factor: float = 25.0
    host_slowdown_factor: float = 8.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind} must be in [0, 1], got {rate}")
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")

    # ------------------------------------------------------------------
    @classmethod
    def chaos(cls, seed: int, rate: float = 0.02, budget: int = 64,
              kinds: tuple[FaultKind, ...] = ALL_KINDS,
              retry: RetryPolicy | None = None) -> "FaultPlan":
        """A uniform low-rate plan over `kinds` -- the chaos-mode default."""
        return cls(seed=seed, rates={k: rate for k in kinds}, budget=budget,
                   retry=retry or RetryPolicy())

    @classmethod
    def off(cls) -> "FaultPlan":
        """A plan that never injects (useful as an explicit no-op)."""
        return cls(seed=0, rates={}, budget=0)

    def reseeded(self, offset: int) -> "FaultPlan":
        """This plan under a derived seed (``seed + offset``).

        The serving layer gives batch ``k`` the plan ``reseeded(k)`` so each
        batch draws independent fault decisions, yet a whole serve run stays
        a pure function of the root seed regardless of batch composition.
        """
        return FaultPlan(
            seed=self.seed + offset, rates=self.rates,
            site_rates=self.site_rates, budget=self.budget,
            stall_factor=self.stall_factor,
            host_slowdown_factor=self.host_slowdown_factor,
            retry=self.retry)

    # ------------------------------------------------------------------
    def rate_for(self, kind: FaultKind, site: str) -> float:
        """Effective injection probability of `kind` at `site`."""
        best: str | None = None
        for prefix in self.site_rates:
            if site.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is not None:
            return self.site_rates[best]
        return self.rates.get(kind, 0.0)

    @property
    def enabled(self) -> bool:
        return self.budget > 0 and (any(r > 0 for r in self.rates.values())
                                    or any(r > 0 for r in self.site_rates.values()))


def parse_chaos(spec: str) -> FaultPlan:
    """Parse the CLI's ``--chaos SEED[:RATE]`` argument into a plan."""
    seed_part, _, rate_part = spec.partition(":")
    try:
        seed = int(seed_part)
    except ValueError:
        raise ValueError(f"--chaos seed must be an integer, got {seed_part!r}")
    rate = 0.02
    if rate_part:
        try:
            rate = float(rate_part)
        except ValueError:
            raise ValueError(f"--chaos rate must be a float, got {rate_part!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"--chaos rate must be in [0, 1], got {rate}")
    return FaultPlan.chaos(seed=seed, rate=rate)

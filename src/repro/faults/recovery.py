"""Degradation ladders: which execution modes to fall back through when the
device keeps reporting OOM.

The paper's strategies assume the device cooperates; a production engine
must keep answering when it does not.  The ladder realizes the fallback
order *fission -> resident -> chunked -> cpubase*:

* **fission** -- pipelined segments over pooled streams (fastest, most
  exposed to transfer faults and stream stalls);
* **resident** -- intermediates stay in device memory, serial stream;
* **chunked** -- every intermediate is eagerly staged back to the host so
  the device footprint stays minimal (the paper's forced round trip);
* **cpubase** -- the NumPy interpreter on the host; always succeeds and is
  functionally identical, just slow.
"""

from __future__ import annotations

from ..errors import DeviceOOMError

#: canonical fallback order, most capable first
DEGRADATION_ORDER = ("fission", "resident", "chunked", "cpubase")

#: the cluster layer's ladder sits one rung above the per-device order: a
#: device lost mid-run (:class:`repro.errors.DeviceLostError`) has its
#: shards **re-executed on a surviving device**, and only then does the
#: per-device ladder above apply on whatever device ends up running the
#: shard (docs/CLUSTER.md)
CLUSTER_DEGRADATION_ORDER = ("reexecute_on_survivor",) + DEGRADATION_ORDER

#: per-starting-mode ladders (a mode degrades only rightward; compressed
#: transfers are an orthogonal entry point that falls back to resident)
LADDERS: dict[str, tuple[str, ...]] = {
    "fission": ("fission", "resident", "chunked", "cpubase"),
    "resident": ("resident", "chunked", "cpubase"),
    "compressed": ("compressed", "resident", "chunked", "cpubase"),
    "chunked": ("chunked", "cpubase"),
    "cpubase": ("cpubase",),
}


def ladder_for(mode: str) -> tuple[str, ...]:
    try:
        return LADDERS[mode]
    except KeyError:
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of {sorted(LADDERS)}")


def spurious_oom(injector, site: str, capacity: int) -> None:
    """Raise an injected :class:`DeviceOOMError` at `site` when the plan
    says so -- but only on a *repeated* hit: the first draw models a
    transient allocator hiccup that a single retry absorbs.
    """
    if injector is None:
        return
    if injector.oom(site):
        injector.note_retry(site)
        if injector.oom(site):
            err = DeviceOOMError(capacity, 0, capacity)
            err.injected = True
            err.site = site
            raise err

"""Deterministic fault injection + recovery policies for the simulated
platform (see docs/FAULTS.md).

The split mirrors the sanitizer's: :mod:`repro.validate` proves a schedule
*valid*, this package makes schedules *go wrong on purpose* -- transient
transfer/launch failures, stream stalls, spurious OOM, host slowdowns --
and supplies the retry/degradation machinery the engine and runtimes use to
repair them.  Everything is seeded and budgeted, so chaos runs are exactly
reproducible.
"""

from .injector import FaultInjector, InjectedFault, as_injector
from .plan import ALL_KINDS, FaultKind, FaultPlan, RetryPolicy, parse_chaos
from .recovery import (CLUSTER_DEGRADATION_ORDER, DEGRADATION_ORDER, LADDERS,
                       ladder_for, spurious_oom)

__all__ = [
    "FaultKind", "FaultPlan", "RetryPolicy", "ALL_KINDS", "parse_chaos",
    "FaultInjector", "InjectedFault", "as_injector",
    "DEGRADATION_ORDER", "CLUSTER_DEGRADATION_ORDER", "LADDERS",
    "ladder_for", "spurious_oom",
]

"""Deterministic fault injector.

Turns a :class:`~repro.faults.plan.FaultPlan` into per-site yes/no (or
magnitude) decisions.  Each decision hashes ``(seed, kind, site, n)`` where
``n`` counts prior probes of that exact (kind, site) pair -- so retries of
the same command see fresh, but reproducible, draws, and decisions at one
site are independent of how many other sites were probed first.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .plan import FaultKind, FaultPlan


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault the injector fired."""

    kind: FaultKind
    site: str
    probe: int  # which draw at this (kind, site) fired


class FaultInjector:
    """Stateful consumer of a :class:`FaultPlan`.

    One injector per run: its budget and per-site probe counters accumulate
    across the whole execution (including retries and strategy
    degradations), which is what keeps chaos runs bounded and reproducible.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._probes: dict[tuple[FaultKind, str], int] = {}
        self.injected: list[InjectedFault] = []
        self.retries = 0
        self.reissues = 0
        self._budget_left = plan.budget

    # -- core decision ------------------------------------------------------
    def _uniform(self, kind: FaultKind, site: str, probe: int) -> float:
        payload = f"{self.plan.seed}:{kind.value}:{site}:{probe}".encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def fire(self, kind: FaultKind, site: str) -> bool:
        """Should `kind` fire at `site` right now?  Consumes one probe."""
        rate = self.plan.rate_for(kind, site)
        if rate <= 0.0 or self._budget_left <= 0:
            return False
        key = (kind, site)
        probe = self._probes.get(key, 0)
        self._probes[key] = probe + 1
        if self._uniform(kind, site, probe) < rate:
            self._budget_left -= 1
            self.injected.append(InjectedFault(kind, site, probe))
            return True
        return False

    # -- convenience per-kind probes ---------------------------------------
    def transfer_fault(self, site: str, h2d: bool) -> bool:
        return self.fire(FaultKind.H2D_FAIL if h2d else FaultKind.D2H_FAIL, site)

    def kernel_fault(self, site: str) -> bool:
        return self.fire(FaultKind.KERNEL_FAIL, site)

    def stall(self, site: str) -> float | None:
        """Stall factor to apply at `site`, or None."""
        if self.fire(FaultKind.STREAM_STALL, site):
            return self.plan.stall_factor
        return None

    def host_slowdown(self, site: str) -> float | None:
        if self.fire(FaultKind.HOST_SLOWDOWN, site):
            return self.plan.host_slowdown_factor
        return None

    def oom(self, site: str) -> bool:
        return self.fire(FaultKind.DEVICE_OOM, site)

    def device_loss(self, site: str) -> bool:
        """Does the device probed at `site` (``device.<k>...``) drop out?"""
        return self.fire(FaultKind.DEVICE_LOSS, site)

    def worker_kill(self, site: str) -> bool:
        """Is the serving worker probed at `site` (``worker.<k>``) killed
        before this dispatch?  Consumed by the worker pool, one probe per
        routed dispatch -- replays of outbox entries are not re-probed."""
        return self.fire(FaultKind.WORKER_KILL, site)

    # -- recovery bookkeeping ----------------------------------------------
    def note_retry(self, site: str) -> None:
        self.retries += 1

    def note_reissue(self, site: str) -> None:
        self.reissues += 1

    # -- stats --------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        return len(self.injected)

    @property
    def budget_left(self) -> int:
        return self._budget_left

    def by_kind(self) -> dict[FaultKind, int]:
        out: dict[FaultKind, int] = {}
        for f in self.injected:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def snapshot(self) -> dict[str, int]:
        """Flat metrics dict (stable keys; suitable for RunResult/logs)."""
        out = {"faults_injected": self.faults_injected,
               "retries": self.retries, "reissues": self.reissues}
        for kind, n in sorted(self.by_kind().items(), key=lambda kv: kv[0].value):
            out[f"faults.{kind.value}"] = n
        return out


def as_injector(faults: "FaultPlan | FaultInjector | None") -> FaultInjector | None:
    """Normalize a faults argument: plans get a fresh injector, injectors
    pass through (so callers can share budget across phases), None stays."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)

"""CPU baseline (16-thread dual-Xeon SELECT, for the Fig 4(a) comparison)."""

from .select import cpu_select, cpu_select_time, cpu_select_throughput

__all__ = ["cpu_select", "cpu_select_time", "cpu_select_throughput"]

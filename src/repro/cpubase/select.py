"""CPU SELECT baseline (paper Fig 4(a), bottom three curves).

The paper parallelizes SELECT over 16 CPU threads on a dual quad-core Xeon
E5520.  Functionally this is a NumPy mask-and-compact; its simulated time
follows a simple streaming model::

    t = startup + n * (row/read_bw  +  sel*row/write_bw  +  sel*overhead)

whose constants (:class:`repro.simgpu.calibration.CpuCalibration`) are fit
to the paper's reported GPU-vs-CPU speedups (2.88x / 8.80x / 8.35x at
10% / 50% / 90% selected).
"""

from __future__ import annotations

import numpy as np

from ..ra.expr import Predicate
from ..ra.operators import select as ra_select
from ..ra.relation import Relation
from ..simgpu.calibration import CpuCalibration, DEFAULT_CALIBRATION


def cpu_select(rel: Relation, predicate: Predicate) -> Relation:
    """Functional CPU SELECT (identical semantics to the GPU operator)."""
    return ra_select(rel, predicate)


def cpu_select_time(n_elements: int, row_nbytes: int = 4,
                    selectivity: float = 0.5,
                    calib: CpuCalibration | None = None) -> float:
    """Simulated seconds for a 16-thread CPU SELECT over `n_elements`."""
    c = calib or DEFAULT_CALIBRATION.cpu
    n = float(n_elements)
    f = float(selectivity)
    per_elem = (
        row_nbytes / c.read_bw
        + f * row_nbytes / c.write_bw
        + f * c.per_match_overhead_s
        + f * (1.0 - f) * c.branch_miss_s
    )
    return c.startup_s + n * per_elem


def cpu_select_throughput(n_elements: int, row_nbytes: int = 4,
                          selectivity: float = 0.5,
                          calib: CpuCalibration | None = None) -> float:
    """Input bytes per second of the CPU SELECT."""
    t = cpu_select_time(n_elements, row_nbytes, selectivity, calib)
    return n_elements * row_nbytes / t if t > 0 else 0.0

"""SQL query AST (the parser's output, the binder's input)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ra.expr import Expr, Predicate


@dataclass(frozen=True)
class Aggregate:
    """SUM/COUNT/AVG/MIN/MAX over an expression (COUNT may be COUNT(*))."""

    func: str                 # 'sum' | 'count' | 'mean' | 'min' | 'max'
    argument: Expr | None     # None only for COUNT(*)
    distinct: bool = False    # COUNT(DISTINCT x)


@dataclass(frozen=True)
class AggExpr(Expr):
    """An aggregate appearing *inside* a scalar expression.

    ``SUM(a) / SUM(b)`` parses to ``BinOp('/', AggExpr(...), AggExpr(...))``;
    the frontend binder pulls the AggExpr leaves into an AGGREGATE node and
    rewrites the surrounding expression over the aggregate outputs.
    """

    func: str
    argument: Expr | None
    distinct: bool = False

    def evaluate(self, columns):
        raise NotImplementedError(
            "aggregates must be bound before evaluation")

    def fields(self):
        return self.argument.fields() if self.argument is not None else set()

    def instruction_estimate(self):
        arg = self.argument.instruction_estimate() if self.argument else 0
        return 1 + arg


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesized single-value subquery used as a scalar."""

    query: "Query"

    def evaluate(self, columns):
        raise NotImplementedError(
            "scalar subqueries must be decorrelated before evaluation")

    def fields(self):
        return set()

    def instruction_estimate(self):
        return 1


@dataclass(frozen=True)
class Exists(Predicate):
    """``[NOT] EXISTS (subquery)``."""

    query: "Query"
    negated: bool = False

    def evaluate(self, columns):
        raise NotImplementedError(
            "EXISTS must be decorrelated before evaluation")

    def fields(self):
        return set()

    def instruction_estimate(self):
        return 1


@dataclass(frozen=True)
class InSubquery(Predicate):
    """``expr [NOT] IN (subquery)``."""

    expr: Expr
    query: "Query"
    negated: bool = False

    def evaluate(self, columns):
        raise NotImplementedError(
            "IN (subquery) must be decorrelated before evaluation")

    def fields(self):
        return self.expr.fields()

    def instruction_estimate(self):
        return 1 + self.expr.instruction_estimate()


@dataclass(frozen=True)
class SelectItem:
    """One output column: a plain/computed expression or an aggregate."""

    alias: str
    expr: Expr | None = None
    agg: Aggregate | None = None

    def __post_init__(self):
        if (self.expr is None) == (self.agg is None):
            raise ValueError("SelectItem needs exactly one of expr/agg")

    @property
    def is_aggregate(self) -> bool:
        return self.agg is not None


@dataclass(frozen=True)
class TableRef:
    """One entry of the FROM list: a base table or a derived table."""

    table: str
    alias: str | None = None
    subquery: "Query | None" = None

    @property
    def name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause:
    table: str
    using: str = ""            # JOIN <table> USING (<col>)
    kind: str = "inner"        # 'inner' | 'left' | 'cross'
    alias: str | None = None
    on: Predicate | None = None  # JOIN <table> ON <pred>
    subquery: "Query | None" = None


@dataclass
class Query:
    items: list[SelectItem]
    table: str
    joins: list[JoinClause] = field(default_factory=list)
    where: Predicate | None = None
    group_by: list[str] = field(default_factory=list)
    having: Predicate | None = None
    order_by: list[tuple[str, bool]] = field(default_factory=list)  # (col, desc)
    distinct: bool = False
    tables: list[TableRef] = field(default_factory=list)  # full FROM list
    limit: int | None = None
    set_op: "tuple[str, Query] | None" = None  # ('union'|'union_all'|'except'|'except_all', rhs)

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)

"""SQL query AST (the parser's output, the binder's input)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ra.expr import Expr, Predicate


@dataclass(frozen=True)
class Aggregate:
    """SUM/COUNT/AVG/MIN/MAX over an expression (COUNT may be COUNT(*))."""

    func: str                 # 'sum' | 'count' | 'mean' | 'min' | 'max'
    argument: Expr | None     # None only for COUNT(*)


@dataclass(frozen=True)
class SelectItem:
    """One output column: a plain/computed expression or an aggregate."""

    alias: str
    expr: Expr | None = None
    agg: Aggregate | None = None

    def __post_init__(self):
        if (self.expr is None) == (self.agg is None):
            raise ValueError("SelectItem needs exactly one of expr/agg")

    @property
    def is_aggregate(self) -> bool:
        return self.agg is not None


@dataclass(frozen=True)
class JoinClause:
    table: str
    using: str                # JOIN <table> USING (<col>)


@dataclass
class Query:
    items: list[SelectItem]
    table: str
    joins: list[JoinClause] = field(default_factory=list)
    where: Predicate | None = None
    group_by: list[str] = field(default_factory=list)
    having: Predicate | None = None
    order_by: list[tuple[str, bool]] = field(default_factory=list)  # (col, desc)
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)

"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


class SqlError(ReproError):
    """Raised on malformed SQL."""


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC", "DESC",
    "AND", "OR", "NOT", "JOIN", "USING", "AS", "BETWEEN", "DISTINCT",
    "HAVING", "SUM", "COUNT", "AVG", "MIN", "MAX",
    "ON", "LEFT", "OUTER", "INNER", "CROSS", "EXISTS", "IN", "LIKE",
    "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "INTERVAL", "LIMIT",
    "UNION", "ALL", "EXCEPT", "EXTRACT", "SUBSTRING", "FOR",
    "YEAR", "MONTH", "DAY",
}

SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", ",", "*", "+", "-", "/",
           "=", "<", ">")


@dataclass(frozen=True)
class Token:
    kind: str      # 'kw' | 'ident' | 'number' | 'string' | 'symbol' | 'eof'
    value: str
    pos: int

    def __repr__(self):
        return f"Token({self.kind}:{self.value!r}@{self.pos})"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # string literal
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SqlError(f"unterminated string at {i}")
            tokens.append(Token("string", text[i + 1:j], i))
            i = j + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("kw", word.upper(), i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        # symbols (longest match first)
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("symbol", sym, i))
                i += len(sym)
                break
        else:
            raise SqlError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", "", n))
    return tokens

"""Binder: SQL AST -> logical plan.

Lowers a parsed :class:`Query` into the operator pipeline the rest of the
package optimizes and executes:

    source -> SELECT(where) -> JOINs -> ARITH(computed exprs)
           -> AGGREGATE(group by + aggs) -> SORT(order by) -> PROJECT

Only the operators the query needs are emitted, so a plain filtered scan
stays a fusable SELECT chain.
"""

from __future__ import annotations

from ..plans.plan import Plan, PlanNode
from ..ra.arithmetic import AggSpec
from ..ra.expr import Field
from .ast import Query, SelectItem
from .lexer import SqlError
from .parser import parse

#: default selectivity assumed per WHERE conjunct when no hint is given
DEFAULT_SELECTIVITY = 0.5


def to_plan(query: Query,
            row_nbytes: dict[str, int] | None = None,
            selectivity: float = DEFAULT_SELECTIVITY) -> Plan:
    """Lower a parsed query to a plan.

    ``row_nbytes`` optionally maps table name -> bytes/row for the timing
    annotations (defaults to 16 B for the driver, 8 B for joined tables).
    """
    if (len(query.tables) > 1 or query.limit is not None
            or query.set_op is not None
            or any(t.subquery is not None or t.alias for t in query.tables)
            or any(j.on is not None or j.kind != "inner" or not j.using
                   for j in query.joins)):
        raise SqlError(
            "comma joins, ON/LEFT/CROSS joins, derived tables, LIMIT and "
            "set operations need the schema-aware frontend (repro.frontend)")
    if query.has_aggregates and any(
            not i.is_aggregate
            and not (isinstance(i.expr, Field) and i.expr.name in query.group_by)
            for i in query.items):
        raise SqlError("non-aggregate select items must be GROUP BY columns")

    widths = row_nbytes or {}
    plan = Plan(name=f"sql_{query.table}")
    node: PlanNode = plan.source(query.table,
                                 row_nbytes=widths.get(query.table, 16))

    if query.where is not None:
        node = plan.select(node, query.where, selectivity=selectivity,
                           name="where")

    for j, clause in enumerate(query.joins):
        right = plan.source(clause.table,
                            row_nbytes=widths.get(clause.table, 8))
        node = plan.join(node, right, on=clause.using,
                         name=f"join_{clause.table}")

    # computed expressions (and renamed fields) need an ARITH stage
    computed = {i.alias: i.expr for i in query.items
                if not i.is_aggregate and i.expr is not None
                and not (isinstance(i.expr, Field) and i.expr.name == i.alias)}
    agg_computed: dict[str, object] = {}
    aggs: dict[str, AggSpec] = {}
    for item in query.items:
        if not item.is_aggregate:
            continue
        agg = item.agg
        if agg.func == "count" and agg.argument is None:
            aggs[item.alias] = AggSpec("count")
            continue
        if isinstance(agg.argument, Field):
            aggs[item.alias] = AggSpec(agg.func, agg.argument.name)
        else:
            tmp = f"_arg_{item.alias}"
            agg_computed[tmp] = agg.argument
            aggs[item.alias] = AggSpec(agg.func, tmp)

    arith_outputs = {**computed, **agg_computed}
    if arith_outputs:
        node = plan.arith(node, arith_outputs, name="compute")

    if aggs:
        node = plan.aggregate(node, list(query.group_by), aggs,
                              n_groups=None, group_rate=0.01, name="aggregate")
        if query.having is not None:
            node = plan.select(node, query.having, selectivity=0.5,
                               name="having")
    elif query.group_by:
        raise SqlError("GROUP BY without aggregates is not supported")

    if query.order_by:
        cols = [c for c, _ in query.order_by]
        descending = query.order_by[0][1]
        if any(d != descending for _, d in query.order_by):
            raise SqlError("mixed ASC/DESC ordering is not supported")
        node = plan.sort(node, by=cols, descending=descending, name="order")

    # final projection to exactly the selected columns
    out_fields = [i.alias for i in query.items]
    available_equals_wanted = (
        not aggs and not computed
        and all(isinstance(i.expr, Field) and i.expr.name == i.alias
                for i in query.items))
    if aggs:
        wanted = list(query.group_by) + [a for a in aggs]
        node = plan.project(node, wanted, name="output")
    elif not available_equals_wanted or computed:
        node = plan.project(node, out_fields, name="output")
    elif query.items and not _selects_everything(query):
        node = plan.project(node, out_fields, name="output")

    if query.distinct:
        node = plan.unique(node, distinct_rate=0.5, name="distinct")
    return plan


def _selects_everything(query: Query) -> bool:
    return False  # '*' is not in the grammar; explicit columns only


def sql_to_plan(sql: str, row_nbytes: dict[str, int] | None = None,
                selectivity: float = DEFAULT_SELECTIVITY) -> Plan:
    """Parse + bind in one call."""
    return to_plan(parse(sql), row_nbytes=row_nbytes, selectivity=selectivity)

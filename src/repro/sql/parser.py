"""Recursive-descent SQL parser.

Grammar (the analytic subset; TPC-H class):

    statement  := query ((UNION ALL?|EXCEPT ALL?) query)?
    query      := SELECT DISTINCT? items FROM table_refs joins?
                  (WHERE pred)? (GROUP BY idents)? (HAVING pred)?
                  (ORDER BY order_items)? (LIMIT number)?
    table_refs := table_ref (',' table_ref)*
    table_ref  := ident (AS? ident)? | '(' query ')' AS? ident
    joins      := ((LEFT OUTER?|INNER|CROSS)? JOIN table_ref
                   (USING '(' ident ')' | ON pred)?)*
    items      := item (',' item)*
    item       := expr (AS ident)?
    pred       := or_pred
    or_pred    := and_pred (OR and_pred)*
    and_pred   := unary_pred (AND unary_pred)*
    unary_pred := NOT unary_pred | EXISTS '(' query ')'
                | '(' pred ')' | comparison
    comparison := expr ( cmp expr | BETWEEN expr AND expr
                       | NOT? LIKE string
                       | NOT? IN '(' (query | literals) ')' )
    expr       := term (('+'|'-') (term | interval))*
    term       := factor (('*'|'/') factor)*
    factor     := number | string | ident | date | case | extract
                | substring | agg | '(' (query | expr) ')' | '-' factor
    agg        := (SUM|AVG|MIN|MAX|COUNT) '(' DISTINCT? ('*' | expr) ')'
    date       := DATE 'yyyy-mm-dd'
    interval   := INTERVAL 'n' (DAY|MONTH|YEAR)
    case       := CASE (WHEN pred THEN expr)+ (ELSE expr)? END
    extract    := EXTRACT '(' YEAR FROM expr ')'
    substring  := SUBSTRING '(' expr FROM number FOR number ')'

DATE literals fold to int day-counts since 1992-01-01 (the repo-wide
integer-date epoch, see :mod:`repro.tpch.schema`); ``date +/- interval``
folds with real calendar arithmetic at parse time.
"""

from __future__ import annotations

import datetime

from ..ra.expr import (
    And, BinOp, Case, Compare, Const, Expr, Field, Func, InList, Like, Not,
    Or, Predicate,
)
from .ast import (
    Aggregate, AggExpr, Exists, InSubquery, JoinClause, Query, ScalarSubquery,
    SelectItem, TableRef,
)
from .lexer import SqlError, Token, tokenize

_CMP_MAP = {"=": "==", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}
_AGG_MAP = {"SUM": "sum", "COUNT": "count", "AVG": "mean",
            "MIN": "min", "MAX": "max"}

#: epoch of the integer date representation; must match schema.DATE_EPOCH
DATE_EPOCH_ISO = "1992-01-01"


def _parse_iso(text: str, pos: int) -> datetime.date:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        raise SqlError(f"malformed date literal {text!r} at {pos}") from None


def _date_days(date: datetime.date) -> int:
    return (date - datetime.date.fromisoformat(DATE_EPOCH_ISO)).days


def _add_months(date: datetime.date, months: int) -> datetime.date:
    base = date.year * 12 + (date.month - 1) + months
    return date.replace(year=base // 12, month=base % 12 + 1)


class _Interval:
    """A parsed INTERVAL literal, only meaningful next to a DATE literal."""

    def __init__(self, amount: int, unit: str):
        self.amount = amount
        self.unit = unit  # 'DAY' | 'MONTH' | 'YEAR'

    def shift(self, date: datetime.date, sign: int) -> datetime.date:
        if self.unit == "DAY":
            return date + datetime.timedelta(days=sign * self.amount)
        months = self.amount * (12 if self.unit == "YEAR" else 1)
        return _add_months(date, sign * months)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        # identity map Const -> datetime.date for folded DATE literals, so
        # +/- INTERVAL can shift them with calendar arithmetic
        self._dates: dict[int, datetime.date] = {}

    # -- token helpers -------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value or kind
            raise SqlError(f"expected {want!r}, got {got.value!r} at {got.pos}")
        return tok

    # -- grammar -----------------------------------------------------------------
    def parse_statement(self) -> Query:
        query = self.parse_query()
        op = None
        if self.accept("kw", "UNION"):
            op = "union_all" if self.accept("kw", "ALL") else "union"
        elif self.accept("kw", "EXCEPT"):
            op = "except_all" if self.accept("kw", "ALL") else "except"
        if op is not None:
            query.set_op = (op, self.parse_statement())
        return query

    def parse_query(self) -> Query:
        self.expect("kw", "SELECT")
        distinct = self.accept("kw", "DISTINCT") is not None
        items = [self.parse_item()]
        while self.accept("symbol", ","):
            items.append(self.parse_item())
        self.expect("kw", "FROM")
        tables = [self.parse_table_ref()]
        while self.accept("symbol", ","):
            tables.append(self.parse_table_ref())

        joins: list[JoinClause] = []
        while True:
            kind = None
            if self.accept("kw", "JOIN"):
                kind = "inner"
            elif self.accept("kw", "LEFT"):
                self.accept("kw", "OUTER")
                self.expect("kw", "JOIN")
                kind = "left"
            elif self.accept("kw", "INNER"):
                self.expect("kw", "JOIN")
                kind = "inner"
            elif self.accept("kw", "CROSS"):
                self.expect("kw", "JOIN")
                kind = "cross"
            else:
                break
            ref = self.parse_table_ref()
            using, on = "", None
            if self.accept("kw", "USING"):
                self.expect("symbol", "(")
                using = self.expect("ident").value
                self.expect("symbol", ")")
            elif self.accept("kw", "ON"):
                on = self.parse_pred()
            elif kind != "cross":
                got = self.peek()
                raise SqlError(
                    f"JOIN needs USING or ON, got {got.value!r} at {got.pos}")
            joins.append(JoinClause(table=ref.table, using=using, kind=kind,
                                    alias=ref.alias, on=on,
                                    subquery=ref.subquery))

        where = None
        if self.accept("kw", "WHERE"):
            where = self.parse_pred()

        group_by: list[str] = []
        if self.accept("kw", "GROUP"):
            self.expect("kw", "BY")
            group_by.append(self.expect("ident").value)
            while self.accept("symbol", ","):
                group_by.append(self.expect("ident").value)

        having = None
        if self.accept("kw", "HAVING"):
            if not group_by:
                raise SqlError("HAVING requires GROUP BY")
            having = self.parse_pred()

        order_by: list[tuple[str, bool]] = []
        if self.accept("kw", "ORDER"):
            self.expect("kw", "BY")
            order_by.append(self.parse_order_item())
            while self.accept("symbol", ","):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept("kw", "LIMIT"):
            tok = self.expect("number")
            if "." in tok.value:
                raise SqlError(f"LIMIT needs an integer at {tok.pos}")
            limit = int(tok.value)

        return Query(items=items, table=tables[0].name, joins=joins,
                     where=where, group_by=group_by, having=having,
                     order_by=order_by, distinct=distinct, tables=tables,
                     limit=limit)

    def parse_table_ref(self) -> TableRef:
        if self.accept("symbol", "("):
            sub = self.parse_query()
            self.expect("symbol", ")")
            self.accept("kw", "AS")
            alias = self.expect("ident").value
            return TableRef(table=alias, alias=alias, subquery=sub)
        name = self.expect("ident").value
        alias = None
        # aliases require AS: a bare trailing identifier stays a syntax
        # error (``FROM t trailing``), as the original grammar promised
        if self.accept("kw", "AS"):
            alias = self.expect("ident").value
        return TableRef(table=name, alias=alias)

    def parse_order_item(self) -> tuple[str, bool]:
        col = self.expect("ident").value
        desc = False
        if self.accept("kw", "DESC"):
            desc = True
        else:
            self.accept("kw", "ASC")
        return (col, desc)

    def parse_item(self) -> SelectItem:
        expr = self.parse_expr()
        if isinstance(expr, AggExpr):
            alias = self._alias(default=f"{expr.func}_{self.pos}")
            return SelectItem(alias=alias, agg=Aggregate(
                expr.func, expr.argument, expr.distinct))
        default = expr.name if isinstance(expr, Field) else f"expr_{self.pos}"
        alias = self._alias(default=default)
        return SelectItem(alias=alias, expr=expr)

    def _alias(self, default: str) -> str:
        if self.accept("kw", "AS"):
            return self.expect("ident").value
        return default

    # predicates ----------------------------------------------------------------
    def parse_pred(self) -> Predicate:
        left = self.parse_and_pred()
        while self.accept("kw", "OR"):
            left = Or(left, self.parse_and_pred())
        return left

    def parse_and_pred(self) -> Predicate:
        left = self.parse_unary_pred()
        while self.accept("kw", "AND"):
            left = And(left, self.parse_unary_pred())
        return left

    def parse_unary_pred(self) -> Predicate:
        if self.accept("kw", "NOT"):
            return Not(self.parse_unary_pred())
        if self.accept("kw", "EXISTS"):
            self.expect("symbol", "(")
            sub = self.parse_query()
            self.expect("symbol", ")")
            return Exists(sub)
        mark = self.pos
        if self.accept("symbol", "("):
            # could be a parenthesized predicate or expression; try predicate
            try:
                inner = self.parse_pred()
                self.expect("symbol", ")")
                return inner
            except SqlError:
                self.pos = mark  # fall back to comparison parsing
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_expr()
        if self.accept("kw", "BETWEEN"):
            lo = self.parse_expr()
            self.expect("kw", "AND")
            hi = self.parse_expr()
            return And(Compare(">=", left, lo), Compare("<=", left, hi))
        negated = False
        if self.accept("kw", "NOT"):
            negated = True
            tok = self.peek()
            if not (tok.kind == "kw" and tok.value in ("LIKE", "IN")):
                raise SqlError(f"expected LIKE or IN after NOT at {tok.pos}")
        if self.accept("kw", "LIKE"):
            pat = self.expect("string").value
            pred: Predicate = Like(left, pat)
            return Not(pred) if negated else pred
        if self.accept("kw", "IN"):
            pred = self.parse_in_rhs(left)
            return Not(pred) if negated else pred
        tok = self.peek()
        if tok.kind == "symbol" and tok.value in _CMP_MAP:
            self.next()
            right = self.parse_expr()
            return Compare(_CMP_MAP[tok.value], left, right)
        raise SqlError(f"expected a comparison at {tok.pos}")

    def parse_in_rhs(self, left: Expr) -> Predicate:
        self.expect("symbol", "(")
        if self.peek().kind == "kw" and self.peek().value == "SELECT":
            sub = self.parse_query()
            self.expect("symbol", ")")
            return InSubquery(left, sub)
        values = [self.parse_literal()]
        while self.accept("symbol", ","):
            values.append(self.parse_literal())
        self.expect("symbol", ")")
        return InList(left, tuple(values))

    def parse_literal(self):
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            return float(tok.value) if "." in tok.value else int(tok.value)
        if tok.kind == "string":
            self.next()
            return tok.value
        raise SqlError(f"expected a literal at {tok.pos}")

    # expressions ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            if self.accept("symbol", "+"):
                sign = 1
            elif self.accept("symbol", "-"):
                sign = -1
            else:
                return left
            if self.peek().kind == "kw" and self.peek().value == "INTERVAL":
                left = self.fold_interval(left, sign)
            else:
                left = BinOp("+" if sign > 0 else "-", left, self.parse_term())

    def fold_interval(self, left: Expr, sign: int) -> Expr:
        tok = self.expect("kw", "INTERVAL")
        amount_tok = self.expect("string")
        try:
            amount = int(amount_tok.value)
        except ValueError:
            raise SqlError(
                f"malformed INTERVAL amount at {amount_tok.pos}") from None
        unit_tok = self.next()
        if unit_tok.value not in ("DAY", "MONTH", "YEAR"):
            raise SqlError(f"expected DAY, MONTH or YEAR at {unit_tok.pos}")
        date = self._dates.get(id(left))
        if date is None:
            raise SqlError(
                f"INTERVAL arithmetic needs a DATE literal operand at {tok.pos}")
        shifted = _Interval(amount, unit_tok.value).shift(date, sign)
        const = Const(_date_days(shifted))
        self._dates[id(const)] = shifted
        return const

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            if self.accept("symbol", "*"):
                left = BinOp("*", left, self.parse_factor())
            elif self.accept("symbol", "/"):
                left = BinOp("/", left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            value = float(tok.value) if "." in tok.value else int(tok.value)
            return Const(value)
        if tok.kind == "string":
            self.next()
            return Const(tok.value)
        if tok.kind == "ident":
            self.next()
            return Field(tok.value)
        if tok.kind == "kw" and tok.value in _AGG_MAP:
            return self.parse_agg()
        if self.accept("kw", "DATE"):
            lit = self.expect("string")
            date = _parse_iso(lit.value, lit.pos)
            const = Const(_date_days(date))
            self._dates[id(const)] = date
            return const
        if self.accept("kw", "CASE"):
            return self.parse_case()
        if self.accept("kw", "EXTRACT"):
            self.expect("symbol", "(")
            self.expect("kw", "YEAR")
            self.expect("kw", "FROM")
            arg = self.parse_expr()
            self.expect("symbol", ")")
            return Func("year", arg, meta=DATE_EPOCH_ISO)
        if self.accept("kw", "SUBSTRING"):
            self.expect("symbol", "(")
            arg = self.parse_expr()
            self.expect("kw", "FROM")
            start = int(self.expect("number").value)
            self.expect("kw", "FOR")
            length = int(self.expect("number").value)
            self.expect("symbol", ")")
            return Func("substring", arg, meta=(start, length))
        if self.accept("symbol", "("):
            if self.peek().kind == "kw" and self.peek().value == "SELECT":
                sub = self.parse_query()
                self.expect("symbol", ")")
                return ScalarSubquery(sub)
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        if self.accept("symbol", "-"):
            return BinOp("-", Const(0), self.parse_factor())
        raise SqlError(f"unexpected token {tok.value!r} at {tok.pos}")

    def parse_agg(self) -> AggExpr:
        tok = self.next()
        func = _AGG_MAP[tok.value]
        self.expect("symbol", "(")
        distinct = self.accept("kw", "DISTINCT") is not None
        if func == "count" and not distinct and self.accept("symbol", "*"):
            arg = None
        else:
            arg = self.parse_expr()
        self.expect("symbol", ")")
        if distinct and func != "count":
            raise SqlError(f"DISTINCT aggregates support COUNT only, "
                           f"got {tok.value} at {tok.pos}")
        func = "count_distinct" if distinct else func
        return AggExpr(func, arg)

    def parse_case(self) -> Case:
        whens = []
        while self.accept("kw", "WHEN"):
            pred = self.parse_pred()
            self.expect("kw", "THEN")
            whens.append((pred, self.parse_expr()))
        if not whens:
            got = self.peek()
            raise SqlError(f"CASE needs at least one WHEN at {got.pos}")
        default: Expr = Const(0)
        if self.accept("kw", "ELSE"):
            default = self.parse_expr()
        self.expect("kw", "END")
        return Case(tuple(whens), default)


def parse(sql: str) -> Query:
    """Parse a SQL string into a :class:`Query` (with any set operation)."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_statement()
    parser.expect("eof")
    return query

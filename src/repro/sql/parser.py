"""Recursive-descent SQL parser.

Grammar (the analytic subset):

    query      := SELECT items FROM ident joins? (WHERE pred)?
                  (GROUP BY idents)? (ORDER BY order_items)?
    items      := item (',' item)*
    item       := (agg | expr) (AS ident)?
    agg        := (SUM|AVG|MIN|MAX) '(' expr ')' | COUNT '(' '*' | expr ')'
    joins      := (JOIN ident USING '(' ident ')')*
    pred       := or_pred
    or_pred    := and_pred (OR and_pred)*
    and_pred   := unary_pred (AND unary_pred)*
    unary_pred := NOT unary_pred | '(' pred ')' | comparison
    comparison := expr (cmp expr | BETWEEN expr AND expr)
    expr       := term (('+'|'-') term)*
    term       := factor (('*'|'/') factor)*
    factor     := number | string | ident | '(' expr ')' | '-' factor
"""

from __future__ import annotations

from ..ra.expr import And, BinOp, Compare, Const, Expr, Field, Not, Or, Predicate
from .ast import Aggregate, JoinClause, Query, SelectItem
from .lexer import SqlError, Token, tokenize

_CMP_MAP = {"=": "==", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}
_AGG_MAP = {"SUM": "sum", "COUNT": "count", "AVG": "mean",
            "MIN": "min", "MAX": "max"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value or kind
            raise SqlError(f"expected {want!r}, got {got.value!r} at {got.pos}")
        return tok

    # -- grammar -----------------------------------------------------------------
    def parse_query(self) -> Query:
        self.expect("kw", "SELECT")
        distinct = self.accept("kw", "DISTINCT") is not None
        items = [self.parse_item()]
        while self.accept("symbol", ","):
            items.append(self.parse_item())
        self.expect("kw", "FROM")
        table = self.expect("ident").value

        joins: list[JoinClause] = []
        while self.accept("kw", "JOIN"):
            jt = self.expect("ident").value
            self.expect("kw", "USING")
            self.expect("symbol", "(")
            col = self.expect("ident").value
            self.expect("symbol", ")")
            joins.append(JoinClause(table=jt, using=col))

        where = None
        if self.accept("kw", "WHERE"):
            where = self.parse_pred()

        group_by: list[str] = []
        if self.accept("kw", "GROUP"):
            self.expect("kw", "BY")
            group_by.append(self.expect("ident").value)
            while self.accept("symbol", ","):
                group_by.append(self.expect("ident").value)

        having = None
        if self.accept("kw", "HAVING"):
            if not group_by:
                raise SqlError("HAVING requires GROUP BY")
            having = self.parse_pred()

        order_by: list[tuple[str, bool]] = []
        if self.accept("kw", "ORDER"):
            self.expect("kw", "BY")
            order_by.append(self.parse_order_item())
            while self.accept("symbol", ","):
                order_by.append(self.parse_order_item())

        self.expect("eof")
        return Query(items=items, table=table, joins=joins, where=where,
                     group_by=group_by, having=having, order_by=order_by,
                     distinct=distinct)

    def parse_order_item(self) -> tuple[str, bool]:
        col = self.expect("ident").value
        desc = False
        if self.accept("kw", "DESC"):
            desc = True
        else:
            self.accept("kw", "ASC")
        return (col, desc)

    def parse_item(self) -> SelectItem:
        tok = self.peek()
        if tok.kind == "kw" and tok.value in _AGG_MAP:
            self.next()
            func = _AGG_MAP[tok.value]
            self.expect("symbol", "(")
            if func == "count" and self.accept("symbol", "*"):
                arg = None
            else:
                arg = self.parse_expr()
            self.expect("symbol", ")")
            alias = self._alias(default=f"{func}_{self.pos}")
            return SelectItem(alias=alias, agg=Aggregate(func, arg))
        expr = self.parse_expr()
        default = expr.name if isinstance(expr, Field) else f"expr_{self.pos}"
        alias = self._alias(default=default)
        return SelectItem(alias=alias, expr=expr)

    def _alias(self, default: str) -> str:
        if self.accept("kw", "AS"):
            return self.expect("ident").value
        return default

    # predicates ----------------------------------------------------------------
    def parse_pred(self) -> Predicate:
        left = self.parse_and_pred()
        while self.accept("kw", "OR"):
            left = Or(left, self.parse_and_pred())
        return left

    def parse_and_pred(self) -> Predicate:
        left = self.parse_unary_pred()
        while self.accept("kw", "AND"):
            left = And(left, self.parse_unary_pred())
        return left

    def parse_unary_pred(self) -> Predicate:
        if self.accept("kw", "NOT"):
            return Not(self.parse_unary_pred())
        mark = self.pos
        if self.accept("symbol", "("):
            # could be a parenthesized predicate or expression; try predicate
            try:
                inner = self.parse_pred()
                self.expect("symbol", ")")
                return inner
            except SqlError:
                self.pos = mark  # fall back to comparison parsing
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_expr()
        if self.accept("kw", "BETWEEN"):
            lo = self.parse_expr()
            self.expect("kw", "AND")
            hi = self.parse_expr()
            return And(Compare(">=", left, lo), Compare("<=", left, hi))
        tok = self.peek()
        if tok.kind == "symbol" and tok.value in _CMP_MAP:
            self.next()
            right = self.parse_expr()
            return Compare(_CMP_MAP[tok.value], left, right)
        raise SqlError(f"expected a comparison at {tok.pos}")

    # expressions ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            if self.accept("symbol", "+"):
                left = BinOp("+", left, self.parse_term())
            elif self.accept("symbol", "-"):
                left = BinOp("-", left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            if self.accept("symbol", "*"):
                left = BinOp("*", left, self.parse_factor())
            elif self.accept("symbol", "/"):
                left = BinOp("/", left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            value = float(tok.value) if "." in tok.value else int(tok.value)
            return Const(value)
        if tok.kind == "string":
            self.next()
            return Const(tok.value)
        if tok.kind == "ident":
            self.next()
            return Field(tok.value)
        if self.accept("symbol", "("):
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        if self.accept("symbol", "-"):
            return BinOp("-", Const(0), self.parse_factor())
        raise SqlError(f"unexpected token {tok.value!r} at {tok.pos}")


def parse(sql: str) -> Query:
    """Parse a SQL string into a :class:`Query`."""
    return _Parser(tokenize(sql)).parse_query()

"""A SQL front end for the plan layer.

Parses the analytic-query subset data warehousing needs -- filters, joins,
computed expressions, grouped aggregation, ordering -- into the logical
plans the fusion/fission compiler consumes:

>>> from repro.sql import sql_to_plan
>>> plan = sql_to_plan('''
...     SELECT returnflag, SUM(quantity) AS total
...     FROM lineitem
...     WHERE shipdate <= 2436 AND discount < 0.05
...     GROUP BY returnflag
...     ORDER BY returnflag
... ''')

The resulting plan runs through everything else in the package: the
fusion pass, the executor/strategies, and the functional runtime.
"""

from .ast import Aggregate, Query, SelectItem
from .lexer import SqlError, Token, tokenize
from .parser import parse
from .binder import sql_to_plan, to_plan

__all__ = ["Aggregate", "Query", "SelectItem", "SqlError", "Token",
           "tokenize", "parse", "sql_to_plan", "to_plan"]

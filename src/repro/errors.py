"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DeviceOOMError(ReproError):
    """Raised when a device-memory allocation exceeds the GPU capacity."""

    def __init__(self, requested: int, free: int, capacity: int):
        self.requested = int(requested)
        self.free = int(free)
        self.capacity = int(capacity)
        super().__init__(
            f"device OOM: requested {requested} B, free {free} B "
            f"of {capacity} B capacity"
        )


class SchedulingError(ReproError):
    """Raised for invalid stream / engine scheduling requests."""


class ScheduleInvariantError(SchedulingError):
    """Raised in strict (``check=True``) mode when a simulated schedule
    violates a device-model invariant (see :mod:`repro.validate`).

    Carries the structured :class:`repro.validate.Violation` list that the
    sanitizer produced in ``violations``.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        shown = "; ".join(str(v) for v in self.violations[:5])
        extra = len(self.violations) - 5
        if extra > 0:
            shown += f"; ... and {extra} more"
        super().__init__(
            f"schedule violates device-model invariants "
            f"({len(self.violations)} violation(s)): {shown}"
        )


class FaultError(ReproError):
    """Base for injected-platform-fault failures that exhausted recovery.

    Raised by the simulated engine when a command keeps failing after the
    retry budget (see :mod:`repro.faults`).  Carries the fault ``site``
    (the command tag) and how many ``attempts`` were made.
    """

    what = "command"

    def __init__(self, site: str, attempts: int):
        self.site = site
        self.attempts = int(attempts)
        super().__init__(
            f"{self.what} at {site!r} still failing after "
            f"{attempts} attempt(s); retry budget exhausted"
        )


class TransferFaultError(FaultError):
    """A PCIe transfer kept failing past its retry budget."""

    what = "transfer"


class KernelLaunchFaultError(FaultError):
    """A kernel launch kept failing past its retry budget."""

    what = "kernel launch"


class StreamStallError(FaultError):
    """A stream command kept stalling past the timeout on every re-issue."""

    what = "stalled stream command"


class DeviceLostError(FaultError):
    """A simulated device dropped out of the cluster mid-run.

    Unlike the transient faults above, a device loss is not retryable in
    place: the :class:`repro.cluster.ClusterExecutor` recovers by
    re-executing the lost device's shards on a surviving device (the top
    rung of the cluster degradation ladder, docs/CLUSTER.md).  Carries the
    ``device_id`` that was lost in addition to the fault ``site``.
    """

    what = "device"

    def __init__(self, site: str, attempts: int = 1, device_id: int = -1):
        self.device_id = int(device_id)
        super().__init__(site, attempts)


class AnalysisError(ReproError):
    """Raised when static analysis (:mod:`repro.analyze`) finds
    error-severity diagnostics and the caller asked for strict behavior
    (``report.raise_if_errors()``; the ``analyze=True`` pre-flight of the
    executor and serving layers).

    Carries the structured :class:`repro.analyze.Diagnostic` list in
    ``diagnostics``.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        shown = "; ".join(str(d) for d in self.diagnostics[:5])
        extra = len(self.diagnostics) - 5
        if extra > 0:
            shown += f"; ... and {extra} more"
        super().__init__(
            f"static analysis found {len(self.diagnostics)} error-severity "
            f"finding(s): {shown}"
        )


class FusionError(ReproError):
    """Raised when a fusion request violates fusibility rules."""


class PlanError(ReproError):
    """Raised for malformed logical plans."""


class RelationError(ReproError):
    """Raised for schema or shape violations on relations."""


class CompilerError(ReproError):
    """Raised by the compilerlite micro-compiler."""

"""Cost-based adaptive optimizer with a content-addressed plan cache.

The pieces (docs/OPTIMIZER.md):

* :mod:`~repro.optimizer.space` -- every execution strategy (single
  device, host baseline, N-device cluster shapes) behind one
  registration point;
* :mod:`~repro.optimizer.stats` -- per-table data statistics (rows,
  widths, group cardinalities, skew) with a content digest;
* :mod:`~repro.optimizer.costmodel` -- analytic roofline pricing from
  the simulator's calibration constants;
* :mod:`~repro.optimizer.optimizer` -- the chooser: priced, explainable
  :class:`Decision` per (query, stats, device count), simulator-refined;
* :mod:`~repro.optimizer.plancache` -- the bounded content-addressed
  LRU (plan hash + stats digest + calibration/cluster fingerprint) the
  executors and the serve path share;
* :mod:`~repro.optimizer.fingerprint` -- the canonical hashing under
  all of it.
"""

from .costmodel import CostEstimate, CostModel
from .fingerprint import (calibration_fingerprint, cluster_fingerprint,
                          digest, plan_fingerprint)
from .optimizer import Decision, Optimizer, PricedOption
from .plancache import PlanCache
from .space import (CPU_BASELINE, StrategyOption, StrategyTarget,
                    enumerate_options, register_enumerator)
from .stats import DataStats, TableStats

__all__ = [
    "CPU_BASELINE",
    "CostEstimate",
    "CostModel",
    "DataStats",
    "Decision",
    "Optimizer",
    "PlanCache",
    "PricedOption",
    "StrategyOption",
    "StrategyTarget",
    "TableStats",
    "calibration_fingerprint",
    "cluster_fingerprint",
    "digest",
    "enumerate_options",
    "plan_fingerprint",
    "register_enumerator",
]

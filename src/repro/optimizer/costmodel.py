"""The analytic cost model: closed-form prices over the calibration.

Prices every :class:`~repro.optimizer.space.StrategyOption` from the
same constants the simulator runs on (:mod:`repro.simgpu.calibration`)
plus :class:`~repro.optimizer.stats.DataStats` -- no simulation.  The
estimates are deliberately simple roofline-style sums (PCIe transfer
curves + memory-bandwidth-bound kernels + launch overhead + the CPU
calibration for host work), which buys two properties the tests pin
down:

* **monotone in row count** -- every term grows with bytes moved;
* **fast** -- the OPT5xx analyzer lints and option pruning can price a
  whole strategy space in microseconds.

The optimizer itself refines these estimates by *simulating* the
shortlisted candidates (the simulator is the authoritative price); the
analytic model's job is ordering and explanation, not ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.fusion import fuse_plan
from ..core.opmodels import out_row_nbytes
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..cluster.host import contended_device
from ..cpubase.select import cpu_select_time
from ..plans.distribute import DistributedPlan
from ..plans.plan import OpType, Plan
from ..runtime.sizes import estimate_sizes
from ..runtime.strategies import Strategy
from ..simgpu.device import DeviceSpec
from ..simgpu.pcie import Direction, HostMemory, PcieModel
from .space import StrategyOption
from .stats import DataStats

#: fraction of the smaller of (transfer, compute) a fission pipeline is
#: assumed to hide (segment ramp-up/down keeps it below 1.0)
_FISSION_OVERLAP = 0.85


@dataclass(frozen=True)
class CostEstimate:
    """Priced components of one strategy option (seconds)."""

    option: StrategyOption
    h2d_s: float = 0.0
    kernel_s: float = 0.0
    d2h_s: float = 0.0
    launch_s: float = 0.0
    #: intermediate host round trips (WITH_ROUND_TRIP only)
    roundtrip_s: float = 0.0
    #: exchange staging + merge on the cluster host lane
    exchange_s: float = 0.0
    #: CPU work (host baseline, host-mode suffixes)
    host_s: float = 0.0
    #: time hidden by pipelining (fission overlap); subtracted
    overlap_s: float = 0.0

    @property
    def total_s(self) -> float:
        return max(0.0, self.h2d_s + self.kernel_s + self.d2h_s
                   + self.launch_s + self.roundtrip_s + self.exchange_s
                   + self.host_s - self.overlap_s)

    def components(self) -> dict[str, float]:
        return {
            "h2d_s": self.h2d_s, "kernel_s": self.kernel_s,
            "d2h_s": self.d2h_s, "launch_s": self.launch_s,
            "roundtrip_s": self.roundtrip_s, "exchange_s": self.exchange_s,
            "host_s": self.host_s, "overlap_s": self.overlap_s,
        }


class CostModel:
    """Analytic strategy pricing over one device's calibration."""

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS):
        self.device = device or DeviceSpec()
        self.costs = costs
        self.pcie = PcieModel(self.device.calib.pcie)

    # ------------------------------------------------------------------
    def estimate(self, plan: Plan, stats: DataStats, option: StrategyOption,
                 dist: DistributedPlan | None = None) -> CostEstimate:
        """Price one option; ``dist`` (when the caller already distributed
        the plan) refines the cluster estimates with the real exchange
        and pre-aggregation specs."""
        if option.kind == "cpubase":
            return self._estimate_cpubase(plan, stats, option)
        if option.kind == "cluster":
            return self._estimate_cluster(plan, stats, option, dist)
        return self._estimate_single(plan, stats, option)

    # -- single device ---------------------------------------------------
    def _plan_shape(self, plan: Plan, stats: DataStats, fused: bool):
        """(sizes, per-region (in_bytes, out_bytes, is_barrier, n_in))."""
        sizes = estimate_sizes(plan, stats.source_rows())
        fusion = fuse_plan(plan, enable=fused)
        regions = []
        for region in fusion.regions:
            first = region.nodes[0]
            primary = first.inputs[0] if first.inputs else first
            n_in = sizes[primary.name]
            out_node = region.output_node
            regions.append((
                float(n_in) * out_row_nbytes(primary),
                float(sizes[out_node.name]) * out_row_nbytes(out_node),
                region.is_barrier_op,
                n_in,
            ))
        return sizes, fusion, regions

    def _estimate_single(self, plan: Plan, stats: DataStats,
                         option: StrategyOption,
                         pcie: PcieModel | None = None) -> CostEstimate:
        strategy = option.strategy
        pcie = pcie or self.pcie
        gpu = self.device.calib.gpu
        sizes, fusion, regions = self._plan_shape(
            plan, stats, strategy.uses_fusion)

        input_bytes = sum(float(sizes[s.name]) * out_row_nbytes(s)
                          for s in plan.sources())
        sink_names = {n.name for n in plan.sinks()}
        output_bytes = sum(float(sizes[n.name]) * out_row_nbytes(n)
                           for n in plan.sinks())
        mem = (HostMemory.PAGED if strategy is Strategy.WITH_ROUND_TRIP
               else HostMemory.PINNED)
        h2d_s = pcie.transfer_time(input_bytes, Direction.H2D, mem)
        d2h_s = pcie.transfer_time(output_bytes, Direction.D2H, mem)

        kernel_s = 0.0
        launches = 0
        roundtrip_s = 0.0
        for in_b, out_b, is_barrier, n_in in regions:
            touched = in_b + out_b
            if is_barrier:
                # multi-pass device sort/group: log2(n) sweeps over the data
                touched *= max(1.0, math.log2(max(float(n_in), 2.0)) / 4.0)
            kernel_s += touched / gpu.mem_bw
            launches += 1
            # every intermediate result bounces through host memory under
            # the paper's "with round trip" baseline (SS III-B)
            if (strategy is Strategy.WITH_ROUND_TRIP
                    and out_b > 0.0):
                roundtrip_s += (
                    pcie.transfer_time(out_b, Direction.D2H, HostMemory.PAGED)
                    + pcie.transfer_time(out_b, Direction.H2D,
                                         HostMemory.PAGED))
        launch_s = launches * gpu.kernel_launch_s

        overlap_s = 0.0
        if strategy.uses_fission:
            # the pipelined prefix hides transfer under compute (or vice
            # versa): the smaller of the two, discounted for segment ramp
            overlap_s = _FISSION_OVERLAP * min(h2d_s, kernel_s)

        return CostEstimate(
            option=option, h2d_s=h2d_s, kernel_s=kernel_s, d2h_s=d2h_s,
            launch_s=launch_s, roundtrip_s=roundtrip_s, overlap_s=overlap_s)

    # -- host baseline ---------------------------------------------------
    def _estimate_cpubase(self, plan: Plan, stats: DataStats,
                          option: StrategyOption) -> CostEstimate:
        sizes = estimate_sizes(plan, stats.source_rows())
        host_s = 0.0
        for node in plan.nodes:
            if node.op is OpType.SOURCE:
                continue
            prim = node.inputs[0] if node.inputs else node
            host_s += cpu_select_time(sizes[prim.name], out_row_nbytes(prim),
                                      calib=self.device.calib.cpu)
        return CostEstimate(option=option, host_s=host_s)

    # -- cluster ---------------------------------------------------------
    def _estimate_cluster(self, plan: Plan, stats: DataStats,
                          option: StrategyOption,
                          dist: DistributedPlan | None) -> CostEstimate:
        n = option.devices
        # the straggler shard: even split, or the heaviest value's share
        # when the data is skewed past 1/N (hash sends equal keys together)
        shard_frac = max(1.0 / n, min(1.0, stats.max_skew))
        shard_stats = stats.scaled(shard_frac)

        # per-shard local run on a *contended* device: staging bandwidth
        # capped at this device's share of the host (cluster/host.py)
        cdev = contended_device(self.device, n)
        local = CostModel(cdev, self.costs)._estimate_single(
            plan, shard_stats,
            StrategyOption(kind="single", strategy=option.strategy))

        exchange_s = 0.0
        if dist is not None and dist.suffix_mode == "exchange":
            ex = dist.exchange
            if option.preagg and dist.preagg is not None:
                pre = dist.preagg
                shard_rows = float(ex.est_rows) * shard_frac
                per_shard = pre.flushes(shard_rows) * pre.state_block_nbytes
                exchange_bytes = float(per_shard) * n
            else:
                exchange_bytes = float(ex.est_bytes)
            exchange_s = exchange_bytes / self.costs.host_gather_bw
        elif dist is not None and dist.suffix_mode == "host":
            sizes = estimate_sizes(plan, stats.source_rows())
            for node in plan.nodes:
                if node.name in dist.local_names or node.op is OpType.SOURCE:
                    continue
                prim = node.inputs[0] if node.inputs else node
                exchange_s += cpu_select_time(
                    sizes[prim.name], out_row_nbytes(prim),
                    calib=self.device.calib.cpu)

        # host merge of per-device results: tree pays log2(N) rounds on
        # the largest sender, flat pays the serial sum
        merge_unit = local.d2h_s
        merge = ((dist.merge if dist is not None else "tree") or "flat")
        if merge == "tree":
            merge_s = merge_unit * max(1.0, math.ceil(math.log2(n)))
        else:
            merge_s = merge_unit * n

        return CostEstimate(
            option=option, h2d_s=local.h2d_s, kernel_s=local.kernel_s,
            d2h_s=local.d2h_s, launch_s=local.launch_s,
            roundtrip_s=local.roundtrip_s, overlap_s=local.overlap_s,
            exchange_s=exchange_s + merge_s)

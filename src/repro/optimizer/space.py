"""The strategy space: every way this system can execute a plan.

Each execution strategy the repo has grown -- the paper's five
single-device strategies, the host (CPU) baseline, and the N-device
cluster shapes with their partition-scheme / pre-aggregation / merge
choices -- registers here behind one interface.  The optimizer
enumerates :func:`enumerate_options` and prices each
:class:`StrategyOption`; adding a future strategy means adding one
``@register_enumerator`` function, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..errors import PlanError
from ..plans.distribute import DistributedPlan, distribute_plan
from ..plans.plan import Plan
from ..runtime.strategies import Strategy
from .stats import DataStats

#: host-baseline pseudo-strategy label (the degradation ladder's last
#: rung, now a first-class priced option: the CPU side of the
#: CPU-vs-GPU crossover)
CPU_BASELINE = "cpubase"


@dataclass(frozen=True)
class StrategyOption:
    """One priceable execution strategy."""

    #: "single" (one device), "cpubase" (host interpreter), or "cluster"
    kind: str = "single"
    #: single-device strategy; the per-shard strategy for cluster options;
    #: None for the host baseline
    strategy: Strategy | None = Strategy.SERIAL
    devices: int = 1
    scheme: str = "hash"
    preagg: bool = True
    merge: str | None = None

    @property
    def label(self) -> str:
        if self.kind == "cpubase":
            return CPU_BASELINE
        if self.kind == "single":
            return self.strategy.value
        pre = "preagg" if self.preagg else "raw"
        return (f"cluster{self.devices}.{self.scheme}.{pre}"
                f".{self.strategy.value}")


@dataclass
class StrategyTarget:
    """A hand-forced strategy choice, as an analyzable unit (the OPT5xx
    lints price it against the enumerated space; see
    :mod:`repro.analyze.opt_lints`)."""

    plan: Plan
    source_rows: dict[str, int]
    #: the strategy the caller forced (a :class:`Strategy` or "cpubase")
    strategy: Strategy | str = Strategy.SERIAL

    @property
    def forced_label(self) -> str:
        return (self.strategy if isinstance(self.strategy, str)
                else self.strategy.value)


@dataclass
class EnumContext:
    """What an enumerator may look at."""

    plan: Plan
    stats: DataStats
    max_devices: int = 1
    schemes: tuple[str, ...] = ("hash",)
    include_cpubase: bool = True
    #: memoized distribution attempts: devices -> DistributedPlan or None
    _dists: dict[int, DistributedPlan | None] = field(default_factory=dict)

    def distributable(self, devices: int) -> DistributedPlan | None:
        """The plan's distribution at ``devices`` shards, or None when the
        rewrite rejects the shape (unsupported plan for this space)."""
        if devices not in self._dists:
            try:
                self._dists[devices] = distribute_plan(
                    self.plan, self.stats.source_rows(), devices)
            except (PlanError, KeyError, ValueError):
                self._dists[devices] = None
        return self._dists[devices]


Enumerator = Callable[[EnumContext], Iterable[StrategyOption]]

_ENUMERATORS: list[Enumerator] = []


def register_enumerator(fn: Enumerator) -> Enumerator:
    """Register a strategy family (the single registration point every
    future strategy uses)."""
    _ENUMERATORS.append(fn)
    return fn


@register_enumerator
def _single_device(ctx: EnumContext) -> Iterator[StrategyOption]:
    """The paper's strategy set on one device (SS III-B/C, SS IV)."""
    for strategy in (Strategy.SERIAL, Strategy.FUSED, Strategy.FISSION,
                     Strategy.FUSED_FISSION, Strategy.WITH_ROUND_TRIP):
        yield StrategyOption(kind="single", strategy=strategy)


@register_enumerator
def _host_baseline(ctx: EnumContext) -> Iterator[StrategyOption]:
    """The CPU interpreter: the Shanbhag-style crossover's other side --
    small inputs never amortize the PCIe round trip."""
    if ctx.include_cpubase:
        yield StrategyOption(kind="cpubase", strategy=None)


@register_enumerator
def _cluster(ctx: EnumContext) -> Iterator[StrategyOption]:
    """N-device shapes: power-of-two device counts x partition scheme x
    exchange-vs-preagg, gated on the distribution rewrite accepting the
    plan shape."""
    devices = 2
    while devices <= ctx.max_devices:
        dist = ctx.distributable(devices)
        if dist is not None:
            for scheme in ctx.schemes:
                yield StrategyOption(
                    kind="cluster", strategy=Strategy.FUSED_FISSION,
                    devices=devices, scheme=scheme, preagg=True)
                if dist.suffix_mode == "exchange" and dist.preagg is not None:
                    # pre-agg actually applies here, so raw exchange is a
                    # genuinely different (and priceable) choice
                    yield StrategyOption(
                        kind="cluster", strategy=Strategy.FUSED_FISSION,
                        devices=devices, scheme=scheme, preagg=False)
        devices *= 2


def enumerate_from(ctx: EnumContext) -> list[StrategyOption]:
    """Every registered strategy applicable under ``ctx`` (the optimizer
    passes its own context so distribution attempts are shared with
    pricing)."""
    out: list[StrategyOption] = []
    for fn in _ENUMERATORS:
        out.extend(fn(ctx))
    return out


def enumerate_options(plan: Plan, stats: DataStats, max_devices: int = 1,
                      schemes: tuple[str, ...] = ("hash",),
                      include_cpubase: bool = True) -> list[StrategyOption]:
    """Every registered strategy applicable to (plan, stats, devices)."""
    return enumerate_from(EnumContext(
        plan=plan, stats=stats, max_devices=max_devices,
        schemes=schemes, include_cpubase=include_cpubase))

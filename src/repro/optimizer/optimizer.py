"""The chooser: price every strategy, pick one, explain it, cache it.

:meth:`Optimizer.choose` enumerates the registered strategy space
(:mod:`repro.optimizer.space`), prices each option twice -- the analytic
model for ordering/explanation, then (by default) the calibrated
simulator itself for the authoritative makespan -- and returns a
:class:`Decision` carrying every candidate's price, so callers can ask
not just *what* was chosen but *why* and *what it beat*.

Decisions are content-addressed: the cache key is plan hash + stats
digest + calibration fingerprint + cluster shape, so a repeat query
skips enumeration and simulation entirely, and any change to the data
stats or the platform re-prices from scratch.

Tie-breaking prefers the *simpler* strategy (serial < fused < fission <
fused+fission < round-trip < host < cluster): when pipelining or devices
buy nothing, the optimizer should say so by picking the plain plan.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..errors import DeviceOOMError, FaultError, PlanError
from ..plans.plan import Plan
from ..runtime.executor import Executor, RunResult
from ..runtime.strategies import ExecutionConfig, Strategy
from ..simgpu.device import DeviceSpec
from .costmodel import CostEstimate, CostModel
from .fingerprint import (calibration_fingerprint, cluster_fingerprint,
                          plan_fingerprint)
from .plancache import PlanCache
from .space import EnumContext, StrategyOption, enumerate_from
from .stats import DataStats

#: tie-break order: simpler strategies win equal prices
_RANK = {
    Strategy.SERIAL: 0, Strategy.FUSED: 1, Strategy.FISSION: 2,
    Strategy.FUSED_FISSION: 3, Strategy.WITH_ROUND_TRIP: 4,
}


def _rank(option: StrategyOption) -> int:
    if option.kind == "single":
        return _RANK[option.strategy]
    if option.kind == "cpubase":
        return 5
    return 6 + option.devices


@dataclass(frozen=True)
class PricedOption:
    """One candidate with its analytic and (optionally) simulated price."""

    option: StrategyOption
    est: CostEstimate
    #: the simulator's authoritative makespan; None when pricing was
    #: analytic-only (``simulate=False``) or the option was infeasible
    sim_makespan_s: float | None = None
    feasible: bool = True
    notes: tuple[str, ...] = ()

    @property
    def price_s(self) -> float:
        """What the chooser compares: simulated when available."""
        if self.sim_makespan_s is not None:
            return self.sim_makespan_s
        return self.est.total_s

    @property
    def label(self) -> str:
        return self.option.label


@dataclass
class Decision:
    """A priced, explainable strategy choice for (plan, stats, devices)."""

    plan_name: str
    plan_fp: str
    stats_digest: str
    calibration_fp: str
    max_devices: int
    chosen: PricedOption
    #: every candidate, feasible first, each tier sorted by price
    candidates: tuple[PricedOption, ...]
    simulated: bool = True
    cache_key: str = ""
    cache_hit: bool = False

    # ------------------------------------------------------------------
    def ranked(self) -> list[PricedOption]:
        """Feasible candidates, cheapest first."""
        return sorted((c for c in self.candidates if c.feasible),
                      key=lambda c: (c.price_s, _rank(c.option)))

    def rejected(self, n: int = 2) -> list[PricedOption]:
        """The best `n` feasible candidates the chooser did not pick."""
        out = [c for c in self.ranked() if c.option != self.chosen.option]
        return out[:n]

    @property
    def best_price_s(self) -> float:
        ranked = self.ranked()
        return ranked[0].price_s if ranked else self.chosen.price_s

    def explain(self) -> str:
        """Human-readable pricing table (the ``--explain`` output)."""
        lines = [
            f"plan {self.plan_name}  stats {self.stats_digest[:12]}  "
            f"calibration {self.calibration_fp[:12]}  "
            f"max_devices {self.max_devices}"
            + ("  [cache hit]" if self.cache_hit else ""),
            f"{'':2s}{'strategy':28s} {'est (ms)':>10s} {'sim (ms)':>10s}"
            f"  notes",
        ]
        for cand in self.ranked() + [c for c in self.candidates
                                     if not c.feasible]:
            mark = "*" if cand.option == self.chosen.option else " "
            sim = ("" if cand.sim_makespan_s is None
                   else f"{cand.sim_makespan_s * 1e3:10.3f}")
            note = "; ".join(cand.notes)
            if not cand.feasible:
                note = ("infeasible" + (": " + note if note else ""))
            lines.append(f"{mark:2s}{cand.label:28s} "
                         f"{cand.est.total_s * 1e3:10.3f} {sim:>10s}  {note}")
        return "\n".join(lines)

    def summary(self) -> dict:
        """Deterministically-rounded dict (CI byte-compares the sorted
        JSON dump of this across reruns)."""
        out: dict[str, object] = {
            "optimizer.plan": self.plan_name,
            "optimizer.plan_fp": self.plan_fp,
            "optimizer.stats_digest": self.stats_digest,
            "optimizer.calibration_fp": self.calibration_fp,
            "optimizer.max_devices": self.max_devices,
            "optimizer.chosen": self.chosen.label,
            "optimizer.chosen_price_s": round(self.chosen.price_s, 9),
            "optimizer.simulated": int(self.simulated),
            "optimizer.candidates": len(self.candidates),
        }
        for cand in self.candidates:
            key = f"candidate.{cand.label}"
            out[f"{key}.est_s"] = round(cand.est.total_s, 9)
            out[f"{key}.feasible"] = int(cand.feasible)
            if cand.sim_makespan_s is not None:
                out[f"{key}.sim_s"] = round(cand.sim_makespan_s, 9)
        return out


class Optimizer:
    """Cost-based strategy chooser with a content-addressed decision cache."""

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 cache: PlanCache | None = None,
                 simulate: bool = True,
                 cluster_seed: int = 0,
                 pcie_sharers: int | None = None):
        self.device = device or DeviceSpec()
        self.costs = costs
        #: shared plan cache: decisions land here, and the executors this
        #: optimizer spawns reuse it for their compiled artifacts
        self.cache = cache
        #: refine analytic prices with the simulator (authoritative)
        self.simulate = simulate
        self.cluster_seed = cluster_seed
        self.pcie_sharers = pcie_sharers
        self.cost_model = CostModel(self.device, costs)

    # ------------------------------------------------------------------
    def choose(self, plan: Plan, source_rows: dict[str, int] | None = None,
               stats: DataStats | None = None, max_devices: int = 1,
               schemes: tuple[str, ...] = ("hash",),
               include_cpubase: bool = True) -> Decision:
        """Price the strategy space for (plan, stats) and pick a winner."""
        plan.validate()
        if stats is None:
            stats = DataStats.from_rows(plan, source_rows)

        plan_fp = plan_fingerprint(plan)
        calib_fp = calibration_fingerprint(self.device)
        stats_dg = stats.digest()
        cache_key = PlanCache.key(
            "decision", plan_fp, stats_dg, calib_fp,
            cluster_fingerprint(max_devices, "/".join(schemes),
                                self.cluster_seed, self.pcie_sharers),
            include_cpubase, self.simulate)
        if self.cache is not None:
            hit = self.cache.get(cache_key)
            if hit is not None:
                return dataclasses.replace(hit, cache_hit=True)

        ctx = EnumContext(plan=plan, stats=stats, max_devices=max_devices,
                          schemes=schemes, include_cpubase=include_cpubase)
        priced: list[PricedOption] = []
        for option in enumerate_from(ctx):
            dist = (ctx.distributable(option.devices)
                    if option.kind == "cluster" else None)
            est = self.cost_model.estimate(plan, stats, option, dist=dist)
            sim, feasible, notes = None, True, []
            verdict = self._memory_verdict(plan, plan_fp, stats_dg,
                                           calib_fp, option, stats)
            if verdict is not None and verdict.certain_oom:
                # hard-prune without simulating: the abstract interpreter
                # proved the dispatch would raise DeviceOOMError
                feasible = False
                notes = [f"MEM701 certain OOM: {verdict.detail}"]
            elif self.simulate:
                sim, feasible, notes = self._simulate(plan, stats, option)
            priced.append(PricedOption(
                option=option, est=est, sim_makespan_s=sim,
                feasible=feasible, notes=tuple(notes)))

        feasible = [c for c in priced if c.feasible]
        if not feasible:
            raise PlanError(
                f"no feasible execution strategy for plan {plan.name!r}")
        chosen = min(feasible, key=lambda c: (c.price_s, _rank(c.option)))
        decision = Decision(
            plan_name=plan.name, plan_fp=plan_fp, stats_digest=stats_dg,
            calibration_fp=calib_fp, max_devices=max_devices, chosen=chosen,
            candidates=tuple(priced), simulated=self.simulate,
            cache_key=cache_key)
        if self.cache is not None:
            self.cache.put(cache_key, decision)
        return decision

    # ------------------------------------------------------------------
    def _memory_verdict(self, plan: Plan, plan_fp: str, stats_dg: str,
                        calib_fp: str, option: StrategyOption,
                        stats: DataStats):
        """Static memory verdict for a single-device option, cached under
        ``absint:*`` keys (None for cluster/host options: hosts cannot
        OOM and cluster shards are priced by simulation)."""
        if option.kind != "single":
            return None
        from ..analyze.memory_check import check_strategy
        key = PlanCache.key("absint", plan_fp, stats_dg, calib_fp,
                            option.strategy.value)
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        verdict = check_strategy(plan, option.strategy,
                                 stats.source_rows(), self.device,
                                 stats=stats)
        if self.cache is not None:
            self.cache.put(key, verdict)
        return verdict

    # ------------------------------------------------------------------
    def _simulate(self, plan: Plan, stats: DataStats,
                  option: StrategyOption):
        """Authoritative price: actually run the option on the simulator.
        Returns (makespan | None, feasible, notes)."""
        rows = stats.source_rows()
        try:
            if option.kind == "cpubase":
                res = self._executor().run_cpubase(plan, rows)
                return res.makespan, True, []
            if option.kind == "single":
                res = self._executor().run(
                    plan, rows, ExecutionConfig(strategy=option.strategy))
                notes = ([f"{res.num_chunks} chunks"]
                         if res.num_chunks > 1 else [])
                return res.makespan, True, notes
            from ..cluster.executor import ClusterConfig, ClusterExecutor
            cx = ClusterExecutor(
                self.device, costs=self.costs, plan_cache=self.cache,
                config=ClusterConfig(
                    num_devices=option.devices, scheme=option.scheme,
                    seed=self.cluster_seed, strategy=option.strategy,
                    pcie_sharers=self.pcie_sharers, preagg=option.preagg,
                    merge=option.merge))
            res = cx.run(plan, rows)
            return res.makespan, True, []
        except (DeviceOOMError, PlanError, FaultError, KeyError,
                ValueError) as err:
            return None, False, [f"{type(err).__name__}: {err}"]

    def _executor(self, faults=None, check: bool = False,
                  analyze: bool = False) -> Executor:
        ex = Executor(self.device, costs=self.costs, check=check,
                      faults=faults, analyze=analyze,
                      plan_cache=self.cache)
        return ex

    # ------------------------------------------------------------------
    def run(self, plan: Plan, source_rows: dict[str, int] | None = None,
            stats: DataStats | None = None, max_devices: int = 1,
            schemes: tuple[str, ...] = ("hash",),
            include_cpubase: bool = True, faults=None, check: bool = False,
            analyze: bool = False):
        """Choose a strategy and execute it.

        Returns ``(result, decision)``; the result is a
        :class:`~repro.runtime.executor.RunResult` for single-device /
        host choices and a
        :class:`~repro.cluster.executor.ClusterRunResult` for cluster
        choices.  A run that degrades off the chosen strategy (fault
        ladder) *invalidates* the cached decision instead of pinning the
        failed strategy for future queries.
        """
        decision = self.choose(plan, source_rows, stats=stats,
                               max_devices=max_devices, schemes=schemes,
                               include_cpubase=include_cpubase)
        option = decision.chosen.option
        rows = source_rows if source_rows is not None else (
            stats.source_rows() if stats is not None else {})
        if option.kind == "cpubase":
            result: object = self._executor(
                faults=faults, check=check).run_cpubase(plan, rows)
        elif option.kind == "single":
            result = self._executor(faults=faults, check=check,
                                    analyze=analyze).run(
                plan, rows, ExecutionConfig(strategy=option.strategy))
        else:
            from ..cluster.executor import ClusterConfig, ClusterExecutor
            cx = ClusterExecutor(
                self.device, costs=self.costs, plan_cache=self.cache,
                config=ClusterConfig(
                    num_devices=option.devices, scheme=option.scheme,
                    seed=self.cluster_seed, strategy=option.strategy,
                    check=check, faults=faults, analyze=analyze,
                    pcie_sharers=self.pcie_sharers, preagg=option.preagg,
                    merge=option.merge))
            result = cx.run(plan, rows)
        degraded = getattr(result, "degraded_to", None)
        if degraded is None and hasattr(result, "shard_runs"):
            if any(r.degraded_to for r in result.shard_runs):
                degraded = "cluster-shard"
        if degraded is not None and self.cache is not None:
            # don't pin a strategy that just faulted its way down the
            # ladder: the next identical query re-prices from scratch
            self.cache.invalidate(decision.cache_key)
        return result, decision

"""Per-table data statistics the cost model prices against.

Two construction paths:

* :meth:`DataStats.from_rows` -- from annotated row counts only (the
  timing path's input), widths taken from the plan's source declarations;
* :meth:`DataStats.from_relations` -- observed from real relations
  (rows, widths, per-column distinct counts, and skew measured as the
  heaviest value's frequency share), subsuming what
  :mod:`repro.runtime.estimates` profiles.

``digest()`` is the stats component of every optimizer cache key: any
change in cardinality, width, group count, or skew re-keys the entry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.opmodels import out_row_nbytes
from ..plans.plan import OpType, Plan
from ..ra.relation import Relation
from .fingerprint import digest

#: cap on per-column distinct counting (full counting on huge relations
#: would defeat the point of cheap stats)
_DISTINCT_SAMPLE_ROWS = 1_000_000


@dataclass(frozen=True)
class TableStats:
    """Statistics of one source table."""

    rows: int
    row_nbytes: int = 4
    #: (column, distinct-count) pairs -- group cardinalities for the
    #: aggregate/exchange estimates; empty when unobserved
    distinct: tuple[tuple[str, int], ...] = ()
    #: heaviest single value's frequency share in the first key column
    #: (0.0 = unobserved/uniform, 1.0 = one value everywhere); prices
    #: the straggler shard under hash partitioning
    skew: float = 0.0

    @property
    def nbytes(self) -> float:
        return float(self.rows) * self.row_nbytes

    def distinct_of(self, column: str) -> int | None:
        for name, count in self.distinct:
            if name == column:
                return count
        return None


@dataclass(frozen=True)
class DataStats:
    """Immutable per-source statistics for one optimization call."""

    tables: tuple[tuple[str, TableStats], ...]

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_rows(plan: Plan, source_rows: dict[str, int] | None) -> "DataStats":
        """Annotation-only stats: rows from the caller, widths from the
        plan's source declarations, no distinct/skew observations."""
        rows = source_rows or {}
        tables = tuple(
            (src.name, TableStats(rows=int(rows.get(src.name, 0)),
                                  row_nbytes=out_row_nbytes(src)))
            for src in sorted(plan.sources(), key=lambda s: s.name))
        return DataStats(tables=tables)

    @staticmethod
    def from_relations(plan: Plan, sources: dict[str, Relation]) -> "DataStats":
        """Observed stats: per-column distinct counts and value skew
        measured on the real relations feeding the plan."""
        import numpy as np

        tables = []
        for src in sorted(plan.sources(), key=lambda s: s.name):
            rel = sources.get(src.name)
            if rel is None:
                tables.append((src.name, TableStats(
                    rows=0, row_nbytes=out_row_nbytes(src))))
                continue
            n = rel.num_rows
            distinct: list[tuple[str, int]] = []
            skew = 0.0
            for i, fld in enumerate(rel.fields):
                col = rel.column(fld)[:_DISTINCT_SAMPLE_ROWS]
                if not np.issubdtype(col.dtype, np.number):
                    continue
                _, counts = np.unique(col, return_counts=True)
                distinct.append((fld, int(len(counts))))
                if i == 0 and n > 0:
                    skew = float(counts.max()) / len(col)
            tables.append((src.name, TableStats(
                rows=n, row_nbytes=out_row_nbytes(src),
                distinct=tuple(distinct), skew=skew)))
        return DataStats(tables=tuple(tables))

    # -- views ----------------------------------------------------------
    def table(self, name: str) -> TableStats:
        for tname, ts in self.tables:
            if tname == name:
                return ts
        raise KeyError(name)

    def source_rows(self) -> dict[str, int]:
        """The ``{source: rows}`` mapping the executors take."""
        return {name: ts.rows for name, ts in self.tables}

    @property
    def total_rows(self) -> int:
        return sum(ts.rows for _, ts in self.tables)

    @property
    def max_skew(self) -> float:
        return max((ts.skew for _, ts in self.tables), default=0.0)

    def group_estimate(self, plan: Plan) -> int:
        """Estimated output group count of the plan's first aggregate,
        from observed distinct counts when available, else from the
        plan's own ``n_groups``/``group_rate`` annotations."""
        for node in plan.topological():
            if node.op is not OpType.AGGREGATE:
                continue
            group_by = node.params.get("group_by") or []
            est = 1
            found = False
            for col in group_by:
                for _, ts in self.tables:
                    d = ts.distinct_of(col)
                    if d is not None:
                        est *= d
                        found = True
                        break
            if found:
                return max(1, est)
            n_groups = node.params.get("n_groups")
            if n_groups:
                return int(n_groups)
        return 1

    def scaled(self, factor: float) -> "DataStats":
        """Same stats with every row count scaled (monotonicity probes)."""
        return DataStats(tables=tuple(
            (name, replace(ts, rows=max(0, int(ts.rows * factor))))
            for name, ts in self.tables))

    def digest(self) -> str:
        return digest("stats", self.tables)

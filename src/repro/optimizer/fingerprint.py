"""Content-addressed fingerprints for plans, stats, and platform config.

Everything the optimizer caches is keyed by sha256 over a *canonical*
rendering of the inputs: plan DAG structure (ops, edges, parameters,
annotations), data-stats digests, and the calibration constants of the
simulated platform.  Two semantically identical inputs always render to
the same string; any change to an op parameter, a selectivity annotation,
a calibration constant, or a cluster shape changes the digest.

The canonical form is intentionally repr-based, not pickle-based: it is
stable across processes and Python versions, human-inspectable when
debugging a surprising cache miss, and free of object identity.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

from ..plans.plan import Plan
from ..simgpu.device import DeviceSpec


def canonical(obj: Any) -> str:
    """A deterministic, identity-free rendering of ``obj``.

    Handles the value types that appear in plan parameters and platform
    config: scalars, strings, enums, containers (dicts sorted by key),
    dataclasses (by field), and plain objects (by ``__dict__``, sorted).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(x) for x in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return ("{" + ",".join(f"{canonical(k)}:{canonical(v)}"
                               for k, v in items) + "}")
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(f"{f.name}={canonical(getattr(obj, f.name))}"
                          for f in dataclasses.fields(obj))
        return f"{type(obj).__name__}({fields})"
    if hasattr(obj, "__dict__"):
        items = ",".join(f"{k}={canonical(v)}"
                         for k, v in sorted(vars(obj).items()))
        return f"{type(obj).__name__}({items})"
    return repr(obj)


def digest(*parts: Any) -> str:
    """sha256 hex digest over the canonical forms of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(canonical(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()


def plan_fingerprint(plan: Plan) -> str:
    """Hash of the plan DAG: ops, edges (by node name), parameters, and
    the cardinality annotations the timing model trusts."""
    items = []
    for node in plan.topological():
        items.append((
            node.op.value,
            node.name,
            tuple(inp.name for inp in node.inputs),
            node.selectivity,
            node.out_row_nbytes,
            node.params,
        ))
    return digest("plan", plan.name, items)


def calibration_fingerprint(device: DeviceSpec) -> str:
    """Hash of every calibration constant of a simulated device (GPU,
    PCIe, CPU) plus the device-level knobs (copy engines)."""
    return digest("calibration", device.calib, device.num_copy_engines)


def cluster_fingerprint(num_devices: int, scheme: str, seed: int,
                        pcie_sharers: int | None = None) -> str:
    """Hash of a cluster shape (ClusterSpec-equivalent identity)."""
    return digest("cluster", num_devices, scheme, seed, pcie_sharers)

"""The content-addressed compiled-plan cache.

A bounded LRU keyed by sha256 digests (:func:`repro.optimizer.fingerprint
.digest`) of plan hash + stats digest + calibration / cluster
fingerprints.  Three artifact families share one cache:

* ``decision:*`` -- whole optimizer decisions (strategy choice + prices),
* ``compiled:*`` -- the Executor's per-(plan, stats, strategy) size map
  and fusion result (skips re-planning on repeat runs),
* ``serve:*``    -- fully-priced serve dispatches (makespan + timeline),
  so a repeat batch skips planning, analysis, and simulation entirely.

Every entry stores a checksum of its value at ``put`` time; ``get``
re-verifies it, so a corrupted entry (bit-flip, in-place mutation by a
buggy caller) is *detected and treated as a miss*, never served.
Counters (hits / misses / evictions / invalidations / corruptions) feed
the serve metrics and the CI cache-hit-rate gate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from .fingerprint import canonical, digest


@dataclass
class _Entry:
    value: Any
    checksum: str


def _checksum(value: Any) -> str:
    return digest("entry", canonical(value))


class PlanCache:
    """Bounded LRU of content-addressed planning artifacts.

    **Ownership: process-private.**  The cache is plain in-process state --
    no locks, no shared memory -- so it must never be shared across
    processes.  The worker pool (docs/SERVING.md) gives every worker its
    own copy: counters and LRU eviction order then evolve independently
    per worker, which is correct (each worker sees only its shard's
    traffic) but means pooled hit-rates must be combined with
    :meth:`merge_stats`, never by summing or averaging the per-worker
    ``cache.hit_rate`` ratios (a 99%-hit worker with 10 lookups would
    swamp a 50%-hit worker with 10,000).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.corruptions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(*parts: Any) -> str:
        """Build a content-addressed key from fingerprint parts."""
        return digest(*parts)

    def get(self, key: str) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if _checksum(entry.value) != entry.checksum:
            # corruption: drop the entry and report a miss, never serve it
            del self._entries[key]
            self.corruptions += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def put(self, key: str, value: Any) -> None:
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = _Entry(value=value, checksum=_checksum(value))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry (e.g. after its strategy faulted and degraded)."""
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Deterministic counter snapshot (rounded for JSON byte-identity)."""
        return {
            "cache.size": len(self._entries),
            "cache.capacity": self.capacity,
            "cache.hits": self.hits,
            "cache.misses": self.misses,
            "cache.evictions": self.evictions,
            "cache.invalidations": self.invalidations,
            "cache.corruptions": self.corruptions,
            "cache.hit_rate": round(self.hit_rate, 6),
        }

    @classmethod
    def merge_stats(cls, parts: "list[dict]") -> dict:
        """Combine per-process ``stats()`` snapshots into one pooled view.

        Counts sum; ``cache.capacity`` sums too (the pool's total entry
        budget); ``cache.hit_rate`` is recomputed from the summed hit and
        miss counts, which weights every lookup equally regardless of
        which worker served it.
        """
        out = {
            "cache.size": 0, "cache.capacity": 0, "cache.hits": 0,
            "cache.misses": 0, "cache.evictions": 0,
            "cache.invalidations": 0, "cache.corruptions": 0,
        }
        for part in parts:
            for key in out:
                out[key] += part.get(key, 0)
        total = out["cache.hits"] + out["cache.misses"]
        out["cache.hit_rate"] = round(
            out["cache.hits"] / total if total else 0.0, 6)
        return out

    # test hook: deliberately corrupt an entry's stored value in place so
    # the checksum no longer matches (simulates storage rot)
    def _corrupt(self, key: str) -> None:
        entry = self._entries[key]
        entry.value = ("corrupted", entry.value)

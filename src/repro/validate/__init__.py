"""Correctness tooling: schedule sanitizer for the simulated device.

See :mod:`repro.validate.sanitizer` for the invariants checked and
``docs/VALIDATION.md`` for how to enable strict mode everywhere.
"""

from .cluster import validate_cluster
from .workers import validate_pool
from .sanitizer import (
    BYTE_ABS_TOL,
    BYTE_REL_TOL,
    EXCLUSIVE_ENGINES,
    TIME_EPS,
    ValidationReport,
    Violation,
    validate_run,
    validate_timeline,
)

__all__ = [
    "BYTE_ABS_TOL", "BYTE_REL_TOL", "EXCLUSIVE_ENGINES", "TIME_EPS",
    "ValidationReport", "Violation", "validate_run", "validate_timeline",
    "validate_cluster", "validate_pool",
]

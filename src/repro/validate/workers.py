"""Worker-pool sanitizer (docs/SERVING.md, "Worker pools").

Audits a *closed* :class:`~repro.workers.pool.WorkerPool` for the
exactly-once and sharding invariants the serving subsystem promises:

* **ack discipline** -- every dispatched id (outbox entry) was
  acknowledged exactly once: an unacked entry means a completion was
  dropped, a double-ack means one was processed twice;
* **outbox conservation** -- every dispatch attempt routed through the
  pool either recorded a new entry or hit an existing one
  (``attempts == recorded + hits``); nothing executed outside the
  outbox, nothing vanished;
* **tenant affinity** -- no tenant was split across workers within a
  batch epoch (the router's epoch pin; required in both ``hash`` and
  ``least-bytes`` modes);
* **dispatch coverage** -- every recorded sequence (batch index) appears
  in exactly one live worker's dispatch log (crash replay must restore
  or re-execute a dead worker's entries, never lose or duplicate them),
  and every worker's collect-time partial actually arrived;
* **replay conservation** -- each respawn replayed everything the dead
  worker owned (``restored + redispatched == expected``).

The pool is duck-typed (``outbox`` / ``router`` / ``partials`` /
``respawn_events`` / ``num_workers``), so this module imports nothing
from :mod:`repro.workers`.
"""

from __future__ import annotations

from typing import Any

from .sanitizer import ValidationReport, Violation


def _check_acks(pool: Any, report: ValidationReport) -> None:
    for entry in pool.outbox.entries.values():
        if entry.ack_count == 0:
            report.violations.append(Violation(
                "pool-ack",
                f"dispatch {entry.key.sequence} (tenant "
                f"{entry.key.tenant}) was recorded but never "
                f"acknowledged"))
        elif entry.ack_count > 1:
            report.violations.append(Violation(
                "pool-ack",
                f"dispatch {entry.key.sequence} (tenant "
                f"{entry.key.tenant}) acknowledged {entry.ack_count} "
                f"times; completions must be processed exactly once"))


def _check_conservation(pool: Any, report: ValidationReport) -> None:
    counters = pool.outbox.counters()
    attempts = counters["outbox.attempts"]
    recorded = counters["outbox.recorded"]
    hits = counters["outbox.hits"]
    if attempts != recorded + hits:
        report.violations.append(Violation(
            "pool-conservation",
            f"{attempts} dispatch attempt(s) but {recorded} recorded + "
            f"{hits} duplicate hit(s): every attempt must record or hit"))


def _check_tenant_affinity(pool: Any, report: ValidationReport) -> None:
    seen: dict[tuple[int, str], set[int]] = {}
    for a in pool.router.log:
        seen.setdefault((a.epoch, a.tenant), set()).add(a.worker)
    for (epoch, tenant), workers in sorted(seen.items()):
        if len(workers) > 1:
            report.violations.append(Violation(
                "pool-tenant-split",
                f"tenant {tenant} split across workers "
                f"{sorted(workers)} within batch epoch {epoch}"))


def _check_coverage(pool: Any, report: ValidationReport) -> None:
    if len(pool.partials) != pool.num_workers:
        got = sorted(p.worker for p in pool.partials)
        report.violations.append(Violation(
            "pool-coverage",
            f"collected partials from workers {got}, expected all "
            f"{pool.num_workers}"))
    owners: dict[int, list[int]] = {}
    for p in pool.partials:
        for rec in p.dispatches:
            owners.setdefault(rec.batch_idx, []).append(p.worker)
    for bidx, workers in sorted(owners.items()):
        if len(workers) > 1:
            report.violations.append(Violation(
                "pool-coverage",
                f"dispatch {bidx} logged by workers {sorted(workers)}; "
                f"each dispatch must live in exactly one worker's log"))
    recorded = {e.key.sequence for e in pool.outbox.entries.values()}
    missing = sorted(recorded - set(owners))
    if missing:
        report.violations.append(Violation(
            "pool-coverage",
            f"dispatch(es) {missing} recorded in the outbox but absent "
            f"from every worker's log (lost in a crash replay?)"))


def _check_replays(pool: Any, report: ValidationReport) -> None:
    for ev in pool.respawn_events:
        if ev.restored + ev.redispatched != ev.expected:
            report.violations.append(Violation(
                "pool-replay",
                f"worker {ev.worker} respawn replayed "
                f"{ev.restored} restored + {ev.redispatched} "
                f"re-dispatched of {ev.expected} owned entries"))


def validate_pool(pool: Any) -> ValidationReport:
    """Audit a closed worker pool; see the module docstring for rules."""
    report = ValidationReport()
    report.num_events = pool.outbox.attempts
    _check_acks(pool, report)
    _check_conservation(pool, report)
    _check_tenant_affinity(pool, report)
    _check_coverage(pool, report)
    _check_replays(pool, report)
    return report


__all__ = ["validate_pool"]

"""Schedule sanitizer: audits a :class:`~repro.simgpu.timeline.Timeline`
against the simulated C2070's concurrency envelope (paper SS IV-B).

The device model promises:

* one H2D copy engine, one D2H copy engine, one host "engine" -- never two
  overlapping events of the same kind on any of them;
* concurrently overlapping kernels share the SM pool and their granted SMs
  never exceed the device's SM count;
* commands within one stream execute in order, so events of one stream
  never overlap each other;
* every satisfied ``WaitEvent`` was preceded by its ``SignalEvent``;
* simulated time is sane: no negative durations, no events before t=0
  (time travel, e.g. a bad ``Timeline.extend(offset=...)``), no NaN/inf;
* transfers move actual data: zero-byte H2D/D2H events waste a copy
  engine for PCIe latency and are flagged;
* bytes are conserved: staged round trips move the same bytes out and
  back, and (via :func:`validate_run`) the total transferred bytes match
  the executor's size estimates.

Violations are reported structurally so callers can assert on them;
``raise_if_failed`` turns them into a
:class:`~repro.errors.ScheduleInvariantError` for strict mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..errors import ScheduleInvariantError
from ..simgpu.device import DeviceSpec
from ..simgpu.timeline import EventKind, Timeline, TimelineEvent

#: overlaps shorter than this (simulated seconds) are ignored -- sub-
#: nanosecond slop from float accumulation in ``Timeline.extend`` offsets
TIME_EPS = 1e-9

#: byte-conservation tolerance: relative slack (chunk fractions and
#: per-segment selectivity sums accumulate float error) plus a one-byte
#: absolute floor
BYTE_REL_TOL = 1e-3
BYTE_ABS_TOL = 1.0

#: event kinds that model an exclusive engine (one in flight at a time)
EXCLUSIVE_ENGINES = {
    EventKind.H2D: "H2D copy engine",
    EventKind.D2H: "D2H copy engine",
    EventKind.HOST: "host CPU",
}


@dataclass(frozen=True)
class Violation:
    """One invariant breach found in a timeline."""

    rule: str
    message: str
    events: tuple[TimelineEvent, ...] = ()

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


@dataclass
class ValidationReport:
    """Structured result of a sanitizer pass."""

    violations: list[Violation] = field(default_factory=list)
    num_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, list[Violation]]:
        out: dict[str, list[Violation]] = {}
        for v in self.violations:
            out.setdefault(v.rule, []).append(v)
        return out

    def merge(self, other: "ValidationReport") -> "ValidationReport":
        self.violations.extend(other.violations)
        self.num_events = max(self.num_events, other.num_events)
        return self

    def raise_if_failed(self) -> None:
        if self.violations:
            raise ScheduleInvariantError(self.violations)

    def summary(self) -> str:
        if self.ok:
            return f"schedule OK ({self.num_events} events, 0 violations)"
        lines = [f"schedule INVALID ({self.num_events} events, "
                 f"{len(self.violations)} violation(s)):"]
        for rule, vs in sorted(self.by_rule().items()):
            lines.append(f"  {rule}: {len(vs)}")
            for v in vs[:3]:
                lines.append(f"    - {v.message}")
            if len(vs) > 3:
                lines.append(f"    - ... and {len(vs) - 3} more")
        return "\n".join(lines)


def _fmt(ev: TimelineEvent) -> str:
    return (f"{ev.kind.value}:{ev.tag!r} [{ev.start:.6g}, {ev.end:.6g}) "
            f"stream {ev.stream}")


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------

def _check_event_sanity(events: list[TimelineEvent], out: list[Violation],
                        eps: float) -> None:
    for ev in events:
        if not (math.isfinite(ev.start) and math.isfinite(ev.end)):
            out.append(Violation(
                "non-finite-time",
                f"event has non-finite timestamps: {_fmt(ev)}", (ev,)))
            continue
        if ev.end < ev.start - eps:
            out.append(Violation(
                "negative-duration",
                f"event ends before it starts: {_fmt(ev)}", (ev,)))
        if ev.start < -eps:
            out.append(Violation(
                "time-travel",
                f"event starts before t=0 (bad extend offset?): {_fmt(ev)}",
                (ev,)))
        if ev.nbytes < 0:
            out.append(Violation(
                "negative-bytes",
                f"event moves negative bytes ({ev.nbytes}): {_fmt(ev)}",
                (ev,)))
        if ev.kind in (EventKind.H2D, EventKind.D2H) and ev.nbytes <= 0:
            out.append(Violation(
                "zero-byte-transfer",
                f"zero-byte transfer occupies a copy engine for PCIe "
                f"latency: {_fmt(ev)}", (ev,)))


def _overlap_sweep(events: list[TimelineEvent], rule: str, what: str,
                   out: list[Violation], eps: float) -> None:
    """Flag any strict overlap between events of one exclusive resource."""
    ordered = sorted(events, key=lambda e: (e.start, e.end))
    prev: TimelineEvent | None = None
    for ev in ordered:
        if ev.duration <= eps:
            continue  # instantaneous events cannot occupy an engine
        if prev is not None and ev.start < prev.end - eps:
            out.append(Violation(
                rule,
                f"two events overlap on {what}: "
                f"{_fmt(prev)} vs {_fmt(ev)}", (prev, ev)))
        if prev is None or ev.end > prev.end:
            prev = ev


def _check_exclusive_engines(timeline: Timeline, out: list[Violation],
                             eps: float) -> None:
    for kind, what in EXCLUSIVE_ENGINES.items():
        _overlap_sweep(timeline.filter(kind), "engine-overlap", what, out, eps)


def _check_stream_order(timeline: Timeline, out: list[Violation],
                        eps: float) -> None:
    by_stream: dict[int, list[TimelineEvent]] = {}
    for ev in timeline.events:
        by_stream.setdefault(ev.stream, []).append(ev)
    for stream, evs in sorted(by_stream.items()):
        _overlap_sweep(evs, "stream-overlap",
                       f"in-order stream {stream}", out, eps)


def _check_sm_capacity(timeline: Timeline, device: DeviceSpec,
                       out: list[Violation], eps: float) -> None:
    """Sum of granted SMs over concurrently running kernels <= SM pool."""
    kernels = [e for e in timeline.filter(EventKind.KERNEL)
               if e.sms > 0 and e.duration > eps]
    # sweep line: at equal timestamps, releases happen before grants
    points = ([(e.start, 1, e.sms, e) for e in kernels]
              + [(e.end, 0, -e.sms, e) for e in kernels])
    points.sort(key=lambda p: (p[0], p[1]))
    in_use = 0
    flagged: set[int] = set()
    for t, _, delta, ev in points:
        in_use += delta
        if delta > 0 and in_use > device.num_sms and id(ev) not in flagged:
            flagged.add(id(ev))
            out.append(Violation(
                "sm-capacity",
                f"concurrent kernels hold {in_use} SMs at t={t:.6g} "
                f"(device has {device.num_sms}): {_fmt(ev)}", (ev,)))


def _sync_event_id(tag: str) -> int | None:
    """Parse the event id out of a ``signal:<id>`` / ``wait:<id>`` tag."""
    _, _, suffix = tag.rpartition(":")
    try:
        return int(suffix)
    except ValueError:
        return None


def _check_sync_matching(timeline: Timeline, out: list[Violation],
                         eps: float) -> None:
    syncs = timeline.filter(EventKind.SYNC)
    signal_at: dict[int, float] = {}
    for ev in syncs:
        if ev.tag.startswith("signal"):
            eid = _sync_event_id(ev.tag)
            if eid is not None:
                signal_at[eid] = min(signal_at.get(eid, ev.end), ev.end)
    for ev in syncs:
        if not ev.tag.startswith("wait"):
            continue
        eid = _sync_event_id(ev.tag)
        if eid is None:
            continue
        if eid not in signal_at:
            out.append(Violation(
                "orphan-wait",
                f"wait on event {eid} has no matching signal: {_fmt(ev)}",
                (ev,)))
        elif signal_at[eid] > ev.start + eps:
            out.append(Violation(
                "wait-before-signal",
                f"wait on event {eid} completed at t={ev.start:.6g} before "
                f"its signal at t={signal_at[eid]:.6g}: {_fmt(ev)}", (ev,)))


def _check_roundtrip_conservation(timeline: Timeline, out: list[Violation]
                                  ) -> None:
    """Round-tripped intermediates must re-upload what they staged out."""
    staged_out = sum(e.nbytes for e in timeline.filter(EventKind.D2H)
                     if e.tag.startswith("roundtrip."))
    staged_in = sum(e.nbytes for e in timeline.filter(EventKind.H2D)
                    if e.tag.startswith("roundtrip."))
    if not _bytes_close(staged_out, staged_in):
        out.append(Violation(
            "byte-conservation",
            f"round-trip bytes differ: {staged_out:.0f} B staged out vs "
            f"{staged_in:.0f} B re-uploaded"))


def _bytes_close(a: float, b: float, rel: float = BYTE_REL_TOL,
                 abs_tol: float = BYTE_ABS_TOL) -> bool:
    return abs(a - b) <= abs_tol + rel * max(abs(a), abs(b))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def validate_timeline(timeline: Timeline, device: DeviceSpec | None = None,
                      time_eps: float = TIME_EPS) -> ValidationReport:
    """Audit `timeline` against the device model's invariants.

    `device` enables the SM-capacity check; without it, only device-
    independent invariants are verified.  Returns a
    :class:`ValidationReport`; call ``.raise_if_failed()`` for strict
    behavior.
    """
    violations: list[Violation] = []
    _check_event_sanity(timeline.events, violations, time_eps)
    _check_exclusive_engines(timeline, violations, time_eps)
    _check_stream_order(timeline, violations, time_eps)
    if device is not None:
        _check_sm_capacity(timeline, device, violations, time_eps)
    _check_sync_matching(timeline, violations, time_eps)
    _check_roundtrip_conservation(timeline, violations)
    return ValidationReport(violations=violations,
                            num_events=len(timeline.events))


def validate_run(result: Any, device: DeviceSpec | None = None,
                 time_eps: float = TIME_EPS) -> ValidationReport:
    """Audit an executor :class:`~repro.runtime.executor.RunResult`.

    Runs :func:`validate_timeline` on the result's timeline, then checks
    byte conservation: the total bytes the timeline actually moved in each
    PCIe direction must match the executor's size estimates
    (``expected_h2d_bytes`` / ``expected_d2h_bytes``) within tolerance.
    Failed attempts that fault injection forced to be re-tried are tagged
    ``fault.*`` by the engine and excluded -- only the transfer that finally
    delivered the data counts toward conservation.  `result` is duck-typed
    so this module stays import-light.
    """
    report = validate_timeline(result.timeline, device, time_eps)
    for direction, kind in (("expected_h2d_bytes", EventKind.H2D),
                            ("expected_d2h_bytes", EventKind.D2H)):
        expected = getattr(result, direction, None)
        if expected is None:
            continue
        actual = sum(e.nbytes for e in result.timeline.filter(kind)
                     if not e.tag.startswith("fault."))
        if not _bytes_close(actual, expected):
            report.violations.append(Violation(
                "byte-conservation",
                f"{kind.value} moved {actual:.0f} B but the executor "
                f"estimated {expected:.0f} B"))
    return report

"""Cluster-level schedule validation (docs/CLUSTER.md).

Extends the single-device sanitizer to a
:class:`~repro.cluster.executor.ClusterRunResult`:

* every device lane and the host lane must individually satisfy the
  single-device invariants (:func:`repro.validate.sanitizer
  .validate_timeline`) -- devices have private engines, so lanes are
  audited separately, never merged;
* **cross-device transfer conservation**: in exchange mode the bytes the
  local phase downloaded as frontier output must match the bytes the host
  shuffled, which must match the bytes the suffix phase re-uploaded
  (device -> host -> device, nothing created or lost in the shuffle);
* the host lane must carry the events the executor claims (one
  ``cluster.exchange`` per exchange, exactly one ``cluster.merge``), with
  matching byte counts;
* every lost device must carry its ``fault.device_loss.*`` marker and no
  local-phase work, and every shard must have run exactly once;
* the reported makespan must equal the latest lane end.

Tolerance: per-shard row counts come from ``estimate_sizes`` on the
shard's slice, so selectivity chains round independently per shard --
conservation is checked to a relative slack plus an absolute floor of a
couple of rows per shard.
"""

from __future__ import annotations

from typing import Any

from ..simgpu.device import DeviceSpec
from .sanitizer import TIME_EPS, ValidationReport, Violation

#: absolute conservation slack, in *rows* per shard (each shard's
#: estimate chain rounds independently)
ROW_SLACK_PER_SHARD = 2.0
#: cross-device conservation is looser than one timeline's bookkeeping:
#: shards see different selectivities than the unsharded estimate
CLUSTER_BYTE_REL_TOL = 1e-2


def _bytes_close(a: float, b: float, abs_tol: float,
                 rel: float = CLUSTER_BYTE_REL_TOL) -> bool:
    return abs(a - b) <= abs_tol + rel * max(abs(a), abs(b))


def _conservation_abs_tol(result: Any) -> float:
    row_nbytes = 1.0
    ex = result.dist.exchange
    if ex is not None:
        row_nbytes = max(row_nbytes, float(ex.row_nbytes))
    return ROW_SLACK_PER_SHARD * row_nbytes * result.config.num_devices


def _check_lanes(result: Any, device: DeviceSpec | None,
                 report: ValidationReport, time_eps: float) -> None:
    from .sanitizer import validate_timeline
    for dev_id in sorted(result.device_timelines):
        sub = validate_timeline(result.device_timelines[dev_id], device,
                                time_eps)
        for v in sub.violations:
            report.violations.append(Violation(
                v.rule, f"device {dev_id}: {v.message}", v.events))
        report.num_events += sub.num_events
    sub = validate_timeline(result.host_timeline, None, time_eps)
    for v in sub.violations:
        report.violations.append(Violation(
            v.rule, f"host: {v.message}", v.events))
    report.num_events += sub.num_events


def _check_exchange_conservation(result: Any,
                                 report: ValidationReport) -> None:
    if result.dist.suffix_mode != "exchange":
        return
    abs_tol = _conservation_abs_tol(result)
    out_b, in_b = result.exchange_out_bytes, result.exchange_in_bytes
    if not _bytes_close(out_b, in_b, abs_tol):
        report.violations.append(Violation(
            "exchange-conservation",
            f"local phase staged out {out_b:.0f} B but the suffix phase "
            f"re-uploaded {in_b:.0f} B (tol {abs_tol:.0f} B)"))
    shuffled = sum(e.nbytes for e in result.host_timeline.events
                   if e.tag == "cluster.exchange")
    if not _bytes_close(out_b, shuffled, abs_tol):
        report.violations.append(Violation(
            "exchange-conservation",
            f"host shuffled {shuffled:.0f} B but local outputs total "
            f"{out_b:.0f} B"))


def _check_host_lane(result: Any, report: ValidationReport) -> None:
    tags = [e.tag for e in result.host_timeline.events]
    n_exchange = tags.count("cluster.exchange")
    want_exchange = 1 if result.dist.suffix_mode == "exchange" else 0
    if n_exchange != want_exchange:
        report.violations.append(Violation(
            "host-lane",
            f"expected {want_exchange} cluster.exchange event(s), "
            f"found {n_exchange}"))
    n_merge = tags.count("cluster.merge")
    if n_merge != 1:
        report.violations.append(Violation(
            "host-lane",
            f"expected exactly one cluster.merge event, found {n_merge}"))


def _check_losses_and_coverage(result: Any,
                               report: ValidationReport) -> None:
    num = result.config.num_devices
    for dev_id in result.lost_devices:
        tl = result.device_timelines[dev_id]
        markers = [e for e in tl.events
                   if e.tag.startswith("fault.device_loss.")]
        if not markers:
            report.violations.append(Violation(
                "device-loss",
                f"device {dev_id} reported lost but carries no "
                f"fault.device_loss marker"))
    early_lost = {
        d for d in result.lost_devices
        if any(e.tag == f"fault.device_loss.device.{d}"
               for e in result.device_timelines[d].events)}
    for run in result.shard_runs:
        if run.phase == "local" and run.device in early_lost:
            report.violations.append(Violation(
                "device-loss",
                f"shard {run.shard} ran locally on device {run.device}, "
                f"which was lost before the local phase"))
    local = [r for r in result.shard_runs if r.phase == "local"]
    if local:
        seen = sorted(r.shard for r in local)
        if seen != list(range(num)):
            report.violations.append(Violation(
                "shard-coverage",
                f"local phase ran shards {seen}, expected exactly "
                f"0..{num - 1} once each"))


def _check_makespan(result: Any, report: ValidationReport,
                    time_eps: float) -> None:
    ends = [tl.end_time for tl in result.device_timelines.values()]
    ends.append(result.host_timeline.end_time)
    want = max(ends)
    if abs(result.makespan - want) > time_eps:
        report.violations.append(Violation(
            "makespan",
            f"reported makespan {result.makespan:.6g} != latest lane end "
            f"{want:.6g}"))


def validate_cluster(result: Any, device: DeviceSpec | None = None,
                     time_eps: float = TIME_EPS) -> ValidationReport:
    """Audit a :class:`~repro.cluster.executor.ClusterRunResult`.

    `device` should be the *contended* per-slot DeviceSpec (what each lane
    actually ran on); it enables the SM-capacity check per lane.  `result`
    is duck-typed so this module does not import the cluster package.
    """
    report = ValidationReport()
    _check_lanes(result, device, report, time_eps)
    _check_exchange_conservation(result, report)
    _check_host_lane(result, report)
    _check_losses_and_coverage(result, report)
    _check_makespan(result, report, time_eps)
    return report


__all__ = ["validate_cluster", "CLUSTER_BYTE_REL_TOL",
           "ROW_SLACK_PER_SHARD"]

"""Cluster-level schedule validation (docs/CLUSTER.md).

Extends the single-device sanitizer to a
:class:`~repro.cluster.executor.ClusterRunResult`:

* every device lane and the host lane must individually satisfy the
  single-device invariants (:func:`repro.validate.sanitizer
  .validate_timeline`) -- devices have private engines, so lanes are
  audited separately, never merged;
* **cross-device transfer conservation**: in exchange mode the bytes the
  local phase sent (the chunk/flush model's per-shard outbound, reported
  as ``exchange_out_bytes``) must match the bytes the host staged across
  its ``cluster.exchange*`` chunk events, which must match the bytes the
  suffix phase re-uploaded (device -> host -> device, nothing created or
  lost in the shuffle);
* the host lane must carry the events the executor claims: at least one
  ``cluster.exchange*`` chunk event in exchange mode (the pipelined
  exchange emits one per chunk), exactly one root ``cluster.merge``,
  ``cluster.merge.round*`` events only under a tree merge -- and an
  *empty* host lane for a 1-device cluster (which must degenerate to the
  plain single-device run);
* every lost device must carry its ``fault.device_loss.*`` marker, no
  local-phase work on a device lost before the local phase and no suffix
  work on any lost device; every shard must have run exactly once, and
  every suffix slot at most once;
* the reported makespan must equal the latest lane end.

Tolerance: per-shard row counts come from ``estimate_sizes`` on the
shard's slice, so selectivity chains round independently per shard --
conservation is checked to a relative slack plus an absolute floor of a
couple of rows per shard.
"""

from __future__ import annotations

from typing import Any

from ..simgpu.device import DeviceSpec
from .sanitizer import TIME_EPS, ValidationReport, Violation

#: absolute conservation slack, in *rows* per shard (each shard's
#: estimate chain rounds independently)
ROW_SLACK_PER_SHARD = 2.0
#: cross-device conservation is looser than one timeline's bookkeeping:
#: shards see different selectivities than the unsharded estimate
CLUSTER_BYTE_REL_TOL = 1e-2


def _bytes_close(a: float, b: float, abs_tol: float,
                 rel: float = CLUSTER_BYTE_REL_TOL) -> bool:
    return abs(a - b) <= abs_tol + rel * max(abs(a), abs(b))


def _conservation_abs_tol(result: Any) -> float:
    row_nbytes = 1.0
    ex = result.dist.exchange
    if ex is not None:
        row_nbytes = max(row_nbytes, float(ex.row_nbytes))
    return ROW_SLACK_PER_SHARD * row_nbytes * result.config.num_devices


def _check_lanes(result: Any, device: DeviceSpec | None,
                 report: ValidationReport, time_eps: float) -> None:
    from .sanitizer import validate_timeline
    for dev_id in sorted(result.device_timelines):
        sub = validate_timeline(result.device_timelines[dev_id], device,
                                time_eps)
        for v in sub.violations:
            report.violations.append(Violation(
                v.rule, f"device {dev_id}: {v.message}", v.events))
        report.num_events += sub.num_events
    sub = validate_timeline(result.host_timeline, None, time_eps)
    for v in sub.violations:
        report.violations.append(Violation(
            v.rule, f"host: {v.message}", v.events))
    report.num_events += sub.num_events


def _check_exchange_conservation(result: Any,
                                 report: ValidationReport) -> None:
    if result.dist.suffix_mode != "exchange":
        return
    abs_tol = _conservation_abs_tol(result)
    out_b, in_b = result.exchange_out_bytes, result.exchange_in_bytes
    if not _bytes_close(out_b, in_b, abs_tol):
        report.violations.append(Violation(
            "exchange-conservation",
            f"local phase staged out {out_b:.0f} B but the suffix phase "
            f"re-uploaded {in_b:.0f} B (tol {abs_tol:.0f} B)"))
    shuffled = sum(e.nbytes for e in result.host_timeline.events
                   if e.tag.startswith("cluster.exchange"))
    if not _bytes_close(out_b, shuffled, abs_tol):
        report.violations.append(Violation(
            "exchange-conservation",
            f"host shuffled {shuffled:.0f} B but local outputs total "
            f"{out_b:.0f} B"))


def _check_host_lane(result: Any, report: ValidationReport) -> None:
    tags = [e.tag for e in result.host_timeline.events]
    if result.config.num_devices == 1:
        # a 1-device cluster must degenerate to the plain single-device
        # run: no exchange, no host merge
        if tags:
            report.violations.append(Violation(
                "host-lane",
                f"1-device cluster must have an empty host lane, "
                f"found events {tags}"))
        return
    n_exchange = sum(1 for t in tags if t.startswith("cluster.exchange"))
    if result.dist.suffix_mode == "exchange":
        if n_exchange < 1:
            report.violations.append(Violation(
                "host-lane",
                "exchange mode but no cluster.exchange* chunk events"))
    elif n_exchange:
        report.violations.append(Violation(
            "host-lane",
            f"suffix mode {result.dist.suffix_mode!r} but found "
            f"{n_exchange} cluster.exchange* event(s)"))
    n_merge = tags.count("cluster.merge")
    if n_merge != 1:
        report.violations.append(Violation(
            "host-lane",
            f"expected exactly one cluster.merge event, found {n_merge}"))
    rounds = [t for t in tags if t.startswith("cluster.merge.round")]
    if rounds and getattr(result.dist, "merge", "flat") != "tree":
        report.violations.append(Violation(
            "host-lane",
            f"merge strategy {result.dist.merge!r} but found tree-round "
            f"events {rounds}"))


def _check_losses_and_coverage(result: Any,
                               report: ValidationReport) -> None:
    num = result.config.num_devices
    for dev_id in result.lost_devices:
        tl = result.device_timelines[dev_id]
        markers = [e for e in tl.events
                   if e.tag.startswith("fault.device_loss.")]
        if not markers:
            report.violations.append(Violation(
                "device-loss",
                f"device {dev_id} reported lost but carries no "
                f"fault.device_loss marker"))
    early_lost = {
        d for d in result.lost_devices
        if any(e.tag == f"fault.device_loss.device.{d}"
               for e in result.device_timelines[d].events)}
    for run in result.shard_runs:
        if run.phase == "local" and run.device in early_lost:
            report.violations.append(Violation(
                "device-loss",
                f"shard {run.shard} ran locally on device {run.device}, "
                f"which was lost before the local phase"))
    local = [r for r in result.shard_runs if r.phase == "local"]
    if local:
        seen = sorted(r.shard for r in local)
        want = list(range(num)) if num > 1 else [0]
        if seen != want:
            report.violations.append(Violation(
                "shard-coverage",
                f"local phase ran shards {seen}, expected exactly "
                f"{want} once each"))
    suffix = [r for r in result.shard_runs if r.phase == "suffix"]
    for run in suffix:
        if run.device in result.lost_devices:
            report.violations.append(Violation(
                "device-loss",
                f"suffix slot {run.shard} ran on device {run.device}, "
                f"which was lost; slots must be recovered on survivors"))
    slots = sorted(r.shard for r in suffix)
    if len(slots) != len(set(slots)):
        report.violations.append(Violation(
            "shard-coverage",
            f"suffix slots {slots} contain duplicates: each exchange "
            f"destination must run exactly once"))


def _check_makespan(result: Any, report: ValidationReport,
                    time_eps: float) -> None:
    ends = [tl.end_time for tl in result.device_timelines.values()]
    ends.append(result.host_timeline.end_time)
    want = max(ends)
    if abs(result.makespan - want) > time_eps:
        report.violations.append(Violation(
            "makespan",
            f"reported makespan {result.makespan:.6g} != latest lane end "
            f"{want:.6g}"))


def validate_cluster(result: Any, device: DeviceSpec | None = None,
                     time_eps: float = TIME_EPS) -> ValidationReport:
    """Audit a :class:`~repro.cluster.executor.ClusterRunResult`.

    `device` should be the *contended* per-slot DeviceSpec (what each lane
    actually ran on); it enables the SM-capacity check per lane.  `result`
    is duck-typed so this module does not import the cluster package.
    """
    report = ValidationReport()
    _check_lanes(result, device, report, time_eps)
    _check_exchange_conservation(result, report)
    _check_host_lane(result, report)
    _check_losses_and_coverage(result, report)
    _check_makespan(result, report, time_eps)
    return report


__all__ = ["validate_cluster", "CLUSTER_BYTE_REL_TOL",
           "ROW_SLACK_PER_SHARD"]

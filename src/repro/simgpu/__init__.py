"""Simulated Fermi-class GPU platform (device, PCIe, memory, streams).

This package is the substitute for the paper's physical testbed (Table II):
an NVIDIA Tesla C2070 attached to a dual-Xeon host over PCIe 2.0.  See
DESIGN.md SS2 for the substitution rationale and
:mod:`repro.simgpu.calibration` for how constants were fit.
"""

from .calibration import Calibration, CpuCalibration, DEFAULT_CALIBRATION, GpuCalibration, PcieCalibration
from .compression import BITPACK, DICT, NONE, RLE, SCHEMES, CompressionScheme
from .compute import (
    CONCURRENT_PENALTY,
    DEFAULT_THREADS_PER_CTA,
    KernelLaunchSpec,
    default_grid,
    kernel_duration,
    sms_requested,
)
from .device import DeviceSpec, Occupancy, describe_environment
from .engine import (
    HostCommand,
    KernelCommand,
    SignalEventCommand,
    SimEngine,
    SimStream,
    TransferCommand,
    WaitEventCommand,
)
from .memory import DeviceMemory
from .pcie import Direction, HostMemory, PcieModel
from .stats import UtilizationReport, analyze, describe as describe_utilization
from .trace import (cluster_chrome_trace, to_chrome_trace,
                    write_chrome_trace, write_cluster_trace)
from .timeline import EventKind, Timeline, TimelineEvent

__all__ = [
    "BITPACK", "DICT", "NONE", "RLE", "SCHEMES", "CompressionScheme",
    "Calibration", "CpuCalibration", "DEFAULT_CALIBRATION", "GpuCalibration",
    "PcieCalibration", "CONCURRENT_PENALTY", "DEFAULT_THREADS_PER_CTA",
    "KernelLaunchSpec", "default_grid", "kernel_duration", "sms_requested",
    "DeviceSpec", "Occupancy", "describe_environment", "HostCommand",
    "KernelCommand", "SignalEventCommand", "SimEngine", "SimStream",
    "TransferCommand", "WaitEventCommand", "DeviceMemory", "Direction",
    "HostMemory", "PcieModel", "EventKind", "Timeline", "TimelineEvent",
    "UtilizationReport", "analyze", "describe_utilization",
    "to_chrome_trace", "write_chrome_trace",
    "cluster_chrome_trace", "write_cluster_trace",
]

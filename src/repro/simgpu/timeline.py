"""Simulated-time event log.

Every strategy run produces a :class:`Timeline`; the breakdown figures
(Fig 9, Fig 10) are computed from these events rather than from ad-hoc
arithmetic, so the accounting is consistent across strategies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class EventKind(enum.Enum):
    H2D = "h2d"
    D2H = "d2h"
    KERNEL = "kernel"
    HOST = "host"
    SYNC = "sync"


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One simulated interval.  Slotted: serve-scale runs log hundreds of
    thousands of these, and a per-event ``__dict__`` was the single
    biggest allocation churn in the DES hot loop (BENCH_workers.json
    tracks the resulting events/sec)."""

    start: float
    end: float
    kind: EventKind
    tag: str
    stream: int = 0
    nbytes: float = 0.0
    #: SMs granted to this event while it ran (KERNEL events only; 0 when
    #: unknown, e.g. hand-built timelines)
    sms: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


def _merged_busy(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    ordered = sorted(intervals)
    busy = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for s, e in ordered:
        if cur_start is None:
            cur_start, cur_end = s, e
        elif s <= cur_end:
            cur_end = max(cur_end, e)
        else:
            busy += cur_end - cur_start
            cur_start, cur_end = s, e
    if cur_start is not None:
        busy += cur_end - cur_start
    return busy


@dataclass
class Timeline:
    events: list[TimelineEvent] = field(default_factory=list)

    def add(
        self,
        start: float,
        end: float,
        kind: EventKind,
        tag: str,
        stream: int = 0,
        nbytes: float = 0.0,
        sms: int = 0,
    ) -> TimelineEvent:
        if end < start:
            raise ValueError(f"event ends before it starts: {tag}")
        ev = TimelineEvent(start, end, kind, tag, stream, nbytes, sms)
        self.events.append(ev)
        return ev

    def extend(self, other: "Timeline", offset: float = 0.0) -> None:
        for ev in other.events:
            self.events.append(
                TimelineEvent(
                    ev.start + offset, ev.end + offset, ev.kind, ev.tag,
                    ev.stream, ev.nbytes, ev.sms,
                )
            )

    # -- queries ------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End-to-end simulated time."""
        if not self.events:
            return 0.0
        lo = hi = None
        for e in self.events:
            if lo is None or e.start < lo:
                lo = e.start
            if hi is None or e.end > hi:
                hi = e.end
        return hi - lo

    @property
    def end_time(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def filter(self, kind: EventKind | None = None, tag_prefix: str | None = None):
        evs = self.events
        if kind is not None:
            evs = [e for e in evs if e.kind is kind]
        if tag_prefix is not None:
            evs = [e for e in evs if e.tag.startswith(tag_prefix)]
        return evs

    def busy_time(self, kind: EventKind | None = None, tag_prefix: str | None = None) -> float:
        """Union-of-intervals time spent in matching events (overlap-aware)."""
        return _merged_busy(
            (e.start, e.end) for e in self.filter(kind, tag_prefix)
        )

    def total_time(self, kind: EventKind | None = None, tag_prefix: str | None = None) -> float:
        """Sum of durations of matching events (double-counts overlap)."""
        return sum(e.duration for e in self.filter(kind, tag_prefix))

    def bytes_moved(self, kind: EventKind) -> float:
        return sum(e.nbytes for e in self.filter(kind))

    def breakdown(self) -> dict[str, float]:
        """Serial-time breakdown by event kind (sum of durations)."""
        out: dict[str, float] = {}
        for ev in self.events:
            out[ev.kind.value] = out.get(ev.kind.value, 0.0) + ev.duration
        return out

    def tag_breakdown(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for ev in self.events:
            out[ev.tag] = out.get(ev.tag, 0.0) + ev.duration
        return out

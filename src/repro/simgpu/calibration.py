"""Calibration constants for the simulated Fermi-class platform.

Every constant in this module is fit against a measurement reported in the
paper (Table II environment: Tesla C2070 + dual Xeon E5520 over PCIe 2.0,
CUDA 4.0).  The *source* of each value is noted next to it:

* ``spec``   -- taken from the published hardware specification.
* ``fit``    -- chosen so the simulator reproduces a curve or ratio the
  paper reports (the figure/table is referenced).

The simulator is analytic: changing a constant here changes simulated time
everywhere coherently, which is what makes the reproduction honest -- the
benchmark harness does not hard-code any paper number.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = float(1 << 30)
GB = 1e9


@dataclass(frozen=True)
class GpuCalibration:
    """Tesla C2070 (Fermi GF100) compute/memory constants."""

    name: str = "NVIDIA Tesla C2070 (simulated)"
    num_sms: int = 14                     # spec
    cores_per_sm: int = 32                # spec
    clock_hz: float = 1.15e9              # spec
    global_mem_bytes: int = 6 * (1 << 30)  # spec: 6 GB GDDR5
    # spec: 144 GB/s theoretical; fit: 0.33 streaming efficiency for the
    # scattered, divergent access patterns of RA kernels, so the simulated
    # SELECT sustains ~20 GB/s of *input* throughput at 50% selectivity as
    # in Fig 4(a).
    mem_bw_peak: float = 144 * GB
    mem_bw_efficiency: float = 0.33
    # spec: Fermi register file and occupancy limits.
    max_regs_per_thread: int = 63
    regs_per_sm: int = 32768
    max_threads_per_sm: int = 1536
    max_ctas_per_sm: int = 8
    shared_mem_per_sm: int = 48 * 1024
    # fit: kernel launch + global-sync overhead; sets the small-N knee of
    # every throughput curve (Fig 4a / Fig 12).
    kernel_launch_s: float = 8.0e-6
    # fit: fraction of full thread residency needed to reach peak
    # *instruction* throughput.  2/3 residency makes the paper's
    # half-thread/half-CTA SELECT ("no stream (new)", Fig 12) run at ~half
    # speed, while a full-resource launch just saturates.
    saturation_residency: float = 0.667
    # fit: memory bandwidth saturates with far fewer resident warps than
    # ALU throughput does (each warp keeps several loads outstanding), so
    # register-heavy fused kernels that drop to 1/3 occupancy still stream
    # at full bandwidth.
    saturation_residency_mem: float = 0.30
    # fit: effective instructions retired per core per clock.
    ipc: float = 1.0

    @property
    def mem_bw(self) -> float:
        """Effective global-memory streaming bandwidth (bytes/s)."""
        return self.mem_bw_peak * self.mem_bw_efficiency

    @property
    def inst_rate(self) -> float:
        """Peak retired-instruction rate (instructions/s)."""
        return self.num_sms * self.cores_per_sm * self.clock_hz * self.ipc

    @property
    def max_resident_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm


@dataclass(frozen=True)
class PcieCalibration:
    """PCIe 2.0 x16 transfer model (Fig 4(b)).

    The paper measures (with CUDA's ``bandwidthTest``) peak pinned bandwidth
    around 6 GB/s, paged 3-4 GB/s, with pinned H2D ("CPU WR GPU") fastest and
    the pinned advantage shrinking for very large buffers.
    """

    # fit: asymptotic bandwidths in bytes/s (Fig 4b plateau values).
    pinned_h2d_bw: float = 5.9 * GB
    pinned_d2h_bw: float = 6.3 * GB
    paged_h2d_bw: float = 4.0 * GB
    paged_d2h_bw: float = 3.2 * GB
    # fit: half-saturation transfer size -- small transfers see lower
    # effective bandwidth (Fig 4b ramp below ~16 MB).
    half_saturation_bytes: float = 4e6
    # fit: per-transfer fixed latency (driver + DMA setup).
    latency_s: float = 12e-6
    # fit: pinned-memory degradation at very large sizes (Fig 4b: "when the
    # data size becomes large, its advantage reduces" -- OS pressure from
    # large pinned allocations).
    pinned_degradation: float = 0.12
    pinned_degradation_onset_bytes: float = 0.8e9
    pinned_degradation_span_bytes: float = 1.2e9
    # shared-host staging cap (bytes/s), set by the cluster layer
    # (:func:`repro.cluster.host.contended_calibration`): this device's
    # share of the host's aggregate DRAM streaming bandwidth.  A transfer
    # can never complete faster than ``nbytes / host_share_bw``, but the
    # per-link latency and saturation knee are link properties and are NOT
    # scaled by contention.  None = uncontended (single tenant).
    host_share_bw: float | None = None


@dataclass(frozen=True)
class CpuCalibration:
    """Dual quad-core Xeon E5520 host running 16 threads (Fig 4(a)).

    The CPU SELECT model is ``t = n*(read + sel*write_penalty + branch)``;
    constants are fit to the paper's reported average GPU speedups of
    2.88x / 8.80x / 8.35x at 10% / 50% / 90% selectivity.
    """

    name: str = "2x quad-core Xeon E5520 @ 2.27 GHz (simulated, 16 threads)"
    num_threads: int = 16
    # fit: aggregate streaming read bandwidth (two sockets, 3x DDR3-1066
    # channels each).
    read_bw: float = 25.0 * GB
    # fit: effective bandwidth for the scattered result writes of SELECT
    # (write-allocate traffic + partial lines make this far below read BW).
    write_bw: float = 3.2 * GB
    # fit: per-selected-element copy overhead in seconds.
    per_match_overhead_s: float = 0.35e-9
    # fit: branch-misprediction cost per element, weighted by f*(1-f) --
    # worst at 50% selectivity, which is why the paper's GPU speedup peaks
    # there (8.80x at 50% vs 8.35x at 90% and 2.88x at 10%).  Kept small
    # enough that CPU time stays monotone in f, matching the paper's "the
    # less data selected, the better performance on both GPU and CPU".
    branch_miss_s: float = 1.9e-9
    # fit: parallel-section startup overhead.
    startup_s: float = 40e-6
    host_mem_bytes: int = 48 * (1 << 30)  # spec: Table II


@dataclass(frozen=True)
class Calibration:
    gpu: GpuCalibration = GpuCalibration()
    pcie: PcieCalibration = PcieCalibration()
    cpu: CpuCalibration = CpuCalibration()


DEFAULT_CALIBRATION = Calibration()

"""Device-memory allocator / tracker.

Enforces the 6 GB device capacity that drives the paper's *with round trip*
baseline: when intermediates do not fit next to the input, they must be
staged back to the host (SS III-A, "Reduction in PCIe Traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceOOMError


@dataclass
class Allocation:
    name: str
    nbytes: int
    freed: bool = False


@dataclass
class DeviceMemory:
    """Byte-accurate bump allocator with a capacity ceiling and peak stats."""

    capacity: int
    _allocs: dict[int, Allocation] = field(default_factory=dict)
    _next_id: int = 0
    in_use: int = 0
    peak: int = 0
    total_allocated: int = 0

    def alloc(self, nbytes: int, name: str = "buf") -> int:
        """Reserve `nbytes`; returns a handle.  Raises DeviceOOMError."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.in_use + nbytes > self.capacity:
            raise DeviceOOMError(nbytes, self.available, self.capacity)
        handle = self._next_id
        self._next_id += 1
        self._allocs[handle] = Allocation(name=name, nbytes=nbytes)
        self.in_use += nbytes
        self.total_allocated += nbytes
        self.peak = max(self.peak, self.in_use)
        return handle

    def free(self, handle: int) -> None:
        alloc = self._allocs.get(handle)
        if alloc is None or alloc.freed:
            raise KeyError(f"invalid or double free of handle {handle}")
        alloc.freed = True
        self.in_use -= alloc.nbytes

    def fits(self, nbytes: int) -> bool:
        return self.in_use + int(nbytes) <= self.capacity

    @property
    def available(self) -> int:
        """Bytes not currently allocated."""
        return self.capacity - self.in_use

    def reset(self) -> None:
        self._allocs.clear()
        self.in_use = 0
        self.peak = 0
        self.total_allocated = 0

    def live_allocations(self) -> list[Allocation]:
        return [a for a in self._allocs.values() if not a.freed]

"""Export a simulated timeline as a Chrome trace (``chrome://tracing`` /
Perfetto JSON).

Rows: each exclusive engine (H2D copy, D2H copy, host, sync) is one trace
row, and kernels get **one row per simulated stream** -- so concurrent
kernels issued to different :class:`~repro.simgpu.engine.SimStream`\\ s (or
re-issued on a fresh replacement stream after a stall) render as parallel
lanes instead of collapsing onto a single "GPU compute" track.

Fault events (``fault.*`` tags, see docs/FAULTS.md) are exported with a
``fault`` category and ``args.repair`` saying how the runtime recovered
(``retry`` in place vs ``reissue`` on a fresh stream), so chaos runs are
inspectable: filter the ``fault`` category in Perfetto to see every
injected failure and where its repair landed.
"""

from __future__ import annotations

import json

from .timeline import EventKind, Timeline

#: trace "thread" ids for the exclusive-engine rows
_ENGINE_ROWS = {
    EventKind.H2D: (1, "PCIe H2D copy engine"),
    EventKind.D2H: (2, "PCIe D2H copy engine"),
    EventKind.HOST: (4, "host CPU"),
    EventKind.SYNC: (5, "sync"),
}

#: kernel lanes: tid = base + stream id, one row per stream
_KERNEL_TID_BASE = 100


def _row(ev) -> tuple[int, str]:
    """(tid, row name) an event renders on."""
    if ev.kind is EventKind.KERNEL:
        return (_KERNEL_TID_BASE + ev.stream,
                f"GPU compute (stream {ev.stream})")
    return _ENGINE_ROWS[ev.kind]


def _trace_events(timeline: Timeline, process_name: str,
                  pid: int) -> list[dict]:
    """All trace events of one timeline as one process (lane group)."""
    complete: list[dict] = []
    rows: dict[int, str] = {}
    for ev in sorted(timeline.events, key=lambda e: (e.start, e.end, e.tag)):
        tid, row_name = _row(ev)
        rows[tid] = row_name
        is_fault = ev.tag.startswith("fault.")
        args: dict = {"stream": ev.stream, "nbytes": ev.nbytes}
        if is_fault:
            args["fault"] = True
            args["repair"] = ("reissue" if ev.tag.startswith("fault.stall.")
                              else "retry")
        complete.append({
            "name": ev.tag,
            "cat": ev.kind.value + (",fault" if is_fault else ""),
            "ph": "X",                      # complete event
            "pid": pid,
            "tid": tid,
            "ts": ev.start * 1e6,           # microseconds
            "dur": max(ev.duration * 1e6, 0.001),
            "args": args,
        })

    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }, {
        # keep processes in the order the caller supplied them
        "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
        "args": {"sort_index": pid},
    }]
    for tid in sorted(rows):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": rows[tid]},
        })
        # keep lanes in engine/stream order regardless of first-event time
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })
    events.extend(complete)
    return events


def to_chrome_trace(timeline: Timeline, process_name: str = "simgpu",
                    analysis: dict | None = None, pid: int = 1) -> dict:
    """The trace as a JSON-serializable dict (``traceEvents`` format).

    `analysis`, when given, is attached verbatim as a top-level
    ``analysis`` metadata section -- the executor's static pre-flight
    summary (:meth:`repro.analyze.diagnostics.AnalysisReport.summary`),
    so a trace records what the analyzer said about the schedule it
    shows.  Perfetto ignores unknown top-level keys.
    """
    trace: dict = {"traceEvents": _trace_events(timeline, process_name, pid),
                   "displayTimeUnit": "ms"}
    if analysis is not None:
        trace["analysis"] = analysis
    return trace


def cluster_chrome_trace(timelines: list[tuple[str, Timeline]],
                         analysis: dict | None = None) -> dict:
    """One trace from several (name, timeline) lanes on a shared clock.

    Each timeline becomes its own trace *process* (lane group) -- one per
    simulated device plus one for the cluster host -- so an N-device run
    renders as N+1 stacked engine/stream groups in Perfetto.  Callers
    pass lanes in display order (host first or last, their choice).
    """
    events: list[dict] = []
    for pid, (name, timeline) in enumerate(timelines, start=1):
        events.extend(_trace_events(timeline, name, pid))
    trace: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if analysis is not None:
        trace["analysis"] = analysis
    return trace


def write_chrome_trace(timeline: Timeline, path: str,
                       process_name: str = "simgpu",
                       analysis: dict | None = None) -> None:
    """Write the trace JSON to `path` (open in chrome://tracing)."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(timeline, process_name, analysis=analysis), f)


def write_cluster_trace(timelines: list[tuple[str, Timeline]], path: str,
                        analysis: dict | None = None) -> None:
    """Write a multi-lane cluster trace JSON to `path`."""
    with open(path, "w") as f:
        json.dump(cluster_chrome_trace(timelines, analysis=analysis), f)

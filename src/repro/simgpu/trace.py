"""Export a simulated timeline as a Chrome trace (``chrome://tracing`` /
Perfetto JSON).

Each engine (H2D copy, D2H copy, compute SMs, host) becomes a trace row;
events carry their tag and byte counts, so the Fig 13/15 overlap structure
can be inspected visually.
"""

from __future__ import annotations

import json

from .timeline import EventKind, Timeline

#: trace "thread" ids per engine row
_ROWS = {
    EventKind.H2D: (1, "PCIe H2D copy engine"),
    EventKind.D2H: (2, "PCIe D2H copy engine"),
    EventKind.KERNEL: (3, "GPU compute"),
    EventKind.HOST: (4, "host CPU"),
    EventKind.SYNC: (5, "sync"),
}


def to_chrome_trace(timeline: Timeline, process_name: str = "simgpu") -> dict:
    """The trace as a JSON-serializable dict (``traceEvents`` format)."""
    events: list[dict] = []
    for kind, (tid, name) in _ROWS.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        })
    events.append({
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    })
    for ev in sorted(timeline.events, key=lambda e: e.start):
        tid = _ROWS[ev.kind][0]
        events.append({
            "name": ev.tag,
            "cat": ev.kind.value,
            "ph": "X",                      # complete event
            "pid": 1,
            "tid": tid,
            "ts": ev.start * 1e6,           # microseconds
            "dur": max(ev.duration * 1e6, 0.001),
            "args": {"stream": ev.stream, "nbytes": ev.nbytes},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str,
                       process_name: str = "simgpu") -> None:
    """Write the trace JSON to `path` (open in chrome://tracing)."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(timeline, process_name), f)

"""Kernel timing model: occupancy-scaled roofline + launch overhead.

A kernel launch is described by :class:`KernelLaunchSpec` -- its grid shape,
per-thread register demand, and its total global-memory traffic and
instruction count.  Simulated duration is::

    t = launch + max(traffic / mem_bw, instructions / inst_rate) / utilization

where *utilization* ramps with resident threads (so small grids and
half-resource grids run below peak, reproducing Fig 12) and register
pressure beyond the Fermi per-thread limit is charged as spill traffic
(the cost-model caveat of SS III-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .device import DeviceSpec

#: Default CTA shape used by the RA kernel implementations (grid-stride
#: loops sized to the device, as in Diamos et al.'s primitives).
DEFAULT_THREADS_PER_CTA = 256
DEFAULT_CTAS_PER_SM = 8

#: fit: throughput penalty applied to kernels that share the device with
#: another co-resident kernel (cache/DRAM interference; Fig 12 shows
#: concurrent streams losing to a single full kernel at large N, with the
#: crossover near 8M elements).
CONCURRENT_PENALTY = 0.96

#: fit: host-side cudaDeviceSynchronize-style overhead paid between
#: operator invocations in the unstreamed execution path (Fig 12).
DEVICE_SYNC_S = 25e-6

SPILL_BYTES_PER_REG = 8  # one 4-byte store + one 4-byte load per excess reg


@dataclass(frozen=True)
class KernelLaunchSpec:
    """Everything the timing model needs about one kernel launch."""

    name: str
    num_elements: int
    num_ctas: int
    threads_per_cta: int
    regs_per_thread: int
    bytes_read: float
    bytes_written: float
    instructions: float
    shared_bytes_per_cta: int = 0

    def scaled(self, factor: float, name: str | None = None) -> "KernelLaunchSpec":
        """A launch processing `factor` times the elements (same grid)."""
        return replace(
            self,
            name=name or self.name,
            num_elements=max(0, int(round(self.num_elements * factor))),
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            instructions=self.instructions * factor,
        )

    @property
    def total_traffic(self) -> float:
        return self.bytes_read + self.bytes_written


def default_grid(
    n_elements: int,
    device: DeviceSpec,
    threads_per_cta: int = DEFAULT_THREADS_PER_CTA,
    resource_fraction: float = 1.0,
) -> tuple[int, int]:
    """(num_ctas, threads_per_cta) for a grid-stride launch.

    `resource_fraction` < 1 reproduces the paper's "no stream (new)"
    configuration that uses half the threads and CTAs.
    """
    threads = max(1, int(threads_per_cta * resource_fraction))
    full_ctas = max(1, int(DEFAULT_CTAS_PER_SM * device.num_sms * resource_fraction))
    ctas = min(full_ctas, max(1, math.ceil(n_elements / threads)))
    return ctas, threads


def kernel_duration(
    device: DeviceSpec,
    spec: KernelLaunchSpec,
    granted_sms: int | None = None,
    concurrent: bool = False,
) -> float:
    """Simulated wall-clock seconds for one kernel launch."""
    if spec.num_elements <= 0:
        return device.kernel_launch_s

    occ = device.occupancy(
        spec.threads_per_cta, spec.regs_per_thread, spec.shared_bytes_per_cta
    )

    traffic = spec.total_traffic
    g = device.calib.gpu
    if spec.regs_per_thread > g.max_regs_per_thread:
        excess = spec.regs_per_thread - g.max_regs_per_thread
        traffic += excess * SPILL_BYTES_PER_REG * spec.num_elements

    sms = device.num_sms if granted_sms is None else max(1, min(granted_sms, device.num_sms))
    resident_ctas = min(spec.num_ctas, sms * max(occ.ctas_per_sm, 1))
    resident_threads = resident_ctas * spec.threads_per_cta
    util_inst = max(device.utilization(resident_threads, sms, kind="inst"), 1e-6)
    util_mem = max(device.utilization(resident_threads, sms, kind="mem"), 1e-6)

    t_mem = traffic / device.mem_bw
    t_inst = spec.instructions / device.inst_rate
    t = device.kernel_launch_s + max(t_mem / util_mem, t_inst / util_inst)
    if concurrent:
        t /= CONCURRENT_PENALTY
    return t


def sms_requested(device: DeviceSpec, spec: KernelLaunchSpec) -> int:
    """SMs this launch would need for full co-residency."""
    occ = device.occupancy(
        spec.threads_per_cta, spec.regs_per_thread, spec.shared_bytes_per_cta
    )
    return device.sms_needed(spec.num_ctas, occ)

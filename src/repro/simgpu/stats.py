"""Timeline analysis: engine utilization and overlap accounting.

Quantifies how well a schedule exploits the device's concurrency envelope
-- the numbers behind statements like "the H2D engine is busy 99% of the
pipeline" (Fig 13/15) and "round trips are 54% of the serial total"
(Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeline import EventKind, Timeline

#: engines with dedicated hardware queues
ENGINE_KINDS = (EventKind.H2D, EventKind.D2H, EventKind.KERNEL, EventKind.HOST)


@dataclass(frozen=True)
class UtilizationReport:
    """Per-engine busy fractions plus overlap distribution."""

    makespan: float
    busy: dict[str, float]            # engine -> busy seconds (union)
    overlap_histogram: dict[int, float]  # #busy engines -> seconds

    def busy_fraction(self, kind: EventKind) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy.get(kind.value, 0.0) / self.makespan

    @property
    def serial_fraction(self) -> float:
        """Share of wall time with at most one engine active."""
        if self.makespan <= 0:
            return 0.0
        return (self.overlap_histogram.get(0, 0.0)
                + self.overlap_histogram.get(1, 0.0)) / self.makespan

    @property
    def overlap_fraction(self) -> float:
        """Share of wall time with two or more engines active."""
        if self.makespan <= 0:
            return 0.0
        return sum(v for k, v in self.overlap_histogram.items()
                   if k >= 2) / self.makespan

    @property
    def pipeline_efficiency(self) -> float:
        """Sum of engine busy time / (makespan * engines used): 1.0 means
        every used engine was busy the whole time."""
        used = [b for b in self.busy.values() if b > 0]
        if not used or self.makespan <= 0:
            return 0.0
        return sum(used) / (self.makespan * len(used))


def analyze(timeline: Timeline) -> UtilizationReport:
    """Build the utilization report for a timeline."""
    if not timeline.events:
        return UtilizationReport(0.0, {}, {})
    t0 = min(e.start for e in timeline.events)
    t1 = max(e.end for e in timeline.events)
    makespan = t1 - t0

    busy = {kind.value: timeline.busy_time(kind) for kind in ENGINE_KINDS
            if timeline.filter(kind)}

    # overlap histogram by sweeping event boundaries
    boundaries: list[tuple[float, int]] = []
    for ev in timeline.events:
        if ev.kind not in ENGINE_KINDS:
            continue
        boundaries.append((ev.start, +1))
        boundaries.append((ev.end, -1))
    boundaries.sort()
    histogram: dict[int, float] = {}
    active = 0
    prev = t0
    for t, delta in boundaries:
        if t > prev:
            histogram[active] = histogram.get(active, 0.0) + (t - prev)
            prev = t
        active += delta
    if t1 > prev:
        histogram[active] = histogram.get(active, 0.0) + (t1 - prev)

    return UtilizationReport(makespan=makespan, busy=busy,
                             overlap_histogram=histogram)


def describe(report: UtilizationReport) -> str:
    lines = [f"makespan: {report.makespan*1e3:.2f} ms"]
    for kind in ENGINE_KINDS:
        frac = report.busy_fraction(kind)
        if frac > 0:
            lines.append(f"  {kind.value:7s} busy {frac*100:5.1f}%")
    for k in sorted(report.overlap_histogram):
        share = report.overlap_histogram[k] / report.makespan * 100
        lines.append(f"  {k} engine(s) active: {share:5.1f}% of the time")
    lines.append(f"  pipeline efficiency: {report.pipeline_efficiency*100:.1f}%")
    return "\n".join(lines)

"""PCIe 2.0 transfer-time model (paper Fig 4(b)).

The model captures the four measured curves -- {pinned, paged} x {H2D, D2H}
-- with three effects:

1. a fixed per-transfer latency (driver + DMA setup),
2. a bandwidth ramp for small transfers (half-saturation size), and
3. for pinned memory, a mild degradation at very large sizes ("the lower OS
   performance caused by large amount of pinned memory").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .calibration import PcieCalibration


class Direction(enum.Enum):
    H2D = "h2d"  # CPU writes GPU
    D2H = "d2h"  # CPU reads GPU


class HostMemory(enum.Enum):
    PINNED = "pinned"
    PAGED = "paged"


@dataclass(frozen=True)
class PcieModel:
    calib: PcieCalibration

    def _asymptotic_bw(self, direction: Direction, memory: HostMemory) -> float:
        c = self.calib
        table = {
            (Direction.H2D, HostMemory.PINNED): c.pinned_h2d_bw,
            (Direction.D2H, HostMemory.PINNED): c.pinned_d2h_bw,
            (Direction.H2D, HostMemory.PAGED): c.paged_h2d_bw,
            (Direction.D2H, HostMemory.PAGED): c.paged_d2h_bw,
        }
        return table[(direction, memory)]

    def bandwidth(self, nbytes: float, direction: Direction, memory: HostMemory) -> float:
        """Effective bandwidth (bytes/s) for a transfer of `nbytes`.

        Excludes the fixed latency term; see :meth:`transfer_time` for the
        full cost, and :meth:`effective_bandwidth` for the end-to-end value
        the Fig 4(b) bench plots.
        """
        if nbytes <= 0:
            return self._asymptotic_bw(direction, memory)
        c = self.calib
        bw = self._asymptotic_bw(direction, memory)
        # small-transfer ramp
        bw *= nbytes / (nbytes + c.half_saturation_bytes)
        # large pinned-allocation degradation
        if memory is HostMemory.PINNED and nbytes > c.pinned_degradation_onset_bytes:
            over = nbytes - c.pinned_degradation_onset_bytes
            frac = min(1.0, over / c.pinned_degradation_span_bytes)
            bw *= 1.0 - c.pinned_degradation * frac
        return bw

    def transfer_time(self, nbytes: float, direction: Direction, memory: HostMemory,
                      host_slowdown: float = 1.0) -> float:
        """Wall-clock seconds to move `nbytes` across PCIe.

        ``host_slowdown`` models a loaded host slowing the staging path
        (fault injection, see :mod:`repro.faults`): paged transfers bounce
        through a host buffer whose memcpy stretches by that factor, while
        pinned transfers DMA directly and only pay it on the setup latency.
        """
        if nbytes <= 0:
            return 0.0
        t = self.calib.latency_s + nbytes / self.bandwidth(nbytes, direction, memory)
        if self.calib.host_share_bw is not None:
            # shared-host contention is a *throughput cap*, not a link
            # property: the transfer cannot stream faster than this
            # device's share of host DRAM bandwidth, but the per-link
            # latency and small-transfer knee are unchanged by neighbours
            t = max(t, self.calib.latency_s + nbytes / self.calib.host_share_bw)
        if host_slowdown > 1.0:
            if memory is HostMemory.PAGED:
                t += (host_slowdown - 1.0) * nbytes / self.bandwidth(
                    nbytes, direction, memory)
            else:
                t += (host_slowdown - 1.0) * self.calib.latency_s
        return t

    def effective_bandwidth(
        self, nbytes: float, direction: Direction, memory: HostMemory
    ) -> float:
        """End-to-end bandwidth including latency (what bandwidthTest reports)."""
        t = self.transfer_time(nbytes, direction, memory)
        return nbytes / t if t > 0 else 0.0

"""Device and platform description (the paper's Table II environment)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from .calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel configuration."""

    ctas_per_sm: int
    resident_threads: int
    limited_by: str
    #: the SM's resident-thread ceiling (from the device that resolved this);
    #: 0 when unknown, which pins the fraction to 0.0
    max_threads_per_sm: int = 0

    @property
    def occupancy_fraction(self) -> float:
        """Resident threads as a fraction of the SM's thread ceiling."""
        if self.max_threads_per_sm <= 0:
            return 0.0
        return min(1.0, self.resident_threads / self.max_threads_per_sm)


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated GPU device.

    Wraps the calibration constants with derived quantities used by the
    timing model: occupancy resolution, utilization scaling, and the copy /
    compute engine counts that the discrete-event engine schedules against.
    The C2070 has two copy engines, so one H2D transfer, one D2H transfer
    and one kernel can be in flight simultaneously (paper SS IV-B).
    """

    calib: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)
    num_copy_engines: int = 2

    def __hash__(self) -> int:
        # cache the (recursive, calibration-deep) frozen-dataclass hash:
        # the memoized occupancy/utilization lookups below hash the device
        # on every kernel dispatch in the DES hot loop
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.calib, self.num_copy_engines))
            object.__setattr__(self, "_hash", h)
        return h

    # -- basic properties -------------------------------------------------
    @property
    def name(self) -> str:
        return self.calib.gpu.name

    @property
    def global_mem_bytes(self) -> int:
        return self.calib.gpu.global_mem_bytes

    @property
    def mem_bw(self) -> float:
        return self.calib.gpu.mem_bw

    @property
    def inst_rate(self) -> float:
        return self.calib.gpu.inst_rate

    @property
    def num_sms(self) -> int:
        return self.calib.gpu.num_sms

    @property
    def kernel_launch_s(self) -> float:
        return self.calib.gpu.kernel_launch_s

    # -- occupancy ---------------------------------------------------------
    def occupancy(
        self,
        threads_per_cta: int,
        regs_per_thread: int,
        shared_bytes_per_cta: int = 0,
    ) -> Occupancy:
        """Resolve how many CTAs of this shape fit on one SM.

        Mirrors the Fermi occupancy calculation: the binding constraint is
        whichever of registers, threads, CTA-slots, or shared memory runs
        out first.  Memoized: the DES hot loop resolves the same handful
        of launch shapes for every kernel dispatch.
        """
        return _occupancy(self, int(threads_per_cta), int(regs_per_thread),
                          int(shared_bytes_per_cta))

    def _occupancy_uncached(
        self,
        threads_per_cta: int,
        regs_per_thread: int,
        shared_bytes_per_cta: int = 0,
    ) -> Occupancy:
        g = self.calib.gpu
        threads_per_cta = max(1, int(threads_per_cta))
        regs_per_thread = max(1, min(int(regs_per_thread), g.max_regs_per_thread))

        by_threads = g.max_threads_per_sm // threads_per_cta
        by_regs = g.regs_per_sm // (regs_per_thread * threads_per_cta)
        by_slots = g.max_ctas_per_sm
        by_shared = (
            g.shared_mem_per_sm // shared_bytes_per_cta
            if shared_bytes_per_cta > 0
            else by_slots
        )
        limits = {
            "threads": by_threads,
            "registers": by_regs,
            "cta_slots": by_slots,
            "shared_memory": by_shared,
        }
        limiter = min(limits, key=lambda k: limits[k])
        ctas = max(0, limits[limiter])
        return Occupancy(
            ctas_per_sm=ctas,
            resident_threads=ctas * threads_per_cta,
            limited_by=limiter,
            max_threads_per_sm=g.max_threads_per_sm,
        )

    # -- utilization -------------------------------------------------------
    def utilization(self, total_threads: int, granted_sms: int | None = None,
                    kind: str = "inst") -> float:
        """Fraction of peak throughput achievable with `total_threads` live.

        Throughput ramps linearly with resident threads until the
        saturation point, then is flat.  Instruction throughput
        (``kind="inst"``) needs ~2/3 residency to hide pipeline latency;
        memory bandwidth (``kind="mem"``) saturates much earlier.  When
        only a subset of SMs is granted (concurrent kernels), peak scales
        with the granted fraction.  Memoized like :meth:`occupancy`.
        """
        return _utilization(self, total_threads, granted_sms, kind)

    def _utilization_uncached(self, total_threads: int,
                              granted_sms: int | None = None,
                              kind: str = "inst") -> float:
        g = self.calib.gpu
        sms = self.num_sms if granted_sms is None else max(1, min(granted_sms, self.num_sms))
        sm_frac = sms / self.num_sms
        residency = (g.saturation_residency if kind == "inst"
                     else g.saturation_residency_mem)
        saturate_at = residency * g.max_resident_threads * sm_frac
        if saturate_at <= 0:
            return sm_frac
        ramp = min(1.0, total_threads / saturate_at)
        return sm_frac * ramp

    def sms_needed(self, num_ctas: int, occ: Occupancy) -> int:
        """SMs needed to make all CTAs of a launch co-resident (capped)."""
        if occ.ctas_per_sm <= 0:
            return self.num_sms
        return min(self.num_sms, max(1, math.ceil(num_ctas / occ.ctas_per_sm)))


@lru_cache(maxsize=4096)
def _occupancy(device: DeviceSpec, threads_per_cta: int, regs_per_thread: int,
               shared_bytes_per_cta: int) -> Occupancy:
    return device._occupancy_uncached(
        threads_per_cta, regs_per_thread, shared_bytes_per_cta)


@lru_cache(maxsize=8192)
def _utilization(device: DeviceSpec, total_threads: int,
                 granted_sms: int | None, kind: str) -> float:
    return device._utilization_uncached(total_threads, granted_sms, kind)


def describe_environment(device: DeviceSpec) -> str:
    """Render the Table II experiment environment for bench headers."""
    c = device.calib
    lines = [
        "Experiment environment (simulated, per paper Table II):",
        f"  CPU   : {c.cpu.name}",
        f"  Memory: {c.cpu.host_mem_bytes >> 30} GB host",
        f"  GPU   : {c.gpu.name}, "
        f"{c.gpu.global_mem_bytes >> 30} GB device memory, "
        f"{c.gpu.num_sms * c.gpu.cores_per_sm} cores @ "
        f"{c.gpu.clock_hz / 1e9:.2f} GHz",
        f"  PCIe  : 2.0 x16 model, pinned H2D "
        f"{c.pcie.pinned_h2d_bw / 1e9:.1f} GB/s asymptotic",
    ]
    return "\n".join(lines)

"""PCIe data-compression model (the He et al. alternative).

The paper's related work notes that He et al. "suggest the use of data
compression techniques to reduce the amount of transfered data" as a
response to the same PCIe bottleneck fusion/fission attack.  This module
models that alternative so the ablation bench can compare and *combine*
the two approaches: transfers move ``bytes / ratio``; a decompression
kernel is charged on the device after each download (and a host-side
compression cost before each upload, if the data is not stored
compressed).
"""

from __future__ import annotations

from dataclasses import dataclass

from .compute import KernelLaunchSpec, default_grid
from .device import DeviceSpec


@dataclass(frozen=True)
class CompressionScheme:
    """One compression codec's cost/benefit profile.

    Ratios and per-element costs are representative of the schemes the
    GPU-compression literature (Fang/He/Luo, VLDB'10) evaluates on TPC-H
    columns; NONE is the identity codec.
    """

    name: str
    ratio: float                      # uncompressed / compressed bytes
    decompress_insts_per_elem: float  # GPU-side unpack cost
    host_compress_bw: float = 3.0e9   # host-side pack throughput (bytes/s)

    def __post_init__(self):
        if self.ratio < 1.0:
            raise ValueError(f"compression ratio must be >= 1, got {self.ratio}")

    def wire_bytes(self, nbytes: float) -> float:
        return nbytes / self.ratio

    def decompress_spec(self, n_elements: int, row_nbytes: int,
                        device: DeviceSpec) -> KernelLaunchSpec:
        """The device-side decompression kernel for one buffer."""
        ctas, threads = default_grid(n_elements, device)
        wire = self.wire_bytes(n_elements * row_nbytes)
        return KernelLaunchSpec(
            name=f"decompress.{self.name}",
            num_elements=n_elements,
            num_ctas=ctas,
            threads_per_cta=threads,
            regs_per_thread=12,
            bytes_read=wire,
            bytes_written=float(n_elements * row_nbytes),
            instructions=self.decompress_insts_per_elem * n_elements,
        )

    def host_compress_time(self, nbytes: float) -> float:
        """Host CPU time to pack a buffer before upload."""
        if self.ratio == 1.0:
            return 0.0
        return nbytes / self.host_compress_bw


NONE = CompressionScheme("none", ratio=1.0, decompress_insts_per_elem=0.0)
#: run-length encoding on sorted/low-cardinality columns
RLE = CompressionScheme("rle", ratio=2.5, decompress_insts_per_elem=10.0)
#: dictionary encoding (fixed narrow codes)
DICT = CompressionScheme("dict", ratio=1.8, decompress_insts_per_elem=5.0)
#: bit packing of small-domain integers
BITPACK = CompressionScheme("bitpack", ratio=2.0, decompress_insts_per_elem=8.0)

SCHEMES = {s.name: s for s in (NONE, RLE, DICT, BITPACK)}

"""Discrete-event simulation of a CUDA-stream capable device.

Models the NVIDIA C2070 concurrency envelope the paper exploits (SS IV-B):

* commands within one stream execute in order;
* commands in different streams may overlap;
* one H2D transfer, one D2H transfer (two copy engines) and kernels (SM
  pool) can be in flight simultaneously;
* concurrent kernels partition the SM pool and pay a small interference
  penalty (Fig 12).

Commands optionally carry a *thunk* -- a Python callable that performs the
functional (NumPy) work when the command completes, so logical results
materialize in simulated-time order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SchedulingError
from .compute import CONCURRENT_PENALTY, KernelLaunchSpec, kernel_duration, sms_requested
from .device import DeviceSpec
from .pcie import Direction, HostMemory, PcieModel
from .timeline import EventKind, Timeline

Thunk = Callable[[], None]

#: global enqueue counter: the engine dispatches ready commands in enqueue
#: order (FIFO across streams), which is how the CUDA driver arbitrates
#: same-engine work queued to different streams.
_ENQUEUE_SEQ = itertools.count()


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

@dataclass
class Command:
    tag: str = ""
    thunk: Thunk | None = None
    seq: int = -1  # stamped at enqueue time


@dataclass
class TransferCommand(Command):
    nbytes: float = 0.0
    direction: Direction = Direction.H2D
    memory: HostMemory = HostMemory.PINNED


@dataclass
class KernelCommand(Command):
    spec: KernelLaunchSpec | None = None


@dataclass
class HostCommand(Command):
    duration: float = 0.0


@dataclass
class SignalEventCommand(Command):
    event_id: int = 0


@dataclass
class WaitEventCommand(Command):
    event_id: int = 0


@dataclass
class SimStream:
    """An in-order command queue (one simulated CUDA stream)."""

    stream_id: int
    commands: list[Command] = field(default_factory=list)

    def enqueue(self, cmd: Command) -> "SimStream":
        cmd.seq = next(_ENQUEUE_SEQ)
        self.commands.append(cmd)
        return self

    def h2d(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "h2d", thunk: Thunk | None = None) -> "SimStream":
        return self.enqueue(TransferCommand(
            tag=tag, thunk=thunk, nbytes=nbytes,
            direction=Direction.H2D, memory=memory))

    def d2h(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "d2h", thunk: Thunk | None = None) -> "SimStream":
        return self.enqueue(TransferCommand(
            tag=tag, thunk=thunk, nbytes=nbytes,
            direction=Direction.D2H, memory=memory))

    def kernel(self, spec: KernelLaunchSpec,
               tag: str | None = None, thunk: Thunk | None = None) -> "SimStream":
        return self.enqueue(KernelCommand(
            tag=tag if tag is not None else spec.name, thunk=thunk, spec=spec))

    def host(self, duration: float, tag: str = "host",
             thunk: Thunk | None = None) -> "SimStream":
        return self.enqueue(HostCommand(tag=tag, thunk=thunk, duration=duration))

    def signal(self, event_id: int, tag: str | None = None) -> "SimStream":
        return self.enqueue(SignalEventCommand(
            tag=tag if tag is not None else f"signal:{event_id}",
            event_id=event_id))

    def wait_event(self, event_id: int, tag: str | None = None) -> "SimStream":
        return self.enqueue(WaitEventCommand(
            tag=tag if tag is not None else f"wait:{event_id}",
            event_id=event_id))


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

@dataclass
class _Running:
    end: float
    stream_idx: int
    cmd: Command
    granted_sms: int = 0


class SimEngine:
    """Runs a set of :class:`SimStream` queues to completion.

    Returns a :class:`Timeline` of everything that happened.  The engine is
    deterministic: ties are broken by stream id.
    """

    def __init__(self, device: DeviceSpec, pcie: PcieModel | None = None,
                 check: bool = False):
        self.device = device
        self.pcie = pcie or PcieModel(device.calib.pcie)
        self.check = check
        self._event_counter = itertools.count()

    def new_event_id(self) -> int:
        return next(self._event_counter)

    # -- main loop ----------------------------------------------------------
    def run(self, streams: list[SimStream], timeline: Timeline | None = None,
            start_time: float = 0.0) -> Timeline:
        tl = timeline if timeline is not None else Timeline()
        now = start_time
        cursors = [0] * len(streams)          # next command index per stream
        blocked_until_done = [False] * len(streams)
        running: list[tuple[float, int, _Running]] = []  # heap by end time
        seq = itertools.count()
        signaled: set[int] = set()

        h2d_busy = False
        d2h_busy = False
        host_busy = False
        free_sms = self.device.num_sms
        kernels_in_flight = 0

        def pending() -> bool:
            return any(cursors[i] < len(s.commands) for i, s in enumerate(streams))

        while pending() or running:
            dispatched = True
            while dispatched:
                dispatched = False
                # FIFO across streams: consider stream heads in enqueue order
                heads = sorted(
                    (i for i, s in enumerate(streams)
                     if not blocked_until_done[i] and cursors[i] < len(s.commands)),
                    key=lambda i: streams[i].commands[cursors[i]].seq,
                )
                for i in heads:
                    stream = streams[i]
                    cmd = stream.commands[cursors[i]]
                    # -- zero-duration control commands ----------------------
                    if isinstance(cmd, SignalEventCommand):
                        signaled.add(cmd.event_id)
                        tl.add(now, now, EventKind.SYNC, cmd.tag,
                               stream=stream.stream_id)
                        cursors[i] += 1
                        dispatched = True
                        continue
                    if isinstance(cmd, WaitEventCommand):
                        if cmd.event_id in signaled:
                            tl.add(now, now, EventKind.SYNC, cmd.tag,
                                   stream=stream.stream_id)
                            cursors[i] += 1
                            dispatched = True
                        continue
                    # -- resource-bound commands -----------------------------
                    if isinstance(cmd, TransferCommand):
                        if cmd.direction is Direction.H2D and h2d_busy:
                            continue
                        if cmd.direction is Direction.D2H and d2h_busy:
                            continue
                        dur = self.pcie.transfer_time(
                            cmd.nbytes, cmd.direction, cmd.memory)
                        if cmd.direction is Direction.H2D:
                            h2d_busy = True
                        else:
                            d2h_busy = True
                        run = _Running(end=now + dur, stream_idx=i, cmd=cmd)
                    elif isinstance(cmd, KernelCommand):
                        if cmd.spec is None:
                            raise SchedulingError(f"kernel command {cmd.tag} has no spec")
                        if free_sms <= 0:
                            continue
                        want = sms_requested(self.device, cmd.spec)
                        grant = min(want, free_sms)
                        concurrent = kernels_in_flight > 0
                        dur = kernel_duration(
                            self.device, cmd.spec,
                            granted_sms=grant, concurrent=concurrent)
                        free_sms -= grant
                        kernels_in_flight += 1
                        run = _Running(end=now + dur, stream_idx=i,
                                       cmd=cmd, granted_sms=grant)
                    elif isinstance(cmd, HostCommand):
                        if host_busy:
                            continue
                        host_busy = True
                        run = _Running(end=now + cmd.duration, stream_idx=i, cmd=cmd)
                    else:
                        raise SchedulingError(f"unknown command type: {cmd!r}")

                    blocked_until_done[i] = True
                    heapq.heappush(running, (run.end, next(seq), run))
                    run.start = now  # type: ignore[attr-defined]
                    dispatched = True

            if not running:
                if pending():
                    raise SchedulingError(
                        "deadlock: streams pending but nothing can be dispatched "
                        "(wait on an event that is never signaled?)")
                break

            # advance to next completion; complete everything ending then
            end_time, _, run = heapq.heappop(running)
            completions = [run]
            while running and running[0][0] == end_time:
                completions.append(heapq.heappop(running)[2])
            now = end_time

            for run in completions:
                cmd = run.cmd
                start = getattr(run, "start")
                if isinstance(cmd, TransferCommand):
                    kind = EventKind.H2D if cmd.direction is Direction.H2D else EventKind.D2H
                    tl.add(start, now, kind, cmd.tag,
                           stream=streams[run.stream_idx].stream_id,
                           nbytes=cmd.nbytes)
                    if cmd.direction is Direction.H2D:
                        h2d_busy = False
                    else:
                        d2h_busy = False
                elif isinstance(cmd, KernelCommand):
                    tl.add(start, now, EventKind.KERNEL, cmd.tag,
                           stream=streams[run.stream_idx].stream_id,
                           nbytes=cmd.spec.total_traffic if cmd.spec else 0.0,
                           sms=run.granted_sms)
                    free_sms += run.granted_sms
                    kernels_in_flight -= 1
                elif isinstance(cmd, HostCommand):
                    tl.add(start, now, EventKind.HOST, cmd.tag,
                           stream=streams[run.stream_idx].stream_id)
                    host_busy = False
                if cmd.thunk is not None:
                    cmd.thunk()
                blocked_until_done[run.stream_idx] = False
                cursors[run.stream_idx] += 1

        if self.check:
            # imported lazily: repro.validate depends on this module's package
            from ..validate import validate_timeline
            validate_timeline(tl, self.device).raise_if_failed()
        return tl


__all__ = [
    "Command", "TransferCommand", "KernelCommand", "HostCommand",
    "SignalEventCommand", "WaitEventCommand", "SimStream", "SimEngine",
    "CONCURRENT_PENALTY",
]

"""Discrete-event simulation of a CUDA-stream capable device.

Models the NVIDIA C2070 concurrency envelope the paper exploits (SS IV-B):

* commands within one stream execute in order;
* commands in different streams may overlap;
* one H2D transfer, one D2H transfer (two copy engines) and kernels (SM
  pool) can be in flight simultaneously;
* concurrent kernels partition the SM pool and pay a small interference
  penalty (Fig 12).

Commands optionally carry a *thunk* -- a Python callable that performs the
functional (NumPy) work when the command completes, so logical results
materialize in simulated-time order.

Fault injection (docs/FAULTS.md): when constructed with a
:class:`~repro.faults.injector.FaultInjector`, the engine consults it at
dispatch time.  A transient transfer/launch failure occupies its engine for
the detection latency, is logged as a ``fault.``-prefixed event, and the
command is retried in place after an exponential backoff; a stall past the
timeout is abandoned (``fault.stall.`` event) and the command re-issued,
its completion logged on a fresh replacement stream id.  Thunks only run on
success, so functional results are never produced twice.  When retries are
exhausted a typed :class:`~repro.errors.FaultError` escapes and the streams
are pruned to exactly the commands that have not completed, so callers can
surface or re-run the remaining work.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..errors import (
    FaultError,
    KernelLaunchFaultError,
    SchedulingError,
    StreamStallError,
    TransferFaultError,
)
from .compute import CONCURRENT_PENALTY, KernelLaunchSpec, kernel_duration, sms_requested
from .device import DeviceSpec
from .pcie import Direction, HostMemory, PcieModel
from .timeline import EventKind, Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.injector import FaultInjector

Thunk = Callable[[], None]

#: global enqueue counter: the engine dispatches ready commands in enqueue
#: order (FIFO across streams), which is how the CUDA driver arbitrates
#: same-engine work queued to different streams.
_ENQUEUE_SEQ = itertools.count()


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class Command:
    """Base simulated command.  The whole hierarchy is slotted: serve-scale
    DES runs enqueue hundreds of thousands of commands, and per-command
    ``__dict__`` allocation dominated the hot loop before slotting
    (BENCH_workers.json tracks the resulting events/sec)."""

    tag: str = ""
    thunk: Thunk | None = None
    seq: int = -1  # stamped at enqueue time
    #: logical buffer names this command reads / writes.  Purely
    #: declarative -- the engine ignores them; the static race detector
    #: (:mod:`repro.analyze`) uses them to find unordered conflicting
    #: accesses before anything runs.
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()


@dataclass(slots=True)
class TransferCommand(Command):
    nbytes: float = 0.0
    direction: Direction = Direction.H2D
    memory: HostMemory = HostMemory.PINNED


@dataclass(slots=True)
class KernelCommand(Command):
    spec: KernelLaunchSpec | None = None


@dataclass(slots=True)
class HostCommand(Command):
    duration: float = 0.0


@dataclass(slots=True)
class SignalEventCommand(Command):
    event_id: int = 0


@dataclass(slots=True)
class WaitEventCommand(Command):
    event_id: int = 0


@dataclass(slots=True)
class SimStream:
    """An in-order command queue (one simulated CUDA stream)."""

    stream_id: int
    commands: list[Command] = field(default_factory=list)

    def enqueue(self, cmd: Command) -> "SimStream":
        cmd.seq = next(_ENQUEUE_SEQ)
        self.commands.append(cmd)
        return self

    def h2d(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "h2d", thunk: Thunk | None = None,
            reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
            ) -> "SimStream":
        return self.enqueue(TransferCommand(
            tag=tag, thunk=thunk, nbytes=nbytes,
            direction=Direction.H2D, memory=memory,
            reads=reads, writes=writes))

    def d2h(self, nbytes: float, memory: HostMemory = HostMemory.PINNED,
            tag: str = "d2h", thunk: Thunk | None = None,
            reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
            ) -> "SimStream":
        return self.enqueue(TransferCommand(
            tag=tag, thunk=thunk, nbytes=nbytes,
            direction=Direction.D2H, memory=memory,
            reads=reads, writes=writes))

    def kernel(self, spec: KernelLaunchSpec,
               tag: str | None = None, thunk: Thunk | None = None,
               reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
               ) -> "SimStream":
        return self.enqueue(KernelCommand(
            tag=tag if tag is not None else spec.name, thunk=thunk, spec=spec,
            reads=reads, writes=writes))

    def host(self, duration: float, tag: str = "host",
             thunk: Thunk | None = None,
             reads: tuple[str, ...] = (), writes: tuple[str, ...] = ()
             ) -> "SimStream":
        return self.enqueue(HostCommand(
            tag=tag, thunk=thunk, duration=duration,
            reads=reads, writes=writes))

    def signal(self, event_id: int, tag: str | None = None) -> "SimStream":
        return self.enqueue(SignalEventCommand(
            tag=tag if tag is not None else f"signal:{event_id}",
            event_id=event_id))

    def wait_event(self, event_id: int, tag: str | None = None) -> "SimStream":
        return self.enqueue(WaitEventCommand(
            tag=tag if tag is not None else f"wait:{event_id}",
            event_id=event_id))


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class _Running:
    end: float
    stream_idx: int
    cmd: Command
    granted_sms: int = 0
    #: this attempt was decided to fail (transient fault or stall timeout)
    failed: bool = False
    #: the failure is a stall abandonment (re-issue on a fresh stream)
    stalled: bool = False
    #: dispatch time, stamped when the attempt is pushed on the heap
    start: float = 0.0


class SimEngine:
    """Runs a set of :class:`SimStream` queues to completion.

    Returns a :class:`Timeline` of everything that happened.  The engine is
    deterministic: ties are broken by stream id.  An optional
    :class:`~repro.faults.injector.FaultInjector` makes commands fail,
    stall, or slow down on purpose; the engine then repairs the schedule
    with bounded retries (see module docstring).
    """

    def __init__(self, device: DeviceSpec, pcie: PcieModel | None = None,
                 check: bool = False, faults: "FaultInjector | None" = None):
        self.device = device
        self.pcie = pcie or PcieModel(device.calib.pcie)
        self.check = check
        self.faults = faults
        self._event_counter = itertools.count()

    def new_event_id(self) -> int:
        return next(self._event_counter)

    # -- fault hooks --------------------------------------------------------
    def _fault_adjust(self, cmd: Command, dur: float
                      ) -> tuple[float, bool, bool]:
        """Apply injected faults to a dispatching command.

        Returns ``(attempt_duration, failed, stalled)``.  At most one fault
        fires per attempt: hard failures are probed first, then stalls
        (transfers/kernels) or slowdowns (host work).
        """
        fi = self.faults
        if fi is None:
            return dur, False, False
        retry = fi.plan.retry
        site = cmd.tag
        if isinstance(cmd, TransferCommand):
            if fi.transfer_fault(site, h2d=cmd.direction is Direction.H2D):
                detect = max(self.pcie.calib.latency_s,
                             dur * retry.transfer_fail_fraction)
                return detect, True, False
            factor = fi.stall(site)
            if factor is not None:
                stalled_dur = dur * factor
                if stalled_dur > retry.stall_timeout_s:
                    return retry.stall_timeout_s, True, True
                return stalled_dur, False, False
            factor = fi.host_slowdown(site)
            if factor is not None:
                # loaded host: the staging path (paged bounce buffer /
                # pinned setup) stretches -- see PcieModel.transfer_time
                return self.pcie.transfer_time(
                    cmd.nbytes, cmd.direction, cmd.memory,
                    host_slowdown=factor), False, False
        elif isinstance(cmd, KernelCommand):
            if fi.kernel_fault(site):
                return retry.kernel_fail_latency_s, True, False
            factor = fi.stall(site)
            if factor is not None:
                stalled_dur = dur * factor
                if stalled_dur > retry.stall_timeout_s:
                    return retry.stall_timeout_s, True, True
                return stalled_dur, False, False
        elif isinstance(cmd, HostCommand):
            factor = fi.host_slowdown(site)
            if factor is not None:
                return dur * factor, False, False
        return dur, False, False

    @staticmethod
    def _fault_error(cmd: Command, attempts: int) -> FaultError:
        if isinstance(cmd, TransferCommand):
            return TransferFaultError(cmd.tag, attempts)
        if isinstance(cmd, KernelCommand):
            return KernelLaunchFaultError(cmd.tag, attempts)
        return FaultError(cmd.tag, attempts)

    # -- main loop ----------------------------------------------------------
    def run(self, streams: list[SimStream], timeline: Timeline | None = None,
            start_time: float = 0.0) -> Timeline:
        cursors = [0] * len(streams)          # next command index per stream
        try:
            return self._run(streams, cursors, timeline, start_time)
        except FaultError:
            # leave each queue holding exactly the commands that did not
            # complete, so callers (e.g. StreamPool) can surface or re-run
            # the remaining work instead of losing it
            for i, s in enumerate(streams):
                del s.commands[:cursors[i]]
            raise

    def _run(self, streams: list[SimStream], cursors: list[int],
             timeline: Timeline | None = None,
             start_time: float = 0.0) -> Timeline:
        tl = timeline if timeline is not None else Timeline()
        now = start_time
        blocked_until_done = [False] * len(streams)
        #: earliest simulated time each stream may dispatch again (backoff)
        ready_at = [start_time] * len(streams)
        running: list[tuple[float, int, _Running]] = []  # heap by end time
        seq = itertools.count()
        signaled: set[int] = set()

        #: failed attempts per command (id-keyed; commands are unique objects)
        attempts: dict[int, int] = {}
        #: commands abandoned by a stall, mapped to their replacement
        #: (fresh) stream id for the re-issued completion event
        reissued_stream: dict[int, int] = {}
        replacement_ids = itertools.count(
            max((s.stream_id for s in streams), default=0) + 1)
        retry = self.faults.plan.retry if self.faults is not None else None

        h2d_busy = False
        d2h_busy = False
        host_busy = False
        free_sms = self.device.num_sms
        kernels_in_flight = 0

        #: commands not yet completed (cursor not yet advanced past them).
        #: Maintained incrementally so the outer loop does not rescan every
        #: stream per iteration -- the dominant cost at serve scale.
        remaining = sum(len(s.commands) - cursors[i]
                        for i, s in enumerate(streams))
        num_streams = len(streams)

        while remaining or running:
            dispatched = True
            while dispatched:
                dispatched = False
                # FIFO across streams: consider stream heads in enqueue
                # order.  seq values are globally unique, so sorting
                # (seq, i) pairs reproduces the old lambda-keyed order
                # without a per-element key call.
                heads = sorted(
                    (streams[i].commands[cursors[i]].seq, i)
                    for i in range(num_streams)
                    if not blocked_until_done[i]
                    and cursors[i] < len(streams[i].commands)
                    and ready_at[i] <= now
                )
                for _, i in heads:
                    stream = streams[i]
                    cmd = stream.commands[cursors[i]]
                    # -- resource-bound commands (the common case) -----------
                    if isinstance(cmd, TransferCommand):
                        if cmd.direction is Direction.H2D and h2d_busy:
                            continue
                        if cmd.direction is Direction.D2H and d2h_busy:
                            continue
                        dur = self.pcie.transfer_time(
                            cmd.nbytes, cmd.direction, cmd.memory)
                        dur, failed, stalled = self._fault_adjust(cmd, dur)
                        if cmd.direction is Direction.H2D:
                            h2d_busy = True
                        else:
                            d2h_busy = True
                        run = _Running(end=now + dur, stream_idx=i, cmd=cmd,
                                       failed=failed, stalled=stalled)
                    elif isinstance(cmd, KernelCommand):
                        if cmd.spec is None:
                            raise SchedulingError(f"kernel command {cmd.tag} has no spec")
                        if free_sms <= 0:
                            continue
                        want = sms_requested(self.device, cmd.spec)
                        grant = min(want, free_sms)
                        concurrent = kernels_in_flight > 0
                        dur = kernel_duration(
                            self.device, cmd.spec,
                            granted_sms=grant, concurrent=concurrent)
                        dur, failed, stalled = self._fault_adjust(cmd, dur)
                        free_sms -= grant
                        kernels_in_flight += 1
                        run = _Running(end=now + dur, stream_idx=i,
                                       cmd=cmd, granted_sms=grant,
                                       failed=failed, stalled=stalled)
                    elif isinstance(cmd, HostCommand):
                        if host_busy:
                            continue
                        dur, failed, stalled = self._fault_adjust(
                            cmd, cmd.duration)
                        host_busy = True
                        run = _Running(end=now + dur, stream_idx=i, cmd=cmd,
                                       failed=failed, stalled=stalled)
                    # -- zero-duration control commands ----------------------
                    elif isinstance(cmd, SignalEventCommand):
                        signaled.add(cmd.event_id)
                        tl.add(now, now, EventKind.SYNC, cmd.tag,
                               stream=stream.stream_id)
                        cursors[i] += 1
                        remaining -= 1
                        dispatched = True
                        continue
                    elif isinstance(cmd, WaitEventCommand):
                        if cmd.event_id in signaled:
                            tl.add(now, now, EventKind.SYNC, cmd.tag,
                                   stream=stream.stream_id)
                            cursors[i] += 1
                            remaining -= 1
                            dispatched = True
                        continue
                    else:
                        raise SchedulingError(f"unknown command type: {cmd!r}")

                    blocked_until_done[i] = True
                    run.start = now
                    heapq.heappush(running, (run.end, next(seq), run))
                    dispatched = True

            if not running:
                # streams may be idle only because of retry backoff: jump
                # simulated time to the earliest ready stream and re-dispatch
                future = [ready_at[i] for i, s in enumerate(streams)
                          if cursors[i] < len(s.commands) and ready_at[i] > now]
                if future:
                    now = min(future)
                    continue
                if remaining:
                    raise SchedulingError(
                        "deadlock: streams pending but nothing can be dispatched "
                        "(wait on an event that is never signaled?)")
                break

            # advance to next completion; complete everything ending then
            end_time, _, run = heapq.heappop(running)
            completions = [run]
            while running and running[0][0] == end_time:
                completions.append(heapq.heappop(running)[2])
            now = end_time

            for run in completions:
                cmd = run.cmd
                start = run.start
                # a command re-issued after a stall completes on its fresh
                # replacement stream; everything else on its own stream
                event_stream = reissued_stream.get(
                    id(cmd), streams[run.stream_idx].stream_id)
                tag = cmd.tag
                if run.failed:
                    tag = ("fault.stall." if run.stalled else "fault.") + tag
                if isinstance(cmd, TransferCommand):
                    kind = EventKind.H2D if cmd.direction is Direction.H2D else EventKind.D2H
                    tl.add(start, now, kind, tag, stream=event_stream,
                           nbytes=cmd.nbytes)
                    if cmd.direction is Direction.H2D:
                        h2d_busy = False
                    else:
                        d2h_busy = False
                elif isinstance(cmd, KernelCommand):
                    tl.add(start, now, EventKind.KERNEL, tag,
                           stream=event_stream,
                           nbytes=cmd.spec.total_traffic if cmd.spec else 0.0,
                           sms=run.granted_sms)
                    free_sms += run.granted_sms
                    kernels_in_flight -= 1
                elif isinstance(cmd, HostCommand):
                    tl.add(start, now, EventKind.HOST, tag,
                           stream=event_stream)
                    host_busy = False
                blocked_until_done[run.stream_idx] = False
                if run.failed:
                    # retry in place: cursor stays, thunk does not run
                    n_failed = attempts[id(cmd)] = attempts.get(id(cmd), 0) + 1
                    assert retry is not None
                    if n_failed > retry.max_retries:
                        if run.stalled:
                            raise StreamStallError(cmd.tag, n_failed)
                        raise self._fault_error(cmd, n_failed)
                    self.faults.note_retry(cmd.tag)
                    if run.stalled:
                        # abandoned past the timeout: re-issue immediately,
                        # completion will be logged on a fresh stream
                        reissued_stream[id(cmd)] = next(replacement_ids)
                        self.faults.note_reissue(cmd.tag)
                    else:
                        ready_at[run.stream_idx] = now + retry.backoff(n_failed)
                    continue
                reissued_stream.pop(id(cmd), None)
                if cmd.thunk is not None:
                    cmd.thunk()
                cursors[run.stream_idx] += 1
                remaining -= 1

        if self.check:
            # imported lazily: repro.validate depends on this module's package
            from ..validate import validate_timeline
            validate_timeline(tl, self.device).raise_if_failed()
        return tl


__all__ = [
    "Command", "TransferCommand", "KernelCommand", "HostCommand",
    "SignalEventCommand", "WaitEventCommand", "SimStream", "SimEngine",
    "CONCURRENT_PENALTY",
]

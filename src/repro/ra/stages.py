"""The multi-stage (CTA-partitioned) operator skeleton of Diamos et al.

Figure 3 of the paper: SELECT runs as partition -> filter -> buffer ->
gather, where the first three stages form one CUDA kernel (one chunk per
CTA) and gather is a second kernel after a global synchronization.  Kernel
fusion chains extra filter stages between partition and buffer (Figure 6).

This module implements those stages *functionally* over NumPy chunks so the
fused and unfused pipelines can be executed and compared bit-for-bit; the
timing layer charges their simulated cost separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RelationError
from .expr import Predicate
from .relation import Relation


def partition(n_rows: int, num_ctas: int) -> list[slice]:
    """Stage 1: split [0, n_rows) into one contiguous chunk per CTA."""
    if num_ctas < 1:
        raise RelationError(f"need at least one CTA, got {num_ctas}")
    bounds = np.linspace(0, n_rows, num_ctas + 1).astype(np.int64)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(num_ctas)]


@dataclass
class CtaBuffer:
    """Stage 3 output of one CTA: its matched row indices (global)."""

    cta: int
    indices: np.ndarray  # global row indices that matched


def filter_stage(rel: Relation, chunk: slice, predicate: Predicate) -> np.ndarray:
    """Stage 2: evaluate the predicate over one CTA's chunk -> local mask."""
    cols = {name: col[chunk] for name, col in rel.columns.items()}
    return np.asarray(predicate.evaluate(cols), dtype=bool)


def buffer_stage(chunk: slice, mask: np.ndarray) -> CtaBuffer:
    """Stage 3: compact matched positions into the CTA's buffer."""
    local = np.nonzero(mask)[0]
    return CtaBuffer(cta=-1, indices=local + chunk.start)


def gather_stage(rel: Relation, buffers: list[CtaBuffer]) -> Relation:
    """Stage 4 (second kernel): exclusive-scan the per-CTA counts and copy
    each CTA's matches to its final position."""
    counts = np.array([len(b.indices) for b in buffers], dtype=np.int64)
    total = int(counts.sum())
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    out_indices = np.empty(total, dtype=np.int64)
    for b, off, cnt in zip(buffers, offsets, counts):
        out_indices[off:off + cnt] = b.indices
    return rel.take(out_indices)


def staged_select(rel: Relation, predicates: list[Predicate], num_ctas: int = 112
                  ) -> Relation:
    """Run one (or a fused chain of) SELECT(s) through the 4-stage pipeline.

    With ``len(predicates) == 1`` this is Figure 3; with more it is the
    *fused* pipeline of Figure 6: each CTA applies every filter to its chunk
    (intermediates stay "in registers" -- here, in the local mask) and only
    one buffer and one gather stage run.
    """
    if not predicates:
        raise RelationError("staged_select needs at least one predicate")
    chunks = partition(rel.num_rows, num_ctas)
    buffers: list[CtaBuffer] = []
    for cta, chunk in enumerate(chunks):
        mask = filter_stage(rel, chunk, predicates[0])
        for pred in predicates[1:]:
            # fused filter stage: only re-tests elements still alive,
            # reading from the chunk (register-resident intermediates)
            cols = {name: col[chunk] for name, col in rel.columns.items()}
            mask &= np.asarray(pred.evaluate(cols), dtype=bool)
        buf = buffer_stage(chunk, mask)
        buf.cta = cta
        buffers.append(buf)
    return gather_stage(rel, buffers)


def unfused_select_chain(rel: Relation, predicates: list[Predicate],
                         num_ctas: int = 112) -> Relation:
    """Back-to-back SELECT kernels, each a full 4-stage pipeline (Figure 3
    repeated) -- the baseline the fused pipeline is checked against."""
    out = rel
    for pred in predicates:
        out = staged_select(out, [pred], num_ctas)
    return out

"""Relational-algebra operators and the columnar relation model (Table I)."""

from .arithmetic import AGG_FUNCS, AggSpec, aggregate, arith
from .gpu_sort import SortStats, expected_merge_passes, staged_sort, staged_unique
from .hash_join import HashTable, build_hash_table, staged_hash_join
from .io import load_relation, save_relation
from .streaming import host_gather, split_rows, streamed_select_chain
from .expr import (
    And,
    BinOp,
    Compare,
    Const,
    Expr,
    Field,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjoin,
)
from .operators import (
    anti_join,
    difference,
    intersection,
    join,
    product,
    project,
    select,
    semi_join,
    union,
)
from .relation import Relation
from .sort import is_sorted, sort, unique
from .stages import (
    CtaBuffer,
    buffer_stage,
    filter_stage,
    gather_stage,
    partition,
    staged_select,
    unfused_select_chain,
)

__all__ = [
    "AGG_FUNCS", "AggSpec", "aggregate", "arith", "And", "BinOp", "Compare",
    "Const", "Expr", "Field", "Not", "Or", "Predicate", "TruePredicate",
    "conjoin", "anti_join", "difference", "intersection", "join", "product",
    "project", "select", "semi_join", "union", "Relation", "is_sorted",
    "sort", "unique", "CtaBuffer", "buffer_stage", "filter_stage",
    "gather_stage", "partition", "staged_select", "unfused_select_chain",
    "SortStats", "expected_merge_passes", "staged_sort", "staged_unique",
    "HashTable", "build_hash_table", "staged_hash_join",
    "load_relation", "save_relation", "host_gather", "split_rows",
    "streamed_select_chain",
]

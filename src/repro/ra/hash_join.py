"""Staged (GPU-style) hash join: build + probe, the shape the cost model
charges.

The JOIN lowering (:mod:`repro.core.opmodels`) models a hash join: a
*build* kernel inserts the right relation into an open-addressing table
(~2x its size), then a fusable *probe* stage looks each left row up.  This
module implements that algorithm functionally -- a linear-probing table in
NumPy arrays, probed CTA-chunk by CTA-chunk through the same
partition/buffer/gather skeleton as SELECT -- and is checked against the
sort-merge reference join.

Duplicate build keys chain within the table (each slot holds one row;
probes walk all matching slots), so the full cross product per key group
is produced, as JOIN requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RelationError
from .relation import Relation
from .stages import partition

#: table slots per build row (the cost model's hash_table_bytes_factor)
TABLE_LOAD_FACTOR = 2.0

_EMPTY = -1


@dataclass
class HashTable:
    """Open-addressing (linear probing) table over 32/64-bit keys."""

    keys: np.ndarray       # key per slot; _EMPTY marks free
    rows: np.ndarray       # right-relation row index per slot
    n_slots: int
    build_probes: int = 0  # insertion probe steps (collision accounting)

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.rows.nbytes)


def build_hash_table(right: Relation, on: str | None = None) -> HashTable:
    """The build kernel: insert every right row."""
    key_name = on if on is not None else right.key
    if key_name not in right.columns:
        raise RelationError(f"build key {key_name!r} missing")
    keys = np.asarray(right.column(key_name), dtype=np.int64)
    n = len(keys)
    n_slots = max(4, int(n * TABLE_LOAD_FACTOR))
    table = HashTable(
        keys=np.full(n_slots, _EMPTY, dtype=np.int64),
        rows=np.full(n_slots, _EMPTY, dtype=np.int64),
        n_slots=n_slots,
    )
    for row, key in enumerate(keys.tolist()):
        slot = hash(key) % n_slots
        while table.keys[slot] != _EMPTY:
            slot = (slot + 1) % n_slots
            table.build_probes += 1
        table.keys[slot] = key
        table.rows[slot] = row
    return table


def _probe_one(table: HashTable, key: int) -> list[int]:
    """All right-row indices whose key matches (linear probe walk)."""
    matches: list[int] = []
    slot = hash(key) % table.n_slots
    while table.keys[slot] != _EMPTY:
        if table.keys[slot] == key:
            matches.append(int(table.rows[slot]))
        slot = (slot + 1) % table.n_slots
    return matches


def staged_hash_join(left: Relation, right: Relation, on: str | None = None,
                     num_ctas: int = 16) -> Relation:
    """Hash join through the staged skeleton.

    Equivalent to :func:`repro.ra.operators.join` up to row order
    (checked by the tests with multiset comparison).
    """
    key_left = on if on is not None else left.key
    key_right = on if on is not None else right.key
    if key_left not in left.columns:
        raise RelationError(f"probe key {key_left!r} missing from left")
    table = build_hash_table(right, on=key_right)

    left_keys = np.asarray(left.column(key_left), dtype=np.int64)
    li_parts: list[int] = []
    ri_parts: list[int] = []
    # probe stage, CTA chunk by CTA chunk (buffer per CTA, gather = concat)
    for chunk in partition(left.num_rows, num_ctas):
        for i in range(chunk.start, chunk.stop):
            for r in _probe_one(table, int(left_keys[i])):
                li_parts.append(i)
                ri_parts.append(r)

    li = np.asarray(li_parts, dtype=np.int64)
    ri = np.asarray(ri_parts, dtype=np.int64)
    cols: dict[str, np.ndarray] = {n: left.column(n)[li] for n in left.fields}
    for n in right.fields:
        if n == key_right:
            continue
        out = n if n not in cols else f"{n}_r"
        cols[out] = right.column(n)[ri]
    if not li_parts:
        # preserve schema for empty results
        cols = {n: left.column(n)[:0] for n in left.fields}
        for n in right.fields:
            if n == key_right:
                continue
            out = n if n not in cols else f"{n}_r"
            cols[out] = right.column(n)[:0]
    return Relation(cols, key=key_left)

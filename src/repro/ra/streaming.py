"""Functional segmented execution: what fission computes, segment by
segment.

Kernel fission (paper SS IV) runs an operator over segments of the input
so transfers pipeline; "since data is transferred to the CPU at different
times, the CPU has to implement a gather stage at the end" (SS IV-C).
This module is the *functional* counterpart: run a SELECT chain (fused or
not) over each segment independently, then perform that CPU-side gather --
and prove the result identical to the unsegmented pipeline, for any
segment size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RelationError
from .expr import Predicate
from .relation import Relation
from .stages import staged_select, unfused_select_chain


@dataclass
class SegmentResult:
    """One segment's output, tagged with its origin for the host gather."""

    index: int
    start_row: int
    relation: Relation


def split_rows(n_rows: int, segment_rows: int) -> list[tuple[int, int]]:
    """(start, length) pairs covering [0, n_rows)."""
    if segment_rows < 1:
        raise RelationError(f"segment_rows must be >= 1, got {segment_rows}")
    out = []
    start = 0
    while start < n_rows:
        length = min(segment_rows, n_rows - start)
        out.append((start, length))
        start += length
    return out


def host_gather(segments: list[SegmentResult]) -> Relation:
    """The CPU-side gather: concatenate segment outputs in segment order.

    Segments may *complete* in any order (the pipeline interleaves them);
    ordering by index restores the canonical output.
    """
    if not segments:
        raise RelationError("nothing to gather")
    ordered = sorted(segments, key=lambda s: s.index)
    first = ordered[0].relation
    cols = {
        name: np.concatenate([s.relation.column(name) for s in ordered])
        for name in first.fields
    }
    return Relation(cols, key=first.key)


def streamed_select_chain(rel: Relation, predicates: list[Predicate],
                          segment_rows: int, fused: bool = True,
                          num_ctas: int = 16) -> Relation:
    """Run a SELECT chain segment by segment + host gather.

    Equivalent to running the chain over the whole relation at once --
    SELECT is elementwise, so segmentation commutes with it (this is
    precisely why fission applies to it, and why SORT cannot fission).
    """
    if not predicates:
        raise RelationError("need at least one predicate")
    segments: list[SegmentResult] = []
    for index, (start, length) in enumerate(split_rows(rel.num_rows,
                                                       segment_rows)):
        chunk = rel.take(np.arange(start, start + length))
        if fused:
            out = staged_select(chunk, predicates, num_ctas=num_ctas)
        else:
            out = unfused_select_chain(chunk, predicates, num_ctas=num_ctas)
        segments.append(SegmentResult(index=index, start_row=start,
                                      relation=out))
    return host_gather(segments)

"""Relation persistence: save/load columnar relations as ``.npz`` files.

Keeps generated TPC-H tables (or any relation) reusable across sessions --
a small adoption utility; the format is one compressed NumPy archive with
a reserved key recording the relation's key field.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import RelationError
from .relation import Relation

_META_KEY = "__repro_key__"


def save_relation(rel: Relation, path: str) -> None:
    """Write the relation to `path` (``.npz`` appended if missing)."""
    for name in rel.fields:
        if name == _META_KEY:
            raise RelationError(f"field name {name!r} is reserved")
    np.savez_compressed(
        path,
        **rel.columns,
        **{_META_KEY: np.array(rel.key)},
    )


def load_relation(path: str) -> Relation:
    """Read a relation previously written by :func:`save_relation`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        names = [n for n in archive.files if n != _META_KEY]
        if not names or _META_KEY not in archive.files:
            raise RelationError(f"{path} is not a saved relation")
        key = str(archive[_META_KEY])
        columns = {n: archive[n] for n in names}
    return Relation(columns, key=key)

"""Staged (GPU-style) sort and unique: the algorithms behind the barrier.

The cost model charges SORT as local-sort + log(n) merge passes over the
data (Diamos et al.'s structure).  This module implements that algorithm
*functionally*, pass by pass, so the barrier operators have a real staged
implementation -- mirroring what :mod:`repro.ra.stages` does for SELECT:

1. **local sort** -- each CTA chunk is sorted independently (one pass);
2. **merge passes** -- pairs of sorted runs merge into double-length runs,
   one full pass over the data per doubling, until one run remains;
3. (unique) **adjacent-difference compact** -- one filter pass keeps each
   first-of-run tuple, using the same buffer/gather skeleton as SELECT.

`staged_sort` is checked against ``np.lexsort`` and `staged_unique`
against the set semantics; the pass counter is checked against the cost
model's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import RelationError
from .relation import Relation
from .rows import pack_rows


@dataclass
class SortStats:
    """Work accounting of one staged sort (compared to the cost model)."""

    n_rows: int
    local_sort_passes: int = 0
    merge_passes: int = 0
    elements_moved: int = 0

    @property
    def total_passes(self) -> int:
        return self.local_sort_passes + self.merge_passes


def _merge_runs(keys: np.ndarray, order: np.ndarray, run_length: int,
                stats: SortStats) -> np.ndarray:
    """One merge pass: merge adjacent sorted runs of `run_length`."""
    n = len(order)
    out = np.empty_like(order)
    pos = 0
    for start in range(0, n, 2 * run_length):
        left = order[start:start + run_length]
        right = order[start + run_length:start + 2 * run_length]
        if len(right) == 0:
            out[pos:pos + len(left)] = left
            pos += len(left)
            continue
        # classic two-finger merge on the packed keys (stable: ties prefer
        # the left run, which holds the earlier original positions)
        li = ri = 0
        lk, rk = keys[left], keys[right]
        while li < len(left) and ri < len(right):
            if rk[ri] < lk[li]:
                out[pos] = right[ri]
                ri += 1
            else:
                out[pos] = left[li]
                li += 1
            pos += 1
        for v in left[li:]:
            out[pos] = v
            pos += 1
        for v in right[ri:]:
            out[pos] = v
            pos += 1
    stats.merge_passes += 1
    stats.elements_moved += n
    return out


def staged_sort(rel: Relation, by: list[str] | None = None,
                num_ctas: int = 16) -> tuple[Relation, SortStats]:
    """Sort via CTA-local sorts + pairwise merge passes.

    Returns the sorted relation and the pass statistics.  Semantically
    identical (and stable, like ``np.lexsort``) to :func:`repro.ra.sort.sort`.
    """
    fields_ = by if by is not None else [rel.key]
    for name in fields_:
        if name not in rel.columns:
            raise RelationError(f"sort field {name!r} not in relation")
    n = rel.num_rows
    stats = SortStats(n_rows=n)
    if n <= 1:
        return rel, stats

    # encode the (possibly multi-field) key as a dense stable rank: NumPy
    # structured scalars are not orderable with <, and ranking also bakes
    # in the original-position tie-break, making the merges trivially
    # stable.  The merge passes below still do all the data movement.
    packed = pack_rows(rel, fields_)
    rank_order = np.argsort(packed, kind="stable")
    keys = np.empty(n, dtype=np.int64)
    keys[rank_order] = np.arange(n)
    # fixed-stride chunks so run boundaries stay aligned across merge
    # passes (the last CTA may get a short run)
    run_length = _initial_run_length(n, num_ctas)
    order = np.arange(n, dtype=np.int64)

    # stage 1: CTA-local sorts (one pass over the data)
    for start in range(0, n, run_length):
        chunk = slice(start, min(start + run_length, n))
        local = order[chunk]
        if len(local) > 1:
            order[chunk] = local[np.argsort(keys[local], kind="stable")]
    stats.local_sort_passes = 1
    stats.elements_moved += n

    # stage 2: merge passes, doubling the run length each time
    while run_length < n:
        order = _merge_runs(keys, order, run_length, stats)
        run_length *= 2

    return rel.take(order), stats


def staged_unique(rel: Relation, num_ctas: int = 16
                  ) -> tuple[Relation, SortStats]:
    """UNIQUE as sort + adjacent-difference compaction.

    Output keeps one representative per distinct tuple, in sorted order
    (set-equal to :func:`repro.ra.sort.unique`).
    """
    n = rel.num_rows
    if n <= 1:
        return rel, SortStats(n_rows=n)
    sorted_rel, stats = staged_sort(rel, by=list(rel.fields), num_ctas=num_ctas)
    packed = pack_rows(sorted_rel)
    keep = np.ones(n, dtype=bool)
    keep[1:] = packed[1:] != packed[:-1]  # the adjacent-difference filter
    stats.elements_moved += n
    return sorted_rel.take(keep), stats


def _initial_run_length(n_rows: int, num_ctas: int) -> int:
    """Fixed per-CTA run length: ceil(n / ctas)."""
    ctas = max(1, min(num_ctas, n_rows))
    return -(-n_rows // ctas)


def expected_merge_passes(n_rows: int, num_ctas: int = 16) -> int:
    """Merge passes the staged sort performs (for cost-model cross-checks)."""
    if n_rows <= 1:
        return 0
    run = _initial_run_length(n_rows, num_ctas)
    passes = 0
    while run < n_rows:
        run *= 2
        passes += 1
    return passes

"""SORT and UNIQUE operators.

These maintain ordering relations amongst tuples (paper SS II).  They are
the fusion *barriers*: SORT and UNIQUE "cannot be fused with any other
operators" (SS III-C) because every output element depends on the entire
input.
"""

from __future__ import annotations

import numpy as np

from ..errors import RelationError
from .relation import Relation
from .rows import pack_rows, unique_rows_mask


def sort(rel: Relation, by: list[str] | None = None, descending: bool = False
         ) -> Relation:
    """SORT: stable sort by the given fields (default: the key field)."""
    fields = by if by is not None else [rel.key]
    if not fields:
        raise RelationError("sort needs at least one field")
    for n in fields:
        if n not in rel.columns:
            raise RelationError(f"sort field {n!r} not in relation")
    # np.lexsort sorts by the *last* key first
    keys = tuple(rel.column(n) for n in reversed(fields))
    order = np.lexsort(keys)
    if descending:
        order = order[::-1]
    return rel.take(order)


def unique(rel: Relation) -> Relation:
    """UNIQUE: drop duplicate tuples, keeping first occurrences."""
    mask = unique_rows_mask(pack_rows(rel))
    return rel.take(mask)


def is_sorted(rel: Relation, by: list[str] | None = None) -> bool:
    """True if the relation is non-decreasing in the given fields."""
    fields = by if by is not None else [rel.key]
    packed = pack_rows(rel, fields)
    if len(packed) <= 1:
        return True
    # structured (void) dtypes don't support <= directly; a row sequence is
    # sorted iff it equals its own (lexicographic) sort
    return bool(np.array_equal(np.sort(packed), packed))

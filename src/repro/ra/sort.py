"""SORT and UNIQUE operators.

These maintain ordering relations amongst tuples (paper SS II).  They are
the fusion *barriers*: SORT and UNIQUE "cannot be fused with any other
operators" (SS III-C) because every output element depends on the entire
input.
"""

from __future__ import annotations

import numpy as np

from ..errors import RelationError
from .relation import Relation
from .rows import pack_rows, unique_rows_mask


def sort_order(columns, by: list[str],
               descending: "bool | list[bool]" = False) -> np.ndarray:
    """The stable row permutation sorting ``columns`` by ``by``.

    ``descending`` may be a single bool (legacy semantics: a fully
    reversed order, ties reversed too) or a per-field list, in which
    case descending fields sort by *inverted ranks* -- a stable
    multi-direction lexsort where ties keep their original order.  Both
    the SORT/TOP_N operators and the frontend's reference interpreter
    order rows through this one helper, so ORDER BY tie-breaks are
    identical on both paths by construction.
    """
    if not by:
        raise RelationError("sort needs at least one field")
    for n in by:
        if n not in columns:
            raise RelationError(f"sort field {n!r} not in relation")
    if isinstance(descending, list):
        if len(descending) != len(by):
            raise RelationError(
                f"{len(by)} sort field(s) but {len(descending)} direction(s)")
        keys = []
        for name, desc in zip(by, descending):
            col = np.asarray(columns[name])
            if desc:
                values, inverse = np.unique(col, return_inverse=True)
                col = (len(values) - 1) - inverse
            keys.append(col)
        # np.lexsort sorts by the *last* key first
        return np.lexsort(tuple(reversed(keys)))
    keys = tuple(np.asarray(columns[n]) for n in reversed(by))
    order = np.lexsort(keys)
    if descending:
        order = order[::-1]
    return order


def sort(rel: Relation, by: list[str] | None = None,
         descending: "bool | list[bool]" = False) -> Relation:
    """SORT: stable sort by the given fields (default: the key field)."""
    fields = by if by is not None else [rel.key]
    return rel.take(sort_order(rel.columns, fields, descending))


def top_n(rel: Relation, by: list[str], n: int,
          descending: "bool | list[bool]" = False) -> Relation:
    """TOP-N: the first ``n`` tuples of the sorted relation (ORDER BY +
    LIMIT).  Ties at the cut are broken by the stable sort order."""
    if n < 0:
        raise RelationError(f"top_n needs n >= 0, got {n}")
    order = sort_order(rel.columns, by, descending)
    return rel.take(order[:n])


def unique(rel: Relation) -> Relation:
    """UNIQUE: drop duplicate tuples, keeping first occurrences."""
    mask = unique_rows_mask(pack_rows(rel))
    return rel.take(mask)


def is_sorted(rel: Relation, by: list[str] | None = None) -> bool:
    """True if the relation is non-decreasing in the given fields."""
    fields = by if by is not None else [rel.key]
    packed = pack_rows(rel, fields)
    if len(packed) <= 1:
        return True
    # structured (void) dtypes don't support <= directly; a row sequence is
    # sorted iff it equals its own (lexicographic) sort
    return bool(np.array_equal(np.sort(packed), packed))

"""Arithmetic (ARITH) and AGGREGATION operators.

Data-warehousing queries mix RA operators with arithmetic over fields --
the paper's canonical example is the total discounted price
``sum((1 - discount) * price)`` (Fig 2(h)) -- and grouped aggregation
(Fig 2(g)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import RelationError
from .expr import Expr
from .relation import Relation
from .rows import pack_rows

#: Supported aggregate functions.
AGG_FUNCS = ("sum", "mean", "count", "count_distinct", "min", "max")


def arith(rel: Relation, outputs: Mapping[str, Expr], keep: list[str] | None = None
          ) -> Relation:
    """ARITH: compute new fields from expressions over existing fields.

    `keep` lists input fields to retain; by default all inputs are kept
    (PROJECT discards sources explicitly, per Fig 2(h)).
    """
    base = rel.fields if keep is None else keep
    for n in base:
        if n not in rel.columns:
            raise RelationError(f"keep field {n!r} not in relation")
    cols: dict[str, np.ndarray] = {n: rel.column(n) for n in base}
    for name, expr in outputs.items():
        missing = expr.fields() - set(rel.fields)
        if missing:
            raise RelationError(f"expression for {name!r} uses unknown fields {missing}")
        value = expr.evaluate(rel.columns)
        value = np.broadcast_to(np.asarray(value), (rel.num_rows,)).copy()
        cols[name] = value
    key = rel.key if rel.key in cols else next(iter(cols))
    return Relation(cols, key=key)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: `func` applied to `field` (field ignored for count)."""

    func: str
    field: str | None = None

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise RelationError(f"unknown aggregate {self.func!r}; have {AGG_FUNCS}")
        if self.func not in ("count",) and self.field is None:
            raise RelationError(f"aggregate {self.func!r} needs a field")


def aggregate(rel: Relation, group_by: list[str],
              aggs: Mapping[str, AggSpec]) -> Relation:
    """AGGREGATION: grouped reduction.

    Returns one tuple per distinct `group_by` value combination, ordered by
    group key, with one output field per entry of `aggs`.
    """
    if not aggs:
        raise RelationError("aggregate needs at least one output")
    for n in group_by:
        if n not in rel.columns:
            raise RelationError(f"group-by field {n!r} not in relation")

    if rel.num_rows == 0 and group_by:
        # no rows -> no groups: empty output with the right schema
        cols: dict[str, np.ndarray] = {n: rel.column(n)[:0] for n in group_by}
        for name, spec in aggs.items():
            if spec.func in ("count", "count_distinct"):
                cols[name] = np.empty(0, dtype=np.int64)
            else:
                cols[name] = rel.column(spec.field)[:0].astype(np.float64)
        return Relation(cols, key=group_by[0])

    if group_by:
        packed = pack_rows(rel, group_by)
        uniq, inverse, counts = np.unique(packed, return_inverse=True, return_counts=True)
        n_groups = len(uniq)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(counts)[:-1]
        group_cols = {
            n: rel.column(n)[order[np.concatenate([[0], boundaries])]]
            for n in group_by
        }
    else:
        n_groups = 1
        inverse = np.zeros(rel.num_rows, dtype=np.int64)
        counts = np.array([rel.num_rows])
        order = np.arange(rel.num_rows)
        boundaries = np.array([], dtype=np.int64)
        group_cols = {}

    out: dict[str, np.ndarray] = dict(group_cols)
    for name, spec in aggs.items():
        if spec.func == "count":
            out[name] = counts.astype(np.int64)
            continue
        values = rel.column(spec.field)[order]
        segments = np.split(values, boundaries) if n_groups > 1 else [values]
        if spec.func == "count_distinct":
            out[name] = np.array([len(np.unique(seg)) for seg in segments],
                                 dtype=np.int64)
            continue
        if spec.func == "sum":
            result = np.array([seg.sum() for seg in segments])
        elif spec.func == "mean":
            result = np.array([seg.mean() if len(seg) else np.nan for seg in segments])
        elif spec.func == "min":
            result = np.array([seg.min() for seg in segments])
        elif spec.func == "max":
            result = np.array([seg.max() for seg in segments])
        out[name] = result

    key = group_by[0] if group_by else next(iter(out))
    return Relation(out, key=key)

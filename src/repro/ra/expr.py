"""Scalar expression and predicate ASTs.

These small ASTs serve three masters:

* functional evaluation over relation columns (NumPy, vectorized);
* the fusion pass, which chains compute stages and can combine predicates;
* :mod:`repro.compilerlite`, which generates PTX-like code from them
  (Table III's instruction-count study).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

# ---------------------------------------------------------------------------
# arithmetic expressions
# ---------------------------------------------------------------------------

_BINOPS: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expr:
    """Base class for arithmetic expressions over tuple fields."""

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def fields(self) -> set[str]:
        raise NotImplementedError

    def instruction_estimate(self) -> int:
        """Rough PTX instruction count to evaluate per element."""
        raise NotImplementedError

    # operator sugar
    def __add__(self, other): return BinOp("+", self, _wrap(other))
    def __radd__(self, other): return BinOp("+", _wrap(other), self)
    def __sub__(self, other): return BinOp("-", self, _wrap(other))
    def __rsub__(self, other): return BinOp("-", _wrap(other), self)
    def __mul__(self, other): return BinOp("*", self, _wrap(other))
    def __rmul__(self, other): return BinOp("*", _wrap(other), self)
    def __truediv__(self, other): return BinOp("/", self, _wrap(other))

    # comparison sugar -> predicates
    def __lt__(self, other): return Compare("<", self, _wrap(other))
    def __le__(self, other): return Compare("<=", self, _wrap(other))
    def __gt__(self, other): return Compare(">", self, _wrap(other))
    def __ge__(self, other): return Compare(">=", self, _wrap(other))
    def eq(self, other): return Compare("==", self, _wrap(other))
    def ne(self, other): return Compare("!=", self, _wrap(other))


def _wrap(value) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True, eq=True)
class Field(Expr):
    name: str

    def evaluate(self, columns):
        return columns[self.name]

    def fields(self):
        return {self.name}

    def instruction_estimate(self):
        return 1  # one load

    def __repr__(self):
        return f"Field({self.name!r})"


@dataclass(frozen=True, eq=True)
class Const(Expr):
    value: float | int | str

    def evaluate(self, columns):
        return self.value

    def fields(self):
        return set()

    def instruction_estimate(self):
        return 0  # folds into an immediate

    def __repr__(self):
        return f"Const({self.value!r})"


@dataclass(frozen=True, eq=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binop {self.op!r}")

    def evaluate(self, columns):
        return _BINOPS[self.op](self.left.evaluate(columns), self.right.evaluate(columns))

    def fields(self):
        return self.left.fields() | self.right.fields()

    def instruction_estimate(self):
        return 1 + self.left.instruction_estimate() + self.right.instruction_estimate()


@dataclass(frozen=True, eq=True)
class Func(Expr):
    """A builtin scalar function applied element-wise.

    ``year`` expects day-counts relative to the ISO date in ``meta`` and
    yields calendar years; ``substring`` expects ``meta=(start, length)``
    with SQL's 1-based ``start`` over a unicode column.
    """

    func: str
    arg: Expr
    meta: tuple | str | None = None

    def __post_init__(self):
        if self.func not in ("year", "substring"):
            raise ValueError(f"unknown function {self.func!r}")

    def evaluate(self, columns):
        values = self.arg.evaluate(columns)
        if self.func == "year":
            epoch = np.datetime64(self.meta or "1970-01-01", "D")
            days = np.asarray(values, dtype="timedelta64[D]")
            return (epoch + days).astype("datetime64[Y]").astype(np.int64) + 1970
        start, length = self.meta
        lo = start - 1
        return np.array([s[lo:lo + length] for s in np.asarray(values)])

    def fields(self):
        return self.arg.fields()

    def instruction_estimate(self):
        # a handful of integer ops (date split) or byte moves (substring)
        return 4 + self.arg.instruction_estimate()


@dataclass(frozen=True, eq=True)
class Case(Expr):
    """``CASE WHEN p THEN e ... ELSE d END`` -- a predicated select tree."""

    whens: tuple  # of (Predicate, Expr) pairs
    default: Expr

    def evaluate(self, columns):
        conds = [p.evaluate(columns) for p, _ in self.whens]
        outs = [np.broadcast_to(np.asarray(e.evaluate(columns)),
                                np.shape(conds[0])) for _, e in self.whens]
        default = np.broadcast_to(np.asarray(self.default.evaluate(columns)),
                                  np.shape(conds[0]))
        return np.select(conds, outs, default=default)

    def fields(self):
        out = self.default.fields()
        for pred, expr in self.whens:
            out |= pred.fields() | expr.fields()
        return out

    def instruction_estimate(self):
        total = 1 + self.default.instruction_estimate()
        for pred, expr in self.whens:
            total += 1 + pred.instruction_estimate() + expr.instruction_estimate()
        return total


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------

_CMPS: dict[str, Callable] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Predicate:
    """Boolean expression over tuple fields."""

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def fields(self) -> set[str]:
        raise NotImplementedError

    def instruction_estimate(self) -> int:
        raise NotImplementedError

    def __and__(self, other): return And(self, other)
    def __or__(self, other): return Or(self, other)
    def __invert__(self): return Not(self)


@dataclass(frozen=True, eq=True)
class Compare(Predicate):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _CMPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    def evaluate(self, columns):
        return np.asarray(
            _CMPS[self.op](self.left.evaluate(columns), self.right.evaluate(columns))
        )

    def fields(self):
        return self.left.fields() | self.right.fields()

    def instruction_estimate(self):
        # setp + operand evaluation
        return 1 + self.left.instruction_estimate() + self.right.instruction_estimate()


@dataclass(frozen=True, eq=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, columns):
        return self.left.evaluate(columns) & self.right.evaluate(columns)

    def fields(self):
        return self.left.fields() | self.right.fields()

    def instruction_estimate(self):
        return 1 + self.left.instruction_estimate() + self.right.instruction_estimate()


@dataclass(frozen=True, eq=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, columns):
        return self.left.evaluate(columns) | self.right.evaluate(columns)

    def fields(self):
        return self.left.fields() | self.right.fields()

    def instruction_estimate(self):
        return 1 + self.left.instruction_estimate() + self.right.instruction_estimate()


@dataclass(frozen=True, eq=True)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, columns):
        return ~self.inner.evaluate(columns)

    def fields(self):
        return self.inner.fields()

    def instruction_estimate(self):
        return 1 + self.inner.instruction_estimate()


@dataclass(frozen=True, eq=True)
class InList(Predicate):
    """``expr IN (v1, v2, ...)`` over a literal value list."""

    expr: Expr
    values: tuple

    def evaluate(self, columns):
        arr = np.asarray(self.expr.evaluate(columns))
        return np.isin(arr, np.array(list(self.values)))

    def fields(self):
        return self.expr.fields()

    def instruction_estimate(self):
        # one compare + or per list element
        return 2 * len(self.values) + self.expr.instruction_estimate()


def like_to_regex(pattern: str) -> str:
    """SQL ``LIKE`` pattern -> anchored regex (% -> .*, _ -> .)."""
    import re as _re
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(_re.escape(ch))
    return "^" + "".join(out) + "$"


@dataclass(frozen=True, eq=True)
class Like(Predicate):
    """``expr LIKE pattern`` over a unicode column."""

    expr: Expr
    pattern: str

    def evaluate(self, columns):
        import re as _re
        rx = _re.compile(like_to_regex(self.pattern))
        values = np.asarray(self.expr.evaluate(columns))
        return np.fromiter((rx.match(s) is not None for s in values),
                           dtype=bool, count=len(values))

    def fields(self):
        return self.expr.fields()

    def instruction_estimate(self):
        # per-character compare loop, amortized
        return 4 * max(1, len(self.pattern)) + self.expr.instruction_estimate()


@dataclass(frozen=True, eq=True)
class TruePredicate(Predicate):
    def evaluate(self, columns):
        any_col = next(iter(columns.values()))
        return np.ones(len(any_col), dtype=bool)

    def fields(self):
        return set()

    def instruction_estimate(self):
        return 0


def conjoin(predicates: list[Predicate]) -> Predicate:
    """AND a list of predicates together (the fused-filter predicate)."""
    if not predicates:
        return TruePredicate()
    result = predicates[0]
    for p in predicates[1:]:
        result = And(result, p)
    return result

"""Columnar relation data model.

The paper (after Diamos et al.) models a relation as a set of tuples whose
first field is the *key* (Table I).  We store relations columnarly as NumPy
arrays -- the layout GPU RA implementations use -- with named fields; the
key is the first field unless stated otherwise.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import RelationError


def _as_column(values) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise RelationError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype == object:
        # normalize python strings to a fixed-width unicode dtype
        arr = np.asarray([str(v) for v in arr])
    return arr


class Relation:
    """An ordered bag of tuples stored column-wise.

    Parameters
    ----------
    columns:
        Mapping of field name to 1-D array; all the same length.  Iteration
        order of the mapping defines field order.
    key:
        Name of the key field.  Defaults to the first field.
    """

    def __init__(self, columns: Mapping[str, np.ndarray | Sequence], key: str | None = None):
        if not columns:
            raise RelationError("a relation needs at least one column")
        self.columns: dict[str, np.ndarray] = {
            name: _as_column(col) for name, col in columns.items()
        }
        lengths = {len(c) for c in self.columns.values()}
        if len(lengths) != 1:
            raise RelationError(f"ragged columns: lengths {sorted(lengths)}")
        first = next(iter(self.columns))
        self.key = key if key is not None else first
        if self.key not in self.columns:
            raise RelationError(f"key field {self.key!r} not among {self.fields}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Iterable[tuple], fields: Sequence[str] | None = None,
                    key: str | None = None) -> "Relation":
        rows = list(tuples)
        if not rows:
            raise RelationError("from_tuples needs at least one tuple "
                                "(use Relation.empty_like for empty relations)")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise RelationError("ragged tuples")
        names = list(fields) if fields is not None else [f"f{i}" for i in range(width)]
        if len(names) != width:
            raise RelationError(f"{width} fields but {len(names)} names")
        cols = {name: _as_column([r[i] for r in rows]) for i, name in enumerate(names)}
        return cls(cols, key=key)

    @classmethod
    def empty_like(cls, other: "Relation") -> "Relation":
        return cls(
            {name: col[:0] for name, col in other.columns.items()},
            key=other.key,
        )

    # -- basic accessors --------------------------------------------------------
    @property
    def fields(self) -> list[str]:
        return list(self.columns)

    @property
    def num_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    def __len__(self) -> int:
        return self.num_rows

    @property
    def nbytes(self) -> int:
        return sum(int(c.nbytes) for c in self.columns.values())

    @property
    def row_nbytes(self) -> int:
        """Bytes per tuple (sum of field itemsizes)."""
        return sum(int(c.dtype.itemsize) for c in self.columns.values())

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise RelationError(f"no field {name!r}; have {self.fields}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    @property
    def key_column(self) -> np.ndarray:
        return self.columns[self.key]

    # -- views / derived relations --------------------------------------------
    def take(self, indices: np.ndarray) -> "Relation":
        """Row subset by integer indices (or boolean mask)."""
        idx = np.asarray(indices)
        return Relation(
            {name: col[idx] for name, col in self.columns.items()},
            key=self.key,
        )

    def with_columns(self, extra: Mapping[str, np.ndarray]) -> "Relation":
        cols = dict(self.columns)
        for name, col in extra.items():
            col = _as_column(col)
            if len(col) != self.num_rows:
                raise RelationError(
                    f"new column {name!r} has {len(col)} rows, relation has {self.num_rows}")
            cols[name] = col
        return Relation(cols, key=self.key)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        cols = {mapping.get(name, name): col for name, col in self.columns.items()}
        if len(cols) != len(self.columns):
            raise RelationError(f"rename collides: {mapping}")
        return Relation(cols, key=mapping.get(self.key, self.key))

    # -- tuple interop ------------------------------------------------------------
    def to_tuples(self) -> list[tuple]:
        cols = [c.tolist() for c in self.columns.values()]
        return list(zip(*cols)) if cols else []

    def to_tuple_set(self) -> set[tuple]:
        return set(self.to_tuples())

    # -- comparison ------------------------------------------------------------
    def same_tuples(self, other: "Relation") -> bool:
        """Multiset equality of rows (field names/order must match)."""
        if self.fields != other.fields:
            return False
        if self.num_rows != other.num_rows:
            return False
        from .rows import pack_rows  # local import to avoid cycle
        a = np.sort(pack_rows(self))
        b = np.sort(pack_rows(other))
        return bool(np.array_equal(a, b))

    def __repr__(self) -> str:
        preview = self.to_tuples()[:4] if self.num_rows <= 1000 else "..."
        return (f"Relation(fields={self.fields}, key={self.key!r}, "
                f"rows={self.num_rows}, preview={preview})")

"""Row-packing helpers: treat a columnar relation as an array of tuples.

Set-semantics operators (UNION, INTERSECTION, DIFFERENCE, UNIQUE) need to
compare whole tuples; packing columns into a NumPy structured array lets us
use sorted/set primitives (`np.unique`, `np.isin`) directly.
"""

from __future__ import annotations

import numpy as np

from .relation import Relation


def pack_rows(rel: Relation, fields: list[str] | None = None) -> np.ndarray:
    """Pack the given fields (default: all) into a structured array."""
    names = fields if fields is not None else rel.fields
    dtype = np.dtype([(f"c{i}", rel.column(n).dtype) for i, n in enumerate(names)])
    out = np.empty(rel.num_rows, dtype=dtype)
    for i, n in enumerate(names):
        out[f"c{i}"] = rel.column(n)
    return out


def rows_isin(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Boolean mask: which packed rows of `left` appear anywhere in `right`."""
    if left.dtype != right.dtype:
        raise ValueError(f"dtype mismatch: {left.dtype} vs {right.dtype}")
    if len(right) == 0:
        return np.zeros(len(left), dtype=bool)
    sorted_right = np.sort(right)
    idx = np.searchsorted(sorted_right, left)
    idx = np.minimum(idx, len(sorted_right) - 1)
    return sorted_right[idx] == left


def unique_rows_mask(packed: np.ndarray) -> np.ndarray:
    """Mask keeping the first occurrence of each distinct row (stable)."""
    _, first_idx = np.unique(packed, return_index=True)
    mask = np.zeros(len(packed), dtype=bool)
    mask[first_idx] = True
    return mask


def inner_join_indices(left_keys: np.ndarray, right_keys: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs (li, ri) such that left_keys[li] == right_keys[ri].

    Handles duplicate keys on both sides (produces the full cross product
    per key group), as a sort-merge join does.  Output is ordered by key,
    then by left index, then right index.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    lorder = np.argsort(left_keys, kind="stable")
    rorder = np.argsort(right_keys, kind="stable")
    lsorted = left_keys[lorder]
    rsorted = right_keys[rorder]

    lo = np.searchsorted(rsorted, lsorted, side="left")
    hi = np.searchsorted(rsorted, lsorted, side="right")
    counts = hi - lo  # matches per left row
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    li_sorted = np.repeat(np.arange(len(lsorted)), counts)
    # right positions: for each left row, the run lo[i]..hi[i]
    starts = np.repeat(lo, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    ri_sorted = starts + within

    return lorder[li_sorted], rorder[ri_sorted]

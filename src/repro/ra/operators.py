"""Functional implementations of the relational-algebra operators (Table I).

These compute *results*; simulated execution cost is attached separately by
the kernel layer (:mod:`repro.core.kernel`).  Semantics follow the paper's
Table I: relations are sets of tuples, the first field is the key, set
operators compare whole tuples, and JOIN matches on the key field.
"""

from __future__ import annotations

import numpy as np

from ..errors import RelationError
from .expr import Predicate
from .relation import Relation
from .rows import inner_join_indices, pack_rows, rows_isin, unique_rows_mask


def select(rel: Relation, predicate: Predicate) -> Relation:
    """SELECT: keep the tuples satisfying `predicate`."""
    mask = predicate.evaluate(rel.columns)
    return rel.take(np.asarray(mask, dtype=bool))


def project(rel: Relation, fields: list[str] | list[int]) -> Relation:
    """PROJECT: keep only the named fields (or field positions)."""
    if not fields:
        raise RelationError("projection needs at least one field")
    names = [rel.fields[f] if isinstance(f, int) else f for f in fields]
    for n in names:
        if n not in rel.columns:
            raise RelationError(f"projecting unknown field {n!r}")
    key = names[0]
    return Relation({n: rel.column(n) for n in names}, key=key)


def _check_union_compatible(x: Relation, y: Relation) -> None:
    if len(x.fields) != len(y.fields):
        raise RelationError(
            f"set operation on incompatible arities {len(x.fields)} vs {len(y.fields)}")


def _align(y: Relation, x: Relation) -> Relation:
    """View `y` with `x`'s field names (set ops match positionally)."""
    return Relation(
        dict(zip(x.fields, y.columns.values())), key=x.key,
    )


def union(x: Relation, y: Relation) -> Relation:
    """UNION: set union of tuples, keeping x's order then new tuples of y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    fresh_y = ~rows_isin(py, px) & unique_rows_mask(py)
    x_unique = unique_rows_mask(px)
    cols = {
        n: np.concatenate([x.column(n)[x_unique], y.column(n)[fresh_y]])
        for n in x.fields
    }
    return Relation(cols, key=x.key)


def intersection(x: Relation, y: Relation) -> Relation:
    """INTERSECTION: tuples appearing in both x and y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    mask = rows_isin(px, py) & unique_rows_mask(px)
    return x.take(mask)


def difference(x: Relation, y: Relation) -> Relation:
    """DIFFERENCE: tuples of x not appearing in y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    mask = ~rows_isin(px, py) & unique_rows_mask(px)
    return x.take(mask)


def product(x: Relation, y: Relation) -> Relation:
    """PRODUCT: cartesian product; y's fields are appended (renamed on clash)."""
    nx, ny = x.num_rows, y.num_rows
    xi = np.repeat(np.arange(nx), ny)
    yi = np.tile(np.arange(ny), nx)
    cols: dict[str, np.ndarray] = {n: x.column(n)[xi] for n in x.fields}
    for n in y.fields:
        out = n if n not in cols else f"{n}_r"
        cols[out] = y.column(n)[yi]
    return Relation(cols, key=x.key)


def _join_keys(x: Relation, y: Relation,
               on: "str | tuple[str, str] | None") -> tuple[str, str]:
    """Resolve ``on`` to (left key, right key).

    ``on`` may be a single shared column name, a ``(left, right)`` pair
    for differently-named equi-join columns, or None (both relations'
    declared key fields).
    """
    if on is None:
        kx, ky = x.key, y.key
    elif isinstance(on, tuple):
        kx, ky = on
    else:
        kx = ky = on
    if kx not in x.columns:
        raise RelationError(f"join key {kx!r} missing from left relation")
    if ky not in y.columns:
        raise RelationError(f"join key {ky!r} missing from right relation")
    return kx, ky


def join(x: Relation, y: Relation, on: str | tuple[str, str] | None = None,
         preserve_order: bool = False) -> Relation:
    """JOIN: inner equi-join on the key field (Table I).

    Output tuples are x's fields followed by y's non-key fields, renamed
    with a ``_r`` suffix when they clash with x's field names.  The
    default output order is (key, left index, right index); with
    ``preserve_order`` the pairs are re-sorted to (left index, right
    index), i.e. x's row order with each row's matches in y order.
    """
    kx, ky = _join_keys(x, y, on)
    li, ri = inner_join_indices(x.column(kx), y.column(ky))
    if preserve_order:
        order = np.lexsort((ri, li))
        li, ri = li[order], ri[order]
    cols: dict[str, np.ndarray] = {n: x.column(n)[li] for n in x.fields}
    for n in y.fields:
        if n == ky:
            continue
        out = n if n not in cols else f"{n}_r"
        cols[out] = y.column(n)[ri]
    return Relation(cols, key=kx)


def left_join(x: Relation, y: Relation,
              on: str | tuple[str, str] | None = None,
              match_field: str = "__matched") -> Relation:
    """LEFT OUTER JOIN with an explicit match indicator.

    Every x row appears at least once, in x's row order, with its y
    matches in y order.  Unmatched rows carry zero / empty-string pads in
    y's fields and ``match_field`` = 0 (matched rows = 1); downstream
    predicates and counts consult the indicator instead of SQL NULLs.
    """
    kx, ky = _join_keys(x, y, on)
    li, ri = inner_join_indices(x.column(kx), y.column(ky))
    unmatched = np.setdiff1d(np.arange(x.num_rows), li)
    full_li = np.concatenate([li, unmatched])
    full_ri = np.concatenate([ri, np.zeros(len(unmatched), dtype=ri.dtype)])
    matched = np.concatenate([
        np.ones(len(li), dtype=np.int32),
        np.zeros(len(unmatched), dtype=np.int32)])
    order = np.lexsort((full_ri, 1 - matched, full_li))
    full_li, full_ri = full_li[order], full_ri[order]
    matched = matched[order]
    pad = matched == 0
    cols: dict[str, np.ndarray] = {n: x.column(n)[full_li] for n in x.fields}
    for n in y.fields:
        if n == ky:
            continue
        out = n if n not in cols else f"{n}_r"
        col = y.column(n)[full_ri].copy()
        col[pad] = "" if col.dtype.kind in ("U", "S") else 0
        cols[out] = col
    if match_field in cols:
        raise RelationError(f"match field {match_field!r} clashes with a "
                            "relation field")
    cols[match_field] = matched
    return Relation(cols, key=kx)


def semi_join(x: Relation, y: Relation,
              on: str | tuple[str, str] | None = None) -> Relation:
    """Tuples of x whose key appears in y (EXISTS; used by Q21)."""
    kx, ky = _join_keys(x, y, on)
    ykeys = y.column(ky)
    mask = np.isin(x.column(kx), ykeys)
    return x.take(mask)


def anti_join(x: Relation, y: Relation,
              on: str | tuple[str, str] | None = None) -> Relation:
    """Tuples of x whose key does NOT appear in y (NOT EXISTS; Q21)."""
    kx, ky = _join_keys(x, y, on)
    ykeys = y.column(ky)
    mask = ~np.isin(x.column(kx), ykeys)
    return x.take(mask)


def union_all(x: Relation, y: Relation) -> Relation:
    """UNION ALL: bag union -- every x tuple, then every y tuple."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    cols = {n: np.concatenate([x.column(n), y.column(n)])
            for n in x.fields}
    return Relation(cols, key=x.key)


def except_all(x: Relation, y: Relation) -> Relation:
    """EXCEPT ALL: bag difference.

    Each tuple keeps ``max(count_x - count_y, 0)`` occurrences; the
    *earliest* ``count_y`` occurrences in x order are the ones removed,
    so the result preserves x's relative order deterministically.
    """
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    n = len(px)
    if n == 0:
        return x.take(np.zeros(0, dtype=bool))
    # occurrence index of each x row among equal rows (0 for the first)
    sorted_idx = np.argsort(px, kind="stable")
    ps = px[sorted_idx]
    new_run = np.concatenate([[True], ps[1:] != ps[:-1]])
    run_starts = np.where(new_run, np.arange(n), 0)
    pos_in_run = np.arange(n) - np.maximum.accumulate(run_starts)
    occurrence = np.empty(n, dtype=np.int64)
    occurrence[sorted_idx] = pos_in_run
    # per-row count of equal tuples in y
    y_vals, y_counts = np.unique(py, return_counts=True)
    slot = np.searchsorted(y_vals, px)
    slot = np.clip(slot, 0, max(len(y_vals) - 1, 0))
    if len(y_vals):
        in_y = y_vals[slot] == px
        y_count = np.where(in_y, y_counts[slot], 0)
    else:
        y_count = np.zeros(n, dtype=np.int64)
    return x.take(occurrence >= y_count)

"""Functional implementations of the relational-algebra operators (Table I).

These compute *results*; simulated execution cost is attached separately by
the kernel layer (:mod:`repro.core.kernel`).  Semantics follow the paper's
Table I: relations are sets of tuples, the first field is the key, set
operators compare whole tuples, and JOIN matches on the key field.
"""

from __future__ import annotations

import numpy as np

from ..errors import RelationError
from .expr import Predicate
from .relation import Relation
from .rows import inner_join_indices, pack_rows, rows_isin, unique_rows_mask


def select(rel: Relation, predicate: Predicate) -> Relation:
    """SELECT: keep the tuples satisfying `predicate`."""
    mask = predicate.evaluate(rel.columns)
    return rel.take(np.asarray(mask, dtype=bool))


def project(rel: Relation, fields: list[str] | list[int]) -> Relation:
    """PROJECT: keep only the named fields (or field positions)."""
    if not fields:
        raise RelationError("projection needs at least one field")
    names = [rel.fields[f] if isinstance(f, int) else f for f in fields]
    for n in names:
        if n not in rel.columns:
            raise RelationError(f"projecting unknown field {n!r}")
    key = names[0]
    return Relation({n: rel.column(n) for n in names}, key=key)


def _check_union_compatible(x: Relation, y: Relation) -> None:
    if len(x.fields) != len(y.fields):
        raise RelationError(
            f"set operation on incompatible arities {len(x.fields)} vs {len(y.fields)}")


def _align(y: Relation, x: Relation) -> Relation:
    """View `y` with `x`'s field names (set ops match positionally)."""
    return Relation(
        dict(zip(x.fields, y.columns.values())), key=x.key,
    )


def union(x: Relation, y: Relation) -> Relation:
    """UNION: set union of tuples, keeping x's order then new tuples of y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    fresh_y = ~rows_isin(py, px) & unique_rows_mask(py)
    x_unique = unique_rows_mask(px)
    cols = {
        n: np.concatenate([x.column(n)[x_unique], y.column(n)[fresh_y]])
        for n in x.fields
    }
    return Relation(cols, key=x.key)


def intersection(x: Relation, y: Relation) -> Relation:
    """INTERSECTION: tuples appearing in both x and y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    mask = rows_isin(px, py) & unique_rows_mask(px)
    return x.take(mask)


def difference(x: Relation, y: Relation) -> Relation:
    """DIFFERENCE: tuples of x not appearing in y."""
    _check_union_compatible(x, y)
    y = _align(y, x)
    px, py = pack_rows(x), pack_rows(y)
    if px.dtype != py.dtype:
        py = py.astype(px.dtype)
    mask = ~rows_isin(px, py) & unique_rows_mask(px)
    return x.take(mask)


def product(x: Relation, y: Relation) -> Relation:
    """PRODUCT: cartesian product; y's fields are appended (renamed on clash)."""
    nx, ny = x.num_rows, y.num_rows
    xi = np.repeat(np.arange(nx), ny)
    yi = np.tile(np.arange(ny), nx)
    cols: dict[str, np.ndarray] = {n: x.column(n)[xi] for n in x.fields}
    for n in y.fields:
        out = n if n not in cols else f"{n}_r"
        cols[out] = y.column(n)[yi]
    return Relation(cols, key=x.key)


def join(x: Relation, y: Relation, on: str | None = None) -> Relation:
    """JOIN: inner equi-join on the key field (Table I).

    Output tuples are x's fields followed by y's non-key fields, renamed
    with a ``_r`` suffix when they clash with x's field names.
    """
    kx = on if on is not None else x.key
    ky = on if on is not None else y.key
    if kx not in x.columns:
        raise RelationError(f"join key {kx!r} missing from left relation")
    if ky not in y.columns:
        raise RelationError(f"join key {ky!r} missing from right relation")
    li, ri = inner_join_indices(x.column(kx), y.column(ky))
    cols: dict[str, np.ndarray] = {n: x.column(n)[li] for n in x.fields}
    for n in y.fields:
        if n == ky:
            continue
        out = n if n not in cols else f"{n}_r"
        cols[out] = y.column(n)[ri]
    return Relation(cols, key=kx)


def semi_join(x: Relation, y: Relation, on: str | None = None) -> Relation:
    """Tuples of x whose key appears in y (EXISTS; used by Q21)."""
    kx = on if on is not None else x.key
    ky = on if on is not None else y.key
    ykeys = y.column(ky)
    mask = np.isin(x.column(kx), ykeys)
    return x.take(mask)


def anti_join(x: Relation, y: Relation, on: str | None = None) -> Relation:
    """Tuples of x whose key does NOT appear in y (NOT EXISTS; Q21)."""
    kx = on if on is not None else x.key
    ky = on if on is not None else y.key
    ykeys = y.column(ky)
    mask = ~np.isin(x.column(kx), ykeys)
    return x.take(mask)

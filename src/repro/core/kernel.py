"""Kernel IR: operators as multi-stage GPU kernels.

An RA *operator kernel* (paper SS II) is one or more CUDA kernels built from
stages.  Following Diamos et al.'s SELECT (Fig 3):

* a **compute kernel** = PARTITION -> compute stage(s) -> BUFFER,
* a global synchronization, then
* a **gather kernel** = GATHER.

Fusion (Fig 6) chains multiple compute stages inside one compute kernel and
shares a single partition/buffer/gather -- this module provides the stage
and kernel dataclasses that make that rewrite a simple list operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..simgpu.compute import KernelLaunchSpec, default_grid
from ..simgpu.device import DeviceSpec


class StageKind(enum.Enum):
    PARTITION = "partition"
    FILTER = "filter"
    MAP = "map"
    PROJECT = "project"
    JOIN_PROBE = "join_probe"
    SET_LOOKUP = "set_lookup"
    PRODUCT_EXPAND = "product_expand"
    REDUCE = "reduce"
    HASH_BUILD = "hash_build"
    SORT_PASS = "sort_pass"
    BUFFER = "buffer"
    GATHER = "gather"


#: stage kinds that do per-element work between partition and buffer
COMPUTE_STAGE_KINDS = frozenset({
    StageKind.FILTER, StageKind.MAP, StageKind.PROJECT, StageKind.JOIN_PROBE,
    StageKind.SET_LOOKUP, StageKind.PRODUCT_EXPAND, StageKind.REDUCE,
})


@dataclass(frozen=True)
class StageSpec:
    """Cost description of one stage, per element *entering* the stage.

    ``selectivity`` is elements leaving / elements entering; traffic and
    instruction figures are per entering element except
    ``writes_bytes_per_output`` which is per *leaving* element.
    """

    kind: StageKind
    name: str
    insts_per_input: float = 0.0
    reads_bytes_per_input: float = 0.0
    writes_bytes_per_output: float = 0.0
    selectivity: float = 1.0
    regs: int = 0

    def scaled_selectivity(self, incoming: float) -> float:
        return incoming * self.selectivity


@dataclass
class Kernel:
    """One simulated CUDA kernel: an ordered list of stages.

    ``op_names`` records which logical plan operators contributed stages
    (one for a plain kernel, several for a fused kernel).
    """

    name: str
    stages: list[StageSpec]
    op_names: list[str] = field(default_factory=list)
    base_regs: int = 10

    @property
    def regs_per_thread(self) -> int:
        """Register pressure: base + every stage's live registers.

        This is the quantity fusion's cost model watches -- "each thread has
        to store more intermediate data" (SS III-C).
        """
        return self.base_regs + sum(s.regs for s in self.stages)

    @property
    def output_selectivity(self) -> float:
        sel = 1.0
        for s in self.stages:
            sel *= s.selectivity
        return sel

    def traffic_and_insts(self, n_in: int) -> tuple[float, float, float]:
        """(bytes_read, bytes_written, instructions) for `n_in` inputs."""
        reads = writes = insts = 0.0
        alive = float(n_in)
        for s in self.stages:
            insts += alive * s.insts_per_input
            reads += alive * s.reads_bytes_per_input
            alive *= s.selectivity
            writes += alive * s.writes_bytes_per_output
        return reads, writes, insts

    def launch_spec(self, n_in: int, device: DeviceSpec,
                    resource_fraction: float = 1.0) -> KernelLaunchSpec:
        reads, writes, insts = self.traffic_and_insts(n_in)
        ctas, threads = default_grid(n_in, device, resource_fraction=resource_fraction)
        return KernelLaunchSpec(
            name=self.name,
            num_elements=n_in,
            num_ctas=ctas,
            threads_per_cta=threads,
            regs_per_thread=self.regs_per_thread,
            bytes_read=reads,
            bytes_written=writes,
            instructions=insts,
        )

    def duration(self, n_in: int, device: DeviceSpec,
                 resource_fraction: float = 1.0) -> float:
        from ..simgpu.compute import kernel_duration
        return kernel_duration(device, self.launch_spec(n_in, device, resource_fraction))


@dataclass
class KernelChain:
    """The kernels implementing one operator (or one fused region), in order.

    For the standard skeleton this is ``[compute_kernel, gather_kernel]``;
    barrier operators (SORT, ...) may contribute a different shape.
    `side_kernels` are prerequisite kernels over *other* inputs (the
    hash-build of a JOIN) that must run before the chain; each is paired
    with the plan node whose result it consumes, so the executor can size
    it.
    """

    name: str
    kernels: list[Kernel]
    side_kernels: list[tuple[Kernel, object]] = field(default_factory=list)

    @property
    def output_selectivity(self) -> float:
        sel = 1.0
        for k in self.kernels:
            sel *= k.output_selectivity
        return sel

    def side_launch_specs(self, device: DeviceSpec,
                          side_sizes: dict[str, int] | None = None
                          ) -> list[KernelLaunchSpec]:
        """Launch specs of the prerequisite (build) kernels."""
        specs: list[KernelLaunchSpec] = []
        for kern, feed_node in self.side_kernels:
            n_side = (side_sizes or {}).get(getattr(feed_node, "name", str(feed_node)), 0)
            specs.append(kern.launch_spec(max(int(n_side), 1), device))
        return specs

    def main_launch_specs(self, n_in: int, device: DeviceSpec,
                          resource_fraction: float = 1.0) -> list[KernelLaunchSpec]:
        """Launch specs of the main kernels (compute [+ gather])."""
        specs: list[KernelLaunchSpec] = []
        alive = n_in
        for k in self.kernels:
            specs.append(k.launch_spec(alive, device, resource_fraction))
            alive = int(round(alive * k.output_selectivity))
        return specs

    def launch_specs(self, n_in: int, device: DeviceSpec,
                     side_sizes: dict[str, int] | None = None,
                     resource_fraction: float = 1.0) -> list[KernelLaunchSpec]:
        """Launch specs for the chain in execution order (side builds first)."""
        return (self.side_launch_specs(device, side_sizes)
                + self.main_launch_specs(n_in, device, resource_fraction))

    def total_duration(self, n_in: int, device: DeviceSpec,
                       side_sizes: dict[str, int] | None = None) -> float:
        from ..simgpu.compute import kernel_duration
        return sum(kernel_duration(device, s)
                   for s in self.launch_specs(n_in, device, side_sizes))

"""The kernel-fission pass (paper SS IV).

Fission partitions a kernel's work into *segments* so that segment
computation and PCIe transfers overlap: while segment *i* computes,
segment *i+1*'s input is downloading and segment *i-1*'s output is
uploading (Fig 13).  The C2070's two copy engines make a three-stage
pipeline possible, so at least three streams are used.

The CPU must re-gather the segment outputs at the end, since results
arrive at different times (SS IV-C) -- that host gather is charged here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..simgpu.compute import KernelLaunchSpec
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import EventKind, Timeline
from ..streampool.pool import StreamPool
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams


@dataclass(frozen=True)
class FissionConfig:
    """Tuning knobs for the fission schedule."""

    num_streams: int = 3
    #: preferred bytes of *input* per segment; large enough to stay on the
    #: flat part of the PCIe bandwidth curve, small enough to pipeline
    target_segment_bytes: int = 96 << 20
    min_segments: int = 3
    max_segments: int = 4096
    #: fission requires pinned host memory for async overlap (SS IV-B)
    memory: HostMemory = HostMemory.PINNED
    host_gather: bool = True


@dataclass(frozen=True)
class Segment:
    index: int
    start_row: int
    n_rows: int


def plan_segments(n_rows: int, in_row_nbytes: int,
                  config: FissionConfig = FissionConfig()) -> list[Segment]:
    """Split `n_rows` into pipeline segments."""
    total_bytes = n_rows * in_row_nbytes
    by_size = math.ceil(total_bytes / config.target_segment_bytes)
    n_seg = min(config.max_segments, max(config.min_segments, by_size))
    n_seg = min(n_seg, max(1, n_rows))
    bounds = [round(i * n_rows / n_seg) for i in range(n_seg + 1)]
    return [
        Segment(index=i, start_row=bounds[i], n_rows=bounds[i + 1] - bounds[i])
        for i in range(n_seg)
        if bounds[i + 1] > bounds[i]
    ]


#: builds the compute launches for one segment of `n_rows` elements
SegmentKernelBuilder = Callable[[Segment], Sequence[KernelLaunchSpec]]


def run_fissioned(
    device: DeviceSpec,
    n_rows: int,
    in_row_nbytes: int,
    out_row_nbytes: int,
    output_selectivity: float,
    kernel_builder: SegmentKernelBuilder,
    config: FissionConfig = FissionConfig(),
    engine: SimEngine | None = None,
    costs: StageCostParams = DEFAULT_STAGE_COSTS,
    segment_thunk: Callable[[Segment], None] | None = None,
) -> Timeline:
    """Execute a fissioned (pipelined) run and return its timeline.

    Each segment is issued to a pooled stream as H2D -> kernels -> D2H; the
    engine overlaps segments across streams.  A final host-side gather of
    the output is appended when configured.
    """
    engine = engine or SimEngine(device)
    pool = StreamPool(device, num_streams=config.num_streams, engine=engine)
    segments = plan_segments(n_rows, in_row_nbytes, config)

    for seg in segments:
        stream = pool.streams[seg.index % pool.num_streams]
        in_bytes = seg.n_rows * in_row_nbytes
        out_bytes = seg.n_rows * output_selectivity * out_row_nbytes
        stream.h2d(in_bytes, config.memory, tag=f"h2d.seg{seg.index}")
        for spec in kernel_builder(seg):
            stream.kernel(spec, tag=f"{spec.name}.seg{seg.index}")
        thunk = (lambda s=seg: segment_thunk(s)) if segment_thunk else None
        if out_bytes > 0:
            stream.d2h(out_bytes, config.memory, tag=f"d2h.seg{seg.index}",
                       thunk=thunk)
        elif thunk is not None:
            # results stay on device (out_row_nbytes=0): no transfer to
            # occupy the D2H engine, so fire the thunk when the segment's
            # last command completes instead
            last = stream.sim.commands[-1]
            if last.thunk is None:
                last.thunk = thunk
            else:
                def chained(prev=last.thunk, t=thunk):
                    prev()
                    t()
                last.thunk = chained

    timeline = pool.wait_all()

    if config.host_gather:
        out_bytes_total = n_rows * output_selectivity * out_row_nbytes
        gather_time = out_bytes_total / costs.host_gather_bw
        t0 = timeline.end_time
        timeline.add(t0, t0 + gather_time, EventKind.HOST, "cpu_gather",
                     nbytes=out_bytes_total)
    return timeline

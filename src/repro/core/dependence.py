"""Dependence analysis between operator kernels (paper SS III-C).

Two kinds of inter-kernel dependence exist:

* **ELEMENTWISE** -- each output element of the consumer depends on one
  element produced by the producer.  The array dependence decomposes into
  scalar dependences, so the kernels can be fused (e.g. SELECT -> SELECT).
* **BARRIER** -- the consumer must wait for the *entire* producer (e.g.
  SORT -> anything, anything -> SORT, or the build side of a JOIN).

Domain-specific knowledge supplies the classification: "JOIN-JOIN can be
fused, but SORT-JOIN cannot ... SORT and UNIQUE cannot be fused with any
other operators."
"""

from __future__ import annotations

import enum

from ..plans.plan import OpType, PlanNode


class DepClass(enum.Enum):
    ELEMENTWISE = "elementwise"
    BARRIER = "barrier"


#: producers whose full output must exist before any consumer element is valid.
#: LEFT_JOIN belongs here: its null-padding step inserts pad rows for the
#: unmatched left tuples, so no output element is final until the whole
#: probe has run -- it may *terminate* a fused region but never feed one.
_BARRIER_PRODUCERS = frozenset({
    OpType.SORT, OpType.UNIQUE, OpType.AGGREGATE, OpType.UNION,
    OpType.LEFT_JOIN, OpType.TOP_N, OpType.UNION_ALL, OpType.EXCEPT_ALL,
})

#: consumers that need their whole input before producing anything
_BARRIER_CONSUMERS = frozenset({
    OpType.SORT, OpType.UNIQUE, OpType.UNION,
    OpType.TOP_N, OpType.UNION_ALL, OpType.EXCEPT_ALL,
})

#: binary consumers whose *second* input is a build/lookup structure
_BUILD_SIDE_CONSUMERS = frozenset({
    OpType.JOIN, OpType.SEMI_JOIN, OpType.ANTI_JOIN, OpType.PRODUCT,
    OpType.INTERSECTION, OpType.DIFFERENCE, OpType.LEFT_JOIN,
    OpType.EXCEPT_ALL,
})


def classify_edge(producer: PlanNode, consumer: PlanNode, input_index: int
                  ) -> DepClass:
    """Classify the dependence of `consumer`'s `input_index`-th input on
    `producer`."""
    if producer.op in _BARRIER_PRODUCERS:
        return DepClass.BARRIER
    if consumer.op in _BARRIER_CONSUMERS:
        return DepClass.BARRIER
    if consumer.op in _BUILD_SIDE_CONSUMERS and input_index >= 1:
        return DepClass.BARRIER
    return DepClass.ELEMENTWISE


def is_fusable_into_chain(producer: PlanNode, consumer: PlanNode) -> bool:
    """Can `consumer` extend a fused chain ending at `producer`?

    True iff the consumer's primary (left) input is elementwise-dependent
    on the producer.
    """
    if producer not in consumer.inputs:
        return False
    idx = consumer.inputs.index(producer)
    if idx != 0:
        return False
    return classify_edge(producer, consumer, 0) is DepClass.ELEMENTWISE

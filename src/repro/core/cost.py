"""Fusion cost model (paper SS III-C).

"The choice between alternative fusion opportunities is guided by a cost
function that evaluates the potential benefits of fusion. ... fusing too
many kernels may cause problems [because] kernel fusion will create
increased register (and shared memory) pressure."

The model compares simulated GPU time of the fused region against the sum
of the unfused operator chains at a representative element count.  Register
pressure is *not* special-cased here: it flows through the kernel timing
model (occupancy loss + spill traffic), so the point where fusion stops
paying emerges from the same machinery that times everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plans.plan import PlanNode
from ..simgpu.device import DeviceSpec
from .kernel import KernelChain
from .opmodels import chain_for_region, chain_for_node
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams


@dataclass
class FusionDecision:
    fuse: bool
    fused_time: float
    unfused_time: float
    fused_regs: int

    @property
    def benefit(self) -> float:
        return self.unfused_time - self.fused_time


@dataclass
class FusionCostModel:
    device: DeviceSpec
    costs: StageCostParams = field(default_factory=lambda: DEFAULT_STAGE_COSTS)
    #: element count at which candidate fusions are evaluated
    n_hint: int = 1 << 22
    #: require at least this relative improvement before fusing (guards
    #: against fusing on noise-level estimates)
    min_relative_benefit: float = 0.0

    def _side_sizes(self, chain: KernelChain) -> dict[str, int]:
        # size side (build) inputs at the hint scaled by nothing: the model
        # evaluates relative benefit, and build kernels appear identically
        # on both sides of the comparison, so a nominal size suffices.
        return {getattr(node, "name", str(node)): self.n_hint
                for _, node in chain.side_kernels}

    def region_time(self, nodes: list[PlanNode], n_in: int | None = None) -> float:
        """Simulated time of `nodes` as one fused region."""
        n = n_in if n_in is not None else self.n_hint
        chain = chain_for_region(nodes, self.costs)
        return chain.total_duration(n, self.device, self._side_sizes(chain))

    def unfused_time(self, nodes: list[PlanNode], n_in: int | None = None) -> float:
        """Simulated time of `nodes` as separate operator kernels."""
        n = n_in if n_in is not None else self.n_hint
        total = 0.0
        alive = n
        for node in nodes:
            chain = chain_for_node(node, self.costs, n_in_hint=alive)
            total += chain.total_duration(alive, self.device, self._side_sizes(chain))
            alive = max(1, int(round(alive * chain.output_selectivity)))
        return total

    def evaluate(self, region: list[PlanNode], candidate: PlanNode,
                 n_in: int | None = None) -> FusionDecision:
        """Should `candidate` be fused onto the chain `region`?

        Compares (region+candidate fused) against (region fused, candidate
        alone) -- the marginal decision the greedy pass makes.
        """
        extended = region + [candidate]
        fused_time = self.region_time(extended, n_in)
        base_time = (self.region_time(region, n_in)
                     + self.unfused_time(
                         [candidate],
                         max(1, int(round((n_in or self.n_hint)
                                          * _chain_selectivity(region))))))
        chain = chain_for_region(extended, self.costs)
        regs = max(k.regs_per_thread for k in chain.kernels)
        threshold = base_time * (1.0 - self.min_relative_benefit)
        return FusionDecision(
            fuse=fused_time < threshold,
            fused_time=fused_time,
            unfused_time=base_time,
            fused_regs=regs,
        )


def _chain_selectivity(nodes: list[PlanNode]) -> float:
    sel = 1.0
    for n in nodes:
        sel *= n.selectivity
    return sel

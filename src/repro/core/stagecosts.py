"""Per-stage cost parameters for the RA kernel implementations.

Each RA operator's GPU implementation is modeled as stages (partition /
compute / buffer / gather, per Diamos et al.).  The constants here are the
per-element instruction counts, register demands, and memory-traffic
factors of each stage kind.  They are *fit* constants: chosen so the
simulated SELECT pipeline matches the paper's measured curves --

* absolute GPU SELECT throughput ~= 20 GB/s at 50% selectivity (Fig 4a),
* fused filter ~= 1.57x two separate filters, fused gather ~= 3.03x two
  separate gathers (Fig 10),
* SORT dominating TPC-H Q1 at ~71% of baseline time (Fig 18a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StageCostParams:
    # skeleton ---------------------------------------------------------------
    skeleton_base_regs: int = 6           # thread bookkeeping of any kernel
    partition_insts: float = 3.0          # index math per element
    partition_regs: int = 2
    buffer_insts_per_match: float = 6.0   # compact matched rows into CTA buffer
    buffer_regs: int = 3
    gather_insts_per_elem: float = 8.0    # scan + copy, on surviving elements
    gather_regs: int = 8
    #: gather streams coalesced, non-divergent traffic: it sees better
    #: effective bandwidth than the divergent filter stages.  Fit to the
    #: fused-gather 3.03x / overall-compute 1.80x split of Fig 10 / Fig 8(b).
    gather_bw_factor: float = 1.8

    # filter (SELECT) ---------------------------------------------------------
    #: per-element cost of the *first* filter stage: load, index math,
    #: ballot/prefix machinery.  Fit so the GPU SELECT curve is mildly
    #: instruction-bound, giving the flat-ish 22/19/16 GB/s profile of
    #: Fig 4(a).
    filter_base_insts: float = 76.0
    #: marginal cost of a *chained* (fused) filter stage: the heavy
    #: per-element machinery is shared; only the predicate is re-evaluated.
    filter_chained_insts: float = 6.0
    filter_insts_per_pred_inst: float = 2.0
    filter_regs_base: int = 6
    filter_regs_per_field: int = 1

    # map (ARITH / PROJECT) ------------------------------------------------------
    map_insts_per_expr_inst: float = 2.0
    map_base_insts: float = 6.0
    map_regs_base: int = 4
    project_insts: float = 2.0            # register moves only

    # join --------------------------------------------------------------------
    hash_build_insts: float = 22.0        # per build-side element
    hash_build_regs: int = 10
    hash_table_bytes_factor: float = 2.0  # table size / build input size
    join_probe_insts: float = 30.0        # per probe element
    join_probe_regs: int = 7
    join_probe_read_factor: float = 2.0   # random-access amplification
    # positional (row-id) gather join: direct column fetch, no build
    gather_join_insts: float = 14.0
    gather_join_regs: int = 4

    # set lookup (SEMI/ANTI JOIN, INTERSECTION, DIFFERENCE probe side) -----------
    set_lookup_insts: float = 26.0
    set_lookup_regs: int = 6

    # product ---------------------------------------------------------------------
    product_insts_per_output: float = 8.0
    product_regs: int = 6

    # reduction (AGGREGATE) ---------------------------------------------------------
    reduce_insts_per_elem: float = 12.0
    reduce_regs: int = 8

    # sort / unique -------------------------------------------------------------------
    sort_pass_insts: float = 10.0         # per element, per merge pass
    #: data passes per log2(n): 1.0 would be an ideal merge sort; the
    #: paper's multi-field sort (Diamos et al.) behaves bitonic-flavored.
    #: Fit to SORT's ~71% share of the Q1 baseline (Fig 18a).
    sort_pass_factor: float = 1.6
    sort_regs: int = 20
    unique_compact_insts: float = 8.0

    # host-side ------------------------------------------------------------------------
    host_gather_bw: float = 8.0e9         # bytes/s for the CPU-side gather
                                          # fission requires (SS IV-C)


DEFAULT_STAGE_COSTS = StageCostParams()

"""The paper's primary contribution: kernel fusion and kernel fission."""

from .cost import FusionCostModel, FusionDecision
from .dependence import DepClass, classify_edge, is_fusable_into_chain
from .fission import FissionConfig, Segment, plan_segments, run_fissioned
from .fusion import FusionResult, Region, fuse_plan
from .kernel import COMPUTE_STAGE_KINDS, Kernel, KernelChain, StageKind, StageSpec
from .opmodels import (
    FUSABLE_OPS,
    KEY_BYTES,
    build_side_kernels,
    chain_for_node,
    chain_for_region,
    compute_stage,
    in_row_nbytes,
    out_row_nbytes,
)
from .multifusion import SharedScanGroup, chain_for_shared_scan, find_shared_select_groups, multi_select
from .passes import CompiledPlan, PipelineOptions, compile_plan
from .render import render_expr, render_fused_kernel, render_predicate
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams

__all__ = [
    "FusionCostModel", "FusionDecision", "DepClass", "classify_edge",
    "is_fusable_into_chain", "FissionConfig", "Segment", "plan_segments",
    "run_fissioned", "FusionResult", "Region", "fuse_plan",
    "COMPUTE_STAGE_KINDS", "Kernel", "KernelChain", "StageKind", "StageSpec",
    "FUSABLE_OPS", "KEY_BYTES", "build_side_kernels", "chain_for_node",
    "chain_for_region", "compute_stage", "in_row_nbytes", "out_row_nbytes",
    "DEFAULT_STAGE_COSTS", "StageCostParams", "SharedScanGroup",
    "chain_for_shared_scan", "find_shared_select_groups", "multi_select",
    "render_expr", "render_fused_kernel", "render_predicate",
    "CompiledPlan", "PipelineOptions", "compile_plan",
]

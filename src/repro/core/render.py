"""Render a fused region as CUDA-like source (what the compiler would emit).

The paper's automation section (SS III-C) describes the generated fused
kernel's structure: partition first, the topologically sorted compute
stages passing intermediates through registers, then buffer and gather.
This renderer produces that source text for inspection/debugging -- the
textual counterpart of Fig 6 -- and is used by `examples/fusion_explorer`
and the docs tests.
"""

from __future__ import annotations

from ..errors import FusionError
from ..plans.plan import OpType, PlanNode
from ..ra.expr import And, BinOp, Compare, Const, Expr, Field, Not, Or, Predicate
from .opmodels import FUSABLE_OPS


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Field):
        return expr.name
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, BinOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    raise FusionError(f"cannot render expression {expr!r}")


def render_predicate(pred: Predicate) -> str:
    if isinstance(pred, Compare):
        return f"({render_expr(pred.left)} {pred.op} {render_expr(pred.right)})"
    if isinstance(pred, And):
        return f"({render_predicate(pred.left)} && {render_predicate(pred.right)})"
    if isinstance(pred, Or):
        return f"({render_predicate(pred.left)} || {render_predicate(pred.right)})"
    if isinstance(pred, Not):
        return f"(!{render_predicate(pred.inner)})"
    raise FusionError(f"cannot render predicate {pred!r}")


def _stage_lines(node: PlanNode) -> list[str]:
    if node.op is OpType.SELECT:
        return [f"// filter stage: {node.name}",
                f"if (!{render_predicate(node.params['predicate'])}) continue;"]
    if node.op is OpType.PROJECT:
        fields = ", ".join(node.params["fields"])
        return [f"// project stage: {node.name} -> keep [{fields}]"]
    if node.op is OpType.ARITH:
        lines = [f"// arithmetic stage: {node.name}"]
        for out, expr in node.params["outputs"].items():
            lines.append(f"float {out} = {render_expr(expr)};")
        return lines
    if node.op is OpType.JOIN:
        how = ("gather from aligned column"
               if node.params.get("gather") else "probe hash table")
        return [f"// join stage: {node.name} ({how})",
                f"value_{node.name} = table_{node.inputs[1].name}[key];",
                "// (miss) continue; -- on no match" if not node.params.get("gather") else ""]
    if node.op in (OpType.SEMI_JOIN, OpType.ANTI_JOIN,
                   OpType.INTERSECTION, OpType.DIFFERENCE):
        neg = "!" if node.op in (OpType.ANTI_JOIN, OpType.DIFFERENCE) else ""
        return [f"// set-lookup stage: {node.name}",
                f"if ({neg}lookup_{node.inputs[1].name}(key)) continue;"
                if neg == "" else
                f"if ({neg}lookup_{node.inputs[1].name}(key) == false) continue;"]
    if node.op is OpType.PRODUCT:
        return [f"// product stage: {node.name} (expand against "
                f"{node.inputs[1].name})"]
    if node.op is OpType.AGGREGATE:
        keys = node.params.get("group_by") or ["<global>"]
        return [f"// reduce stage: {node.name} (group by {', '.join(keys)})",
                "atomic_reduce(out, key, value);"]
    raise FusionError(f"cannot render stage for {node.op.value}")


def render_fused_kernel(nodes: list[PlanNode], name: str | None = None) -> str:
    """CUDA-like source for a fused region's compute (+ gather) kernel."""
    if not nodes:
        raise FusionError("empty region")
    for n in nodes:
        if n.op not in FUSABLE_OPS:
            raise FusionError(f"{n.name} ({n.op.value}) is not fusable")
    kname = name or "_".join(n.name for n in nodes)
    terminal_agg = nodes[-1].op is OpType.AGGREGATE

    body: list[str] = []
    body.append("// stage 1: partition -- one contiguous chunk per CTA")
    body.append("range r = partition(n, blockIdx.x, gridDim.x);")
    body.append("for (int i = r.begin + threadIdx.x; i < r.end; i += blockDim.x) {")
    body.append("    // element enters registers once; all fused stages chain here")
    for node in nodes:
        for line in _stage_lines(node):
            if line:
                body.append("    " + line)
    if terminal_agg:
        body.append("}")
    else:
        body.append("    // final stage: buffer survivors into the CTA's staging area")
        body.append("    buffer[cta_count++] = element;")
        body.append("}")

    src = [f"__global__ void {kname}_compute(...)", "{"]
    src += ["    " + l for l in body]
    src.append("}")
    if not terminal_agg:
        src += [
            "",
            "// global synchronization, then:",
            f"__global__ void {kname}_gather(...)",
            "{",
            "    // exclusive-scan CTA counts; copy each CTA's survivors",
            "    out[scan[blockIdx.x] + threadIdx.x] = buffer[threadIdx.x];",
            "}",
        ]
    return "\n".join(src)

"""The kernel-fusion pass (paper SS III).

Walks the plan in topological order and greedily grows fused regions:
a consumer joins the region ending at its primary input when

1. the dependence is ELEMENTWISE (SS III-C dependence analysis),
2. the producer has no other consumer (its intermediate would otherwise
   have to be materialized anyway),
3. merging does not create a cycle between regions (a side input must not
   transitively depend on the region being extended), and
4. the cost model approves (register pressure vs. saved traffic/stages).

The output is a :class:`FusionResult`: a *topologically ordered* list of
execution blocks, each either a fused region (>= 1 fusable ops lowered to
one compute + one gather kernel) or a standalone operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plans.plan import OpType, Plan, PlanNode
from .cost import FusionCostModel
from .dependence import is_fusable_into_chain
from .opmodels import FUSABLE_OPS


@dataclass(eq=False)
class Region:
    """One execution block after fusion."""

    nodes: list[PlanNode]

    @property
    def fused(self) -> bool:
        return len(self.nodes) > 1

    @property
    def is_barrier_op(self) -> bool:
        return self.nodes[0].op not in FUSABLE_OPS and self.nodes[0].op is not OpType.SOURCE

    @property
    def name(self) -> str:
        return "+".join(n.name for n in self.nodes)

    @property
    def output_node(self) -> PlanNode:
        return self.nodes[-1]

    @property
    def selectivity(self) -> float:
        sel = 1.0
        for n in self.nodes:
            sel *= n.selectivity
        return sel


@dataclass
class FusionResult:
    plan: Plan
    regions: list[Region]
    decisions: list[tuple[str, bool, float]] = field(default_factory=list)

    @property
    def num_fused_regions(self) -> int:
        return sum(1 for r in self.regions if r.fused)

    @property
    def num_kernels_saved(self) -> int:
        """Operator kernels eliminated by fusion (each op standing alone
        would cost its own compute+gather pair)."""
        return sum(2 * (len(r.nodes) - 1) for r in self.regions if r.fused)

    def region_of(self, node: PlanNode) -> Region:
        for r in self.regions:
            if node in r.nodes:
                return r
        raise KeyError(node.name)

    def describe(self) -> str:
        lines = [f"fusion result for plan {self.plan.name!r}:"]
        for r in self.regions:
            mark = "FUSED " if r.fused else ("barrier" if r.is_barrier_op else "single")
            lines.append(f"  [{mark}] {r.name}")
        return "\n".join(lines)


class _RegionGraph:
    """Tracks inter-region dependencies during the greedy pass."""

    def __init__(self):
        self.deps: dict[int, set[int]] = {}   # region id -> ids it depends on
        self.by_id: dict[int, Region] = {}

    def add(self, region: Region) -> None:
        self.deps[id(region)] = set()
        self.by_id[id(region)] = region

    def add_dep(self, region: Region, on: Region) -> None:
        if on is not region:
            self.deps[id(region)].add(id(on))

    def depends_on(self, region: Region, target: Region) -> bool:
        """True if `region` transitively depends on `target`."""
        seen: set[int] = set()
        stack = [id(region)]
        tid = id(target)
        while stack:
            rid = stack.pop()
            if rid == tid:
                return True
            if rid in seen:
                continue
            seen.add(rid)
            stack.extend(self.deps.get(rid, ()))
        return False

    def topo_order(self, regions: list[Region]) -> list[Region]:
        order: list[Region] = []
        done: set[int] = set()

        def visit(region: Region) -> None:
            rid = id(region)
            if rid in done:
                return
            done.add(rid)
            for dep_id in sorted(self.deps.get(rid, ()),
                                 key=lambda d: _creation_rank[d]):
                visit(self.by_id[dep_id])
            order.append(region)

        _creation_rank = {id(r): i for i, r in enumerate(regions)}
        for region in regions:
            visit(region)
        return order


def fuse_plan(plan: Plan, cost_model: FusionCostModel | None = None,
              enable: bool = True) -> FusionResult:
    """Run the fusion pass.  With ``enable=False``, every operator is its
    own region (the unfused baseline, used by the serial strategies)."""
    plan.validate()
    order = [n for n in plan.topological() if n.op is not OpType.SOURCE]
    region_of: dict[int, Region] = {}
    regions: list[Region] = []
    decisions: list[tuple[str, bool, float]] = []
    graph = _RegionGraph()

    def input_regions(node: PlanNode) -> list[Region]:
        return [region_of[id(inp)] for inp in node.inputs
                if inp.op is not OpType.SOURCE]

    for node in order:
        merged = False
        if enable and node.op in FUSABLE_OPS and node.inputs:
            primary = node.inputs[0]
            prim_region = region_of.get(id(primary))
            side_regions = [region_of[id(inp)] for inp in node.inputs[1:]
                            if inp.op is not OpType.SOURCE]
            acyclic = prim_region is not None and not any(
                graph.depends_on(s, prim_region) for s in side_regions)
            if (
                prim_region is not None
                and prim_region.output_node is primary
                and not prim_region.is_barrier_op
                and len(plan.consumers(primary)) == 1
                and is_fusable_into_chain(primary, node)
                and acyclic
            ):
                if cost_model is None:
                    approve, benefit = True, 0.0
                else:
                    decision = cost_model.evaluate(prim_region.nodes, node)
                    approve, benefit = decision.fuse, decision.benefit
                decisions.append((f"{prim_region.name} + {node.name}",
                                  approve, benefit))
                if approve:
                    prim_region.nodes.append(node)
                    region_of[id(node)] = prim_region
                    for s in side_regions:
                        graph.add_dep(prim_region, s)
                    merged = True
        if not merged:
            region = Region(nodes=[node])
            graph.add(region)
            regions.append(region)
            region_of[id(node)] = region
            for dep in input_regions(node):
                graph.add_dep(region, dep)

    ordered = graph.topo_order(regions)
    return FusionResult(plan=plan, regions=ordered, decisions=decisions)

"""Lowering: plan operators -> stage specs and kernel chains.

This is where each RA operator's GPU implementation shape (stage list,
per-element cost, register demand) is defined.  Both the *unfused* baseline
(one :class:`KernelChain` per operator) and the *fused* lowering (one chain
for a whole region) are produced here, so the fusion pass is a pure
restructuring -- the per-stage costs are identical either way, and the
benefit of fusion emerges from shared partition/buffer/gather stages and
register-resident intermediates, exactly as the paper argues (SS III-A).
"""

from __future__ import annotations

import math

from ..errors import FusionError, PlanError
from ..plans.plan import OpType, PlanNode
from .kernel import Kernel, KernelChain, StageKind, StageSpec
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams

KEY_BYTES = 4  # keys are 32-bit values throughout (compressed row data)


# ---------------------------------------------------------------------------
# row-size propagation
# ---------------------------------------------------------------------------

def out_row_nbytes(node: PlanNode) -> int:
    """Bytes per output row of a node (explicit or inherited/derived)."""
    if node.out_row_nbytes is not None:
        return node.out_row_nbytes
    if node.op is OpType.SOURCE:
        return 4
    left = out_row_nbytes(node.inputs[0])
    if node.op in (OpType.JOIN, OpType.LEFT_JOIN, OpType.PRODUCT):
        right = out_row_nbytes(node.inputs[1])
        if node.op is OpType.JOIN:
            return left + max(0, right - KEY_BYTES)
        if node.op is OpType.LEFT_JOIN:
            # joined row + the 32-bit match-indicator column
            return left + max(0, right - KEY_BYTES) + 4
        return left + right
    if node.op is OpType.UNION_ALL:
        return max(left, out_row_nbytes(node.inputs[1]))
    if node.op is OpType.AGGREGATE:
        n_aggs = len(node.params.get("aggs", {})) or 1
        n_keys = len(node.params.get("group_by", [])) or 1
        return 8 * n_aggs + KEY_BYTES * n_keys
    return left


def in_row_nbytes(node: PlanNode) -> int:
    if not node.inputs:
        return out_row_nbytes(node)
    return out_row_nbytes(node.inputs[0])


# ---------------------------------------------------------------------------
# compute stages (the fusable middle of the skeleton)
# ---------------------------------------------------------------------------

def compute_stage(node: PlanNode, reads_input: bool,
                  costs: StageCostParams = DEFAULT_STAGE_COSTS) -> StageSpec:
    """The compute StageSpec for a fusable operator.

    ``reads_input`` is True when this is the first compute stage of its
    kernel (input comes from global memory); chained stages read
    register-resident intermediates for free -- fusion benefit (c).
    """
    row = in_row_nbytes(node)
    first_read = row if reads_input else 0.0

    if node.op is OpType.SELECT:
        pred = node.params["predicate"]
        base = (costs.filter_base_insts if reads_input
                else costs.filter_chained_insts)
        return StageSpec(
            kind=StageKind.FILTER, name=node.name,
            insts_per_input=base
            + costs.filter_insts_per_pred_inst * pred.instruction_estimate(),
            reads_bytes_per_input=first_read,
            selectivity=node.selectivity,
            regs=costs.filter_regs_base
            + costs.filter_regs_per_field * len(pred.fields()),
        )
    if node.op is OpType.PROJECT:
        return StageSpec(
            kind=StageKind.PROJECT, name=node.name,
            insts_per_input=costs.project_insts,
            reads_bytes_per_input=first_read,
            selectivity=1.0,
            regs=2,
        )
    if node.op is OpType.ARITH:
        exprs = node.params["outputs"].values()
        expr_insts = sum(e.instruction_estimate() for e in exprs)
        return StageSpec(
            kind=StageKind.MAP, name=node.name,
            insts_per_input=costs.map_base_insts
            + costs.map_insts_per_expr_inst * expr_insts,
            reads_bytes_per_input=first_read,
            selectivity=1.0,
            regs=costs.map_regs_base + 2 * len(node.params["outputs"]),
        )
    if node.op in (OpType.JOIN, OpType.LEFT_JOIN):
        right_row = out_row_nbytes(node.inputs[1])
        if node.params.get("gather"):
            # positional join: fetch just the new value bytes per element
            value_bytes = max(4, right_row - KEY_BYTES)
            return StageSpec(
                kind=StageKind.JOIN_PROBE, name=node.name,
                insts_per_input=costs.gather_join_insts,
                reads_bytes_per_input=first_read + value_bytes,
                selectivity=node.selectivity,
                regs=costs.gather_join_regs,
            )
        return StageSpec(
            kind=StageKind.JOIN_PROBE, name=node.name,
            insts_per_input=costs.join_probe_insts,
            reads_bytes_per_input=first_read
            + costs.join_probe_read_factor * right_row,
            selectivity=node.selectivity,
            regs=costs.join_probe_regs,
        )
    if node.op in (OpType.SEMI_JOIN, OpType.ANTI_JOIN,
                   OpType.INTERSECTION, OpType.DIFFERENCE):
        return StageSpec(
            kind=StageKind.SET_LOOKUP, name=node.name,
            insts_per_input=costs.set_lookup_insts,
            reads_bytes_per_input=first_read
            + costs.join_probe_read_factor * KEY_BYTES,
            selectivity=node.selectivity,
            regs=costs.set_lookup_regs,
        )
    if node.op is OpType.PRODUCT:
        expansion = max(node.selectivity, 1e-12)
        return StageSpec(
            kind=StageKind.PRODUCT_EXPAND, name=node.name,
            insts_per_input=costs.product_insts_per_output * expansion,
            reads_bytes_per_input=first_read,
            selectivity=expansion,
            regs=costs.product_regs,
        )
    if node.op is OpType.AGGREGATE:
        return StageSpec(
            kind=StageKind.REDUCE, name=node.name,
            insts_per_input=costs.reduce_insts_per_elem,
            reads_bytes_per_input=first_read,
            selectivity=node.selectivity,
            regs=costs.reduce_regs,
        )
    raise FusionError(f"{node.op.value} has no fusable compute stage")


#: LEFT_JOIN is fusable but only as a region *tail* -- its probe edge is
#: elementwise yet its null-padding output is a barrier (dependence.py
#: lists it under _BARRIER_PRODUCERS, and FUS108 enforces terminality).
FUSABLE_OPS = frozenset({
    OpType.SELECT, OpType.PROJECT, OpType.ARITH, OpType.JOIN,
    OpType.SEMI_JOIN, OpType.ANTI_JOIN, OpType.INTERSECTION,
    OpType.DIFFERENCE, OpType.PRODUCT, OpType.AGGREGATE,
    OpType.LEFT_JOIN,
})


# ---------------------------------------------------------------------------
# skeleton assembly
# ---------------------------------------------------------------------------

def _partition_stage(costs: StageCostParams) -> StageSpec:
    return StageSpec(StageKind.PARTITION, "partition",
                     insts_per_input=costs.partition_insts,
                     regs=costs.partition_regs)


def _buffer_stage(out_row: int, costs: StageCostParams) -> StageSpec:
    return StageSpec(StageKind.BUFFER, "buffer",
                     insts_per_input=costs.buffer_insts_per_match,
                     writes_bytes_per_output=float(out_row),
                     regs=costs.buffer_regs)


def _gather_kernel(name: str, out_row: int, costs: StageCostParams,
                   op_names: list[str]) -> Kernel:
    # gather traffic is fully coalesced; charge it at the better streaming
    # bandwidth via gather_bw_factor (see StageCostParams docs)
    eff_row = float(out_row) / costs.gather_bw_factor
    return Kernel(
        name=name,
        stages=[StageSpec(
            StageKind.GATHER, "gather",
            insts_per_input=costs.gather_insts_per_elem,
            reads_bytes_per_input=eff_row,
            writes_bytes_per_output=eff_row,
            regs=costs.gather_regs,
        )],
        op_names=op_names,
        base_regs=costs.skeleton_base_regs,
    )


def build_side_kernels(nodes: list[PlanNode], costs: StageCostParams
                       ) -> list[tuple[Kernel, PlanNode]]:
    """Hash-build kernels for every join-like op in `nodes`.

    Returned with the plan node supplying the build input, so the executor
    can size them (element count of that input's result).
    """
    side: list[tuple[Kernel, PlanNode]] = []
    for node in nodes:
        if node.op is OpType.JOIN and node.params.get("gather"):
            continue  # positional join: the column array needs no build
        if node.op in (OpType.JOIN, OpType.LEFT_JOIN, OpType.SEMI_JOIN,
                       OpType.ANTI_JOIN, OpType.INTERSECTION,
                       OpType.DIFFERENCE, OpType.EXCEPT_ALL):
            build_input = node.inputs[1]
            row = out_row_nbytes(build_input)
            kern = Kernel(
                name=f"{node.name}.build",
                stages=[StageSpec(
                    StageKind.HASH_BUILD, f"{node.name}.build",
                    insts_per_input=costs.hash_build_insts,
                    reads_bytes_per_input=float(row),
                    writes_bytes_per_output=costs.hash_table_bytes_factor * row,
                    regs=costs.hash_build_regs,
                )],
                op_names=[node.name],
                base_regs=costs.skeleton_base_regs,
            )
            side.append((kern, build_input))
    return side


def chain_for_region(nodes: list[PlanNode],
                     costs: StageCostParams = DEFAULT_STAGE_COSTS,
                     name: str | None = None) -> KernelChain:
    """Lower a fused region (ordered fusable ops, each consuming the
    previous) into one compute kernel + one gather kernel.

    A terminal AGGREGATE replaces buffer+gather with its reduce stage (the
    grouped output is tiny and written directly).
    """
    if not nodes:
        raise FusionError("empty fusion region")
    for n in nodes:
        if n.op not in FUSABLE_OPS:
            raise FusionError(f"{n.name} ({n.op.value}) is not fusable")

    region_name = name or "+".join(n.name for n in nodes)
    terminal_agg = nodes[-1].op is OpType.AGGREGATE
    mid = nodes[:-1] if terminal_agg else nodes

    stages: list[StageSpec] = [_partition_stage(costs)]
    for i, node in enumerate(mid):
        stages.append(compute_stage(node, reads_input=(i == 0), costs=costs))

    out_row = out_row_nbytes(nodes[-1])
    kernels: list[Kernel]
    if terminal_agg:
        stages.append(compute_stage(nodes[-1], reads_input=(not mid), costs=costs))
        stages.append(StageSpec(
            StageKind.BUFFER, "agg_out",
            writes_bytes_per_output=float(out_row), regs=2))
        kernels = [Kernel(f"{region_name}.compute", stages,
                          op_names=[n.name for n in nodes],
                          base_regs=costs.skeleton_base_regs)]
    else:
        final_out = out_row_nbytes(nodes[-1])
        stages.append(_buffer_stage(final_out, costs))
        compute = Kernel(f"{region_name}.compute", stages,
                         op_names=[n.name for n in nodes],
                         base_regs=costs.skeleton_base_regs)
        gather = _gather_kernel(f"{region_name}.gather", final_out, costs,
                                [n.name for n in nodes])
        kernels = [compute, gather]

    side = build_side_kernels(nodes, costs)
    return KernelChain(name=region_name, kernels=kernels, side_kernels=side)


def chain_for_node(node: PlanNode,
                   costs: StageCostParams = DEFAULT_STAGE_COSTS,
                   n_in_hint: int = 1 << 20) -> KernelChain:
    """Lower one operator standalone (the unfused baseline)."""
    if node.op in FUSABLE_OPS:
        return chain_for_region([node], costs)
    if node.op is OpType.SORT:
        return _sort_chain(node, costs, n_in_hint)
    if node.op is OpType.UNIQUE:
        return _unique_chain(node, costs, n_in_hint)
    if node.op is OpType.UNION:
        return _union_chain(node, costs)
    if node.op is OpType.TOP_N:
        return _top_n_chain(node, costs, n_in_hint)
    if node.op is OpType.UNION_ALL:
        return _union_all_chain(node, costs)
    if node.op is OpType.EXCEPT_ALL:
        return _except_all_chain(node, costs)
    raise PlanError(f"cannot lower op {node.op.value}")


def _sort_passes(n: int, costs: StageCostParams = DEFAULT_STAGE_COSTS) -> int:
    """Data passes for an n-element sort (merge passes x pass factor)."""
    return max(1, math.ceil(costs.sort_pass_factor * math.log2(max(n, 2))))


def _sort_chain(node: PlanNode, costs: StageCostParams, n_in: int) -> KernelChain:
    row = in_row_nbytes(node)
    passes = _sort_passes(max(n_in, 2), costs)
    kern = Kernel(
        name=f"{node.name}.sort",
        stages=[StageSpec(
            StageKind.SORT_PASS, node.name,
            insts_per_input=costs.sort_pass_insts * passes,
            reads_bytes_per_input=float(row) * passes,
            writes_bytes_per_output=float(row) * passes,
            regs=costs.sort_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    return KernelChain(name=node.name, kernels=[kern])


def _unique_chain(node: PlanNode, costs: StageCostParams, n_in: int) -> KernelChain:
    row = in_row_nbytes(node)
    passes = _sort_passes(max(n_in, 2), costs)
    sort_kern = Kernel(
        name=f"{node.name}.sort",
        stages=[StageSpec(
            StageKind.SORT_PASS, f"{node.name}.sort",
            insts_per_input=costs.sort_pass_insts * passes,
            reads_bytes_per_input=float(row) * passes,
            writes_bytes_per_output=float(row) * passes,
            regs=costs.sort_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    compact = Kernel(
        name=f"{node.name}.compact",
        stages=[
            _partition_stage(costs),
            StageSpec(StageKind.FILTER, f"{node.name}.adjdiff",
                      insts_per_input=costs.unique_compact_insts,
                      reads_bytes_per_input=float(row),
                      selectivity=node.selectivity,
                      regs=8),
            _buffer_stage(row, costs),
        ],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    gather = _gather_kernel(f"{node.name}.gather", row, costs, [node.name])
    return KernelChain(name=node.name, kernels=[sort_kern, compact, gather])


def _union_chain(node: PlanNode, costs: StageCostParams) -> KernelChain:
    """UNION = concatenate + sort-based dedup (barrier operator)."""
    row = out_row_nbytes(node)
    merge = Kernel(
        name=f"{node.name}.dedup",
        stages=[StageSpec(
            StageKind.SORT_PASS, node.name,
            insts_per_input=costs.sort_pass_insts * 8,
            reads_bytes_per_input=float(row) * 8,
            writes_bytes_per_output=float(row) * 8,
            regs=costs.sort_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    return KernelChain(name=node.name, kernels=[merge])


def _top_n_chain(node: PlanNode, costs: StageCostParams,
                 n_in: int) -> KernelChain:
    """TOP_N = full sort passes + a truncating copy of the first n rows."""
    row = in_row_nbytes(node)
    passes = _sort_passes(max(n_in, 2), costs)
    n = max(1, int(node.params.get("n", 1)))
    keep = min(1.0, n / max(n_in, 1))
    sort_kern = Kernel(
        name=f"{node.name}.sort",
        stages=[StageSpec(
            StageKind.SORT_PASS, f"{node.name}.sort",
            insts_per_input=costs.sort_pass_insts * passes,
            reads_bytes_per_input=float(row) * passes,
            writes_bytes_per_output=float(row) * passes,
            regs=costs.sort_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    truncate = Kernel(
        name=f"{node.name}.truncate",
        stages=[StageSpec(
            StageKind.GATHER, f"{node.name}.truncate",
            insts_per_input=costs.gather_insts_per_elem * keep,
            reads_bytes_per_input=float(row) * keep,
            writes_bytes_per_output=float(row) * keep,
            regs=costs.gather_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    return KernelChain(name=node.name, kernels=[sort_kern, truncate])


def _union_all_chain(node: PlanNode, costs: StageCostParams) -> KernelChain:
    """UNION ALL = a pure concatenating copy (no dedup passes)."""
    row = out_row_nbytes(node)
    concat = Kernel(
        name=f"{node.name}.concat",
        stages=[StageSpec(
            StageKind.GATHER, node.name,
            insts_per_input=costs.gather_insts_per_elem,
            reads_bytes_per_input=float(row),
            writes_bytes_per_output=float(row),
            regs=costs.gather_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    return KernelChain(name=node.name, kernels=[concat])


def _except_all_chain(node: PlanNode, costs: StageCostParams) -> KernelChain:
    """EXCEPT ALL = occurrence numbering (sort passes over the probe
    side) + a multiplicity-lookup filter against the build side."""
    row = in_row_nbytes(node)
    passes = _sort_passes(2, costs)
    number = Kernel(
        name=f"{node.name}.number",
        stages=[StageSpec(
            StageKind.SORT_PASS, f"{node.name}.number",
            insts_per_input=costs.sort_pass_insts * passes,
            reads_bytes_per_input=float(row) * passes,
            writes_bytes_per_output=float(row) * passes,
            regs=costs.sort_regs,
        )],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    compact = Kernel(
        name=f"{node.name}.compact",
        stages=[
            _partition_stage(costs),
            StageSpec(StageKind.SET_LOOKUP, f"{node.name}.lookup",
                      insts_per_input=costs.set_lookup_insts,
                      reads_bytes_per_input=float(row)
                      + costs.join_probe_read_factor * KEY_BYTES,
                      selectivity=node.selectivity,
                      regs=costs.set_lookup_regs),
            _buffer_stage(row, costs),
        ],
        op_names=[node.name],
        base_regs=costs.skeleton_base_regs,
    )
    gather = _gather_kernel(f"{node.name}.gather", row, costs, [node.name])
    side = build_side_kernels([node], costs)
    return KernelChain(name=node.name, kernels=[number, compact, gather],
                       side_kernels=side)

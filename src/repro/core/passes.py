"""The compilation pipeline: rewrites -> fusion -> strategy -> lowering.

"Our current efforts are focused on automation of these optimizations in
the compiler" (SS VII).  This module is that automation, end to end: give
it a logical plan and input cardinalities and it returns a
:class:`CompiledPlan` -- the optimized plan, the fused regions, the chosen
execution strategy with its rationale, and the lowered kernel chains --
ready to execute or inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plans.plan import Plan
from ..plans.rewrite import optimize_plan
from ..simgpu.device import DeviceSpec
from .cost import FusionCostModel
from .fusion import FusionResult, fuse_plan
from .kernel import KernelChain
from .opmodels import chain_for_node, chain_for_region
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams


@dataclass(frozen=True)
class PipelineOptions:
    """What the pipeline is allowed to do."""

    rewrite: bool = True          # plan-level rewrites before fusion
    fuse: bool = True             # the fusion pass
    use_cost_model: bool = True   # register-pressure-aware fusion decisions
    auto_strategy: bool = True    # pick serial/fused/fission automatically


@dataclass
class CompiledPlan:
    """The pipeline's output artifact."""

    source_plan: Plan
    plan: Plan                    # after rewrites
    fusion: FusionResult
    chains: list[KernelChain]
    strategy: object              # runtime.Strategy (late import to avoid cycle)
    strategy_reasons: tuple[str, ...]
    source_rows: dict[str, int]
    device: DeviceSpec

    @property
    def num_kernels(self) -> int:
        return sum(len(c.kernels) + len(c.side_kernels) for c in self.chains)

    @property
    def max_register_pressure(self) -> int:
        regs = [k.regs_per_thread for c in self.chains for k in c.kernels]
        return max(regs) if regs else 0

    def describe(self) -> str:
        lines = [f"compiled plan {self.source_plan.name!r}:"]
        lines.append(f"  strategy: {getattr(self.strategy, 'value', self.strategy)}")
        for reason in self.strategy_reasons:
            lines.append(f"    - {reason}")
        lines.append(f"  kernels: {self.num_kernels} "
                     f"(max {self.max_register_pressure} regs/thread)")
        for line in self.fusion.describe().splitlines()[1:]:
            lines.append("  " + line.strip())
        return "\n".join(lines)

    def run(self, executor=None):
        """Execute under the chosen strategy; returns the RunResult."""
        from ..runtime.executor import Executor
        from ..runtime.strategies import ExecutionConfig
        executor = executor or Executor(self.device)
        return executor.run(self.plan, self.source_rows,
                            ExecutionConfig(strategy=self.strategy))


def compile_plan(plan: Plan, source_rows: dict[str, int],
                 device: DeviceSpec | None = None,
                 options: PipelineOptions = PipelineOptions(),
                 costs: StageCostParams = DEFAULT_STAGE_COSTS) -> CompiledPlan:
    """Run the full pipeline on a logical plan."""
    from ..runtime.sizes import estimate_sizes
    from ..runtime.strategies import Strategy

    device = device or DeviceSpec()
    plan.validate()

    optimized = optimize_plan(plan) if options.rewrite else plan
    cost_model = (FusionCostModel(device, costs)
                  if options.fuse and options.use_cost_model else None)
    fusion = fuse_plan(optimized, cost_model=cost_model, enable=options.fuse)

    sizes = estimate_sizes(optimized, source_rows)
    chains: list[KernelChain] = []
    for region in fusion.regions:
        first = region.nodes[0]
        primary = first.inputs[0] if first.inputs else first
        if region.is_barrier_op:
            chains.append(chain_for_node(
                first, costs, n_in_hint=max(sizes[primary.name], 2)))
        else:
            chains.append(chain_for_region(region.nodes, costs))

    if options.auto_strategy:
        from ..optimizer import Optimizer
        decision = Optimizer(device, costs=costs).choose(
            optimized, source_rows, include_cpubase=False)
        strategy = decision.chosen.option.strategy
        reasons = tuple(
            f"{c.label}: {c.price_s * 1e3:.3f} ms simulated"
            + (" (chosen)" if c.option == decision.chosen.option else "")
            for c in decision.ranked())
    else:
        strategy = Strategy.FUSED if options.fuse else Strategy.SERIAL
        reasons = ("strategy fixed by pipeline options",)

    return CompiledPlan(
        source_plan=plan, plan=optimized, fusion=fusion, chains=chains,
        strategy=strategy, strategy_reasons=tuple(reasons),
        source_rows=dict(source_rows), device=device,
    )

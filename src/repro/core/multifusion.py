"""Shared-scan fusion: several SELECTs over the *same* input (Fig 2(c)).

The chain-fusion pass (:mod:`repro.core.fusion`) only fuses linear
producer/consumer chains; the paper's pattern (c) -- "different SELECT
operators need to filter the same input data" -- calls for a different
rewrite: one kernel that reads the input once, evaluates every predicate,
and buffers each consumer's survivors separately.  The input scan (the
dominant traffic at low selectivity) is paid once instead of K times.

The paper also notes fusion applies "across queries since RA operators
from different queries can be fused" -- a shared-scan group is exactly
that case when the SELECTs come from different queries over one table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FusionError
from ..plans.plan import OpType, Plan, PlanNode
from ..ra.expr import Predicate
from ..ra.relation import Relation
from ..ra.stages import buffer_stage, filter_stage, gather_stage, partition
from .kernel import Kernel, KernelChain, StageKind, StageSpec
from .opmodels import compute_stage, in_row_nbytes, out_row_nbytes
from .stagecosts import DEFAULT_STAGE_COSTS, StageCostParams


@dataclass(frozen=True)
class SharedScanGroup:
    """A set of SELECTs that can share one scan of `producer`."""

    producer: PlanNode
    selects: tuple[PlanNode, ...]

    @property
    def name(self) -> str:
        return "|".join(s.name for s in self.selects)


def find_shared_select_groups(plan: Plan, min_size: int = 2
                              ) -> list[SharedScanGroup]:
    """All groups of >= `min_size` SELECTs consuming the same node."""
    groups: list[SharedScanGroup] = []
    for node in plan.topological():
        selects = tuple(c for c in plan.consumers(node)
                        if c.op is OpType.SELECT)
        if len(selects) >= min_size:
            groups.append(SharedScanGroup(producer=node, selects=selects))
    return groups


def chain_for_shared_scan(group: SharedScanGroup,
                          costs: StageCostParams = DEFAULT_STAGE_COSTS
                          ) -> KernelChain:
    """Lower a shared-scan group to one multi-output compute kernel plus
    one gather kernel covering every output."""
    if len(group.selects) < 2:
        raise FusionError("shared-scan fusion needs at least two SELECTs")
    row = out_row_nbytes(group.producer)

    stages: list[StageSpec] = [StageSpec(
        StageKind.PARTITION, "partition",
        insts_per_input=costs.partition_insts, regs=costs.partition_regs)]
    total_out_sel = 0.0
    for i, sel in enumerate(group.selects):
        # every filter sees the full input (selectivity does not compound:
        # the outputs are independent), so model each as a chained filter
        # stage with selectivity 1 and account output writes in the buffer
        st = compute_stage(sel, reads_input=(i == 0), costs=costs)
        stages.append(StageSpec(
            kind=st.kind, name=st.name, insts_per_input=st.insts_per_input,
            reads_bytes_per_input=st.reads_bytes_per_input,
            selectivity=1.0, regs=st.regs))
        total_out_sel += sel.selectivity
    stages.append(StageSpec(
        StageKind.BUFFER, "buffer",
        insts_per_input=costs.buffer_insts_per_match * total_out_sel,
        writes_bytes_per_output=row * total_out_sel,
        regs=costs.buffer_regs * len(group.selects)))

    compute = Kernel(f"{group.name}.compute", stages,
                     op_names=[s.name for s in group.selects],
                     base_regs=costs.skeleton_base_regs)
    gather = Kernel(
        f"{group.name}.gather",
        stages=[StageSpec(
            StageKind.GATHER, "gather",
            insts_per_input=costs.gather_insts_per_elem * total_out_sel,
            reads_bytes_per_input=row * total_out_sel / costs.gather_bw_factor,
            writes_bytes_per_output=row * total_out_sel / costs.gather_bw_factor,
            regs=costs.gather_regs,
        )],
        op_names=[s.name for s in group.selects],
        base_regs=costs.skeleton_base_regs,
    )
    return KernelChain(name=group.name, kernels=[compute, gather])


def split_group_by_registers(group: SharedScanGroup,
                             costs: StageCostParams = DEFAULT_STAGE_COSTS,
                             max_regs: int = 63) -> list[SharedScanGroup]:
    """Split an oversized group so each sub-group's fused kernel stays
    within the per-thread register budget (the SS III-C caveat applied to
    multi-output kernels)."""
    def regs_for(k: int) -> int:
        # skeleton + partition + k filter stages + k output cursors
        sample = group.selects[0]
        st = compute_stage(sample, reads_input=True, costs=costs)
        return (costs.skeleton_base_regs + costs.partition_regs
                + k * st.regs + k * costs.buffer_regs)

    max_k = len(group.selects)
    while max_k > 2 and regs_for(max_k) > max_regs:
        max_k -= 1
    if max_k >= len(group.selects):
        return [group]
    out: list[SharedScanGroup] = []
    selects = list(group.selects)
    for start in range(0, len(selects), max_k):
        chunk = tuple(selects[start:start + max_k])
        out.append(SharedScanGroup(producer=group.producer, selects=chunk))
    return out


def multi_select(rel: Relation, predicates: list[Predicate],
                 num_ctas: int = 112) -> list[Relation]:
    """Functional shared-scan execution: one pass over each CTA chunk
    evaluates every predicate; each output gets its own buffers/gather.

    Equivalent to ``[select(rel, p) for p in predicates]`` -- asserted by
    the tests -- but reading the input once.
    """
    if not predicates:
        raise FusionError("multi_select needs at least one predicate")
    chunks = partition(rel.num_rows, num_ctas)
    per_output_buffers: list[list] = [[] for _ in predicates]
    for cta, chunk in enumerate(chunks):
        cols = {name: col[chunk] for name, col in rel.columns.items()}
        for k, pred in enumerate(predicates):
            mask = np.asarray(pred.evaluate(cols), dtype=bool)
            buf = buffer_stage(chunk, mask)
            buf.cta = cta
            per_output_buffers[k].append(buf)
    return [gather_stage(rel, bufs) for bufs in per_output_buffers]

"""Memory-aware batch formation over the admission queue.

The scheduler pops the highest-priority request, then pulls every queued
request that shares its *batch key* -- the (name, row width, cardinality)
of its dominant base table -- into the same dispatch, as long as the
batch's estimated device working set stays under the memory budget.
Queries sharing a key read the same upload, so the cross-query shared-scan
path (:meth:`~repro.runtime.workload.WorkloadScheduler.run_batched_streams`)
pays the PCIe transfer and the scan once for the whole batch.

The working-set estimate is deliberately an upper bound (inputs + every
intermediate live at once): admission to a batch must never *create* the
device-OOM chunking regime for co-scheduled queries that would each have
fit alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.opmodels import out_row_nbytes
from ..plans.plan import OpType
from ..runtime.sizes import estimate_sizes
from ..simgpu.device import DeviceSpec
from .arrivals import QueryRequest, catalog_plan, catalog_rows
from .queue import BoundedPriorityQueue


@lru_cache(maxsize=None)
def _kind_stats(kind: str, elements: int):
    """(batch key, source byte map, intermediate bytes) for a catalog
    query at one scale -- cached, the catalog is small and plans immutable."""
    plan = catalog_plan(kind)
    sizes = estimate_sizes(plan, catalog_rows(kind, elements))
    src_bytes: dict[tuple[str, int, int], float] = {}
    for src in plan.sources():
        key = (src.name, out_row_nbytes(src), sizes[src.name])
        src_bytes[key] = float(sizes[src.name]) * out_row_nbytes(src)
    driver = max(src_bytes, key=lambda k: (src_bytes[k], k[0]))
    inter = sum(float(sizes[n.name]) * out_row_nbytes(n)
                for n in plan.topological() if n.op is not OpType.SOURCE)
    return driver, src_bytes, inter


def batch_key(req: QueryRequest) -> tuple[str, int, int]:
    """(table, bytes/row, rows) of the request's dominant base table.

    Requests batch together only when all three match: same-named tables
    with different declared widths or cardinalities (e.g. Q21's 48 B/row
    ``lineitem`` vs Q6's 16 B/row view of it) are *not* merged, since a
    merged plan would share one source node between them.
    """
    return _kind_stats(req.kind, req.elements)[0]


def request_footprint(req: QueryRequest) -> float:
    """Upper-bound device bytes to run the request alone: all source
    uploads plus every intermediate simultaneously live."""
    _, src_bytes, inter = _kind_stats(req.kind, req.elements)
    return sum(src_bytes.values()) + inter


@dataclass
class BatchScheduler:
    """Forms dispatches from the queue under a device-memory budget."""

    device: DeviceSpec
    max_batch: int = 8
    memory_safety: float = 0.8
    #: False degenerates to one-query dispatches (the isolated baseline)
    batching: bool = True

    @property
    def budget_bytes(self) -> float:
        return self.device.global_mem_bytes * self.memory_safety

    def next_batch(self, queue: BoundedPriorityQueue,
                   now: float) -> list[QueryRequest]:
        """Pop the head and co-schedule same-key requests that fit."""
        head = queue.pop()
        if head is None:
            return []
        if not self.batching:
            return [head]
        key = batch_key(head)
        _, src_bytes, inter = _kind_stats(head.kind, head.elements)
        shared: dict[tuple[str, int, int], float] = dict(src_bytes)
        total = sum(shared.values()) + inter
        batch = [head]
        for cand in queue.snapshot():
            if len(batch) >= self.max_batch:
                break
            if batch_key(cand) != key:
                continue
            _, cand_src, cand_inter = _kind_stats(cand.kind, cand.elements)
            marginal = cand_inter + sum(
                b for k, b in cand_src.items() if k not in shared)
            if total + marginal > self.budget_bytes:
                continue
            queue.remove(cand)
            batch.append(cand)
            total += marginal
            shared.update(cand_src)
        return batch

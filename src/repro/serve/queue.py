"""A bounded priority queue of admitted queries.

Ordering is ``(priority, absolute deadline, arrival sequence)`` -- urgent
tenants first, then earliest deadline, then FIFO -- implemented on a heap
with lazy deletion so the batch scheduler can pull arbitrary same-table
requests out of the middle without re-heapifying.
"""

from __future__ import annotations

import heapq

from ..errors import SchedulingError
from .arrivals import QueryRequest


class BoundedPriorityQueue:
    """Priority/deadline queue with a hard capacity bound."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise SchedulingError("queue capacity must be at least 1")
        self.capacity = capacity
        self._heap: list[tuple[int, float, int, QueryRequest]] = []
        self._removed: set[int] = set()
        self._live = 0

    @staticmethod
    def _key(req: QueryRequest) -> tuple[int, float, int]:
        return (req.priority, req.deadline_s, req.req_id)

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        return self._live >= self.capacity

    def push(self, req: QueryRequest) -> bool:
        """Enqueue; False (and no change) when the queue is at capacity."""
        if self.full:
            return False
        heapq.heappush(self._heap, (*self._key(req), req))
        self._live += 1
        return True

    def _compact(self) -> None:
        while self._heap and self._heap[0][3].req_id in self._removed:
            _, _, _, req = heapq.heappop(self._heap)
            self._removed.discard(req.req_id)

    def peek(self) -> QueryRequest | None:
        self._compact()
        return self._heap[0][3] if self._heap else None

    def pop(self) -> QueryRequest | None:
        self._compact()
        if not self._heap:
            return None
        req = heapq.heappop(self._heap)[3]
        self._live -= 1
        return req

    def remove(self, req: QueryRequest) -> None:
        """Lazy removal of a specific queued request (used when the batch
        scheduler co-schedules it out of priority order)."""
        self._removed.add(req.req_id)
        self._live -= 1

    def snapshot(self) -> list[QueryRequest]:
        """Live requests in priority order (cheap: sorts a copy)."""
        live = [entry[3] for entry in self._heap
                if entry[3].req_id not in self._removed]
        live.sort(key=self._key)
        return live

    def drop_expired(self, now: float) -> list[QueryRequest]:
        """Remove and return every queued request whose deadline passed."""
        expired = [r for r in self.snapshot() if r.deadline_s < now]
        for req in expired:
            self.remove(req)
        return expired

"""Client model: who asks what, when.

Tenants offer queries from a fixed catalog (TPC-H Q1/Q6/Q21 plus two
SQL-frontend shapes compiled through :func:`repro.sql.sql_to_plan`).  Two
client disciplines are modeled:

* **open loop** -- a merged Poisson process at the configured offered load;
  each arrival picks a tenant by weight and a query kind from the tenant's
  mix.  Arrivals do not wait for completions, so overload queues up --
  exactly the regime admission control exists for.
* **closed loop** -- a tenant with ``closed_loop_clients > 0`` models that
  many clients, each issuing its next query an exponential think time
  after its previous one completes (feedback through
  :meth:`ArrivalProcess.on_completion`).

Determinism: every draw comes from ``random.Random`` streams derived from
the process seed (per-client streams for closed-loop tenants), so a trace
is a pure function of ``(seed, qps, duration, tenants)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from ..plans.plan import Plan
from ..sql import sql_to_plan
from ..tpch import (
    build_q1_plan,
    build_q21_plan,
    build_q6_plan,
    q1_source_rows,
    q21_source_rows,
    q6_source_rows,
)

# ---------------------------------------------------------------------------
# query catalog
# ---------------------------------------------------------------------------

#: SQL-frontend shapes served alongside the TPC-H plans.  ``lineitem`` is
#: declared at Q6's 16 B/row so these batch with Q6 over the same upload.
_SQL_SCAN = ("SELECT orderkey FROM lineitem WHERE orderkey < 1000",
             {"lineitem": 16})
_SQL_AGG = ("SELECT returnflag, COUNT(*) AS n FROM lineitem "
            "GROUP BY returnflag", {"lineitem": 16})


@lru_cache(maxsize=None)
def catalog_plan(kind: str) -> Plan:
    """The (cached, immutable) logical plan for a catalog query kind."""
    if kind == "q1":
        return build_q1_plan()
    if kind == "q6":
        return build_q6_plan()
    if kind == "q21":
        return build_q21_plan()
    if kind == "sql_scan":
        return sql_to_plan(_SQL_SCAN[0], row_nbytes=_SQL_SCAN[1])
    if kind == "sql_agg":
        return sql_to_plan(_SQL_AGG[0], row_nbytes=_SQL_AGG[1])
    if kind.startswith("tpch_q"):
        from ..tpch.catalog import compile_tpch
        return compile_tpch(kind[len("tpch_"):]).plan
    raise KeyError(f"unknown catalog query kind {kind!r}")


def catalog_rows(kind: str, elements: int) -> dict[str, int]:
    """Source cardinalities for a catalog query at `elements` lineitems."""
    if kind == "q1":
        return q1_source_rows(elements)
    if kind == "q21":
        return q21_source_rows(elements, elements // 4,
                               max(1, elements // 600))
    if kind in ("q6", "sql_scan", "sql_agg"):
        return q6_source_rows(elements)
    if kind.startswith("tpch_q"):
        from ..tpch import schema
        sf = elements / schema.BASE_ROWS["lineitem"]
        return {t: schema.scaled_rows(t, sf) for t in schema.BASE_ROWS}
    raise KeyError(f"unknown catalog query kind {kind!r}")


#: the frontend-compiled suite (src/repro/tpch/catalog.py), served under
#: a ``tpch_`` prefix to keep the hand-built q1/q6/q21 plans distinct
FRONTEND_KINDS = tuple(f"tpch_q{i}" for i in range(1, 23))

QUERY_KINDS = ("q1", "q6", "q21", "sql_scan", "sql_agg") + FRONTEND_KINDS


# ---------------------------------------------------------------------------
# tenants and requests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: its query mix, load share, and SLO."""

    name: str
    #: (kind, weight) pairs -- kept ordered so draws are deterministic
    mix: tuple[tuple[str, float], ...]
    #: share of the open-loop offered load (ignored for closed-loop tenants)
    weight: float = 1.0
    #: dispatch priority; 0 is most urgent
    priority: int = 1
    #: per-query latency SLO, relative to arrival
    deadline_s: float = 1.0
    #: per-query input scale (simulated lineitem cardinality)
    elements: int = 4_000_000
    #: > 0 switches this tenant to the closed-loop discipline
    closed_loop_clients: int = 0
    #: mean think time between a completion and the client's next query
    think_s: float = 0.05

    def __post_init__(self):
        if not self.mix:
            raise ValueError(f"tenant {self.name!r} has an empty mix")
        for kind, _ in self.mix:
            if kind not in QUERY_KINDS:
                raise KeyError(f"unknown catalog query kind {kind!r}")


#: the default serving population: an interactive dashboard tier with a
#: tight SLO, a reporting tier running the heavy paper queries, and a
#: low-priority ad-hoc tier
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("interactive",
               mix=(("q6", 0.6), ("sql_scan", 0.25), ("sql_agg", 0.15)),
               weight=0.6, priority=0, deadline_s=0.5, elements=2_000_000),
    TenantSpec("reporting",
               mix=(("q1", 0.4), ("q21", 0.2), ("tpch_q3", 0.15),
                    ("tpch_q9", 0.1), ("tpch_q14", 0.1), ("tpch_q19", 0.05)),
               weight=0.3, priority=1, deadline_s=4.0, elements=4_000_000),
    TenantSpec("adhoc",
               mix=(("q6", 0.4), ("sql_scan", 0.4), ("tpch_q13", 0.2)),
               weight=0.1, priority=2, deadline_s=2.0, elements=2_000_000),
)


@dataclass(frozen=True)
class QueryRequest:
    """One offered query: what to run, when it arrived, and its SLO."""

    req_id: int
    tenant: str
    kind: str
    arrival_s: float
    priority: int
    #: absolute deadline (arrival + tenant SLO)
    deadline_s: float
    elements: int
    #: closed-loop client index, -1 for open-loop arrivals
    client: int = -1

    def plan(self) -> Plan:
        return catalog_plan(self.kind)

    def source_rows(self) -> dict[str, int]:
        return catalog_rows(self.kind, self.elements)


# ---------------------------------------------------------------------------
# arrival process
# ---------------------------------------------------------------------------

class ArrivalProcess:
    """Seeded arrival generator over a tenant population."""

    def __init__(self, qps: float, duration_s: float,
                 tenants: tuple[TenantSpec, ...] = DEFAULT_TENANTS,
                 seed: int = 0):
        if qps <= 0:
            raise ValueError(f"qps must be positive, got {qps}")
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        self.qps = qps
        self.duration_s = duration_s
        self.tenants = tenants
        self.seed = seed
        self._next_id = 0
        self._client_rng: dict[tuple[str, int], random.Random] = {}

    # -- open loop ---------------------------------------------------------
    def trace(self) -> list[QueryRequest]:
        """The open-loop Poisson trace plus each closed-loop client's first
        query, sorted by arrival time."""
        rng = random.Random(self.seed)
        open_tenants = [t for t in self.tenants if not t.closed_loop_clients]
        out: list[QueryRequest] = []
        if open_tenants:
            weights = [t.weight for t in open_tenants]
            t_now = 0.0
            while True:
                t_now += rng.expovariate(self.qps)
                if t_now >= self.duration_s:
                    break
                tenant = rng.choices(open_tenants, weights=weights)[0]
                out.append(self._make(tenant, t_now, rng))
        for tenant in self.tenants:
            for client in range(tenant.closed_loop_clients):
                crng = self._client_stream(tenant, client)
                first = crng.expovariate(1.0 / tenant.think_s)
                if first < self.duration_s:
                    out.append(self._make(tenant, first, crng, client=client))
        out.sort(key=lambda r: (r.arrival_s, r.req_id))
        return out

    # -- closed loop -------------------------------------------------------
    def on_completion(self, request: QueryRequest,
                      completion_s: float) -> QueryRequest | None:
        """The follow-up query a closed-loop client issues after its
        previous one completed; None for open-loop requests or past the
        offered-load window."""
        if request.client < 0:
            return None
        tenant = next(t for t in self.tenants if t.name == request.tenant)
        crng = self._client_stream(tenant, request.client)
        t_next = completion_s + crng.expovariate(1.0 / tenant.think_s)
        if t_next >= self.duration_s:
            return None
        return self._make(tenant, t_next, crng, client=request.client)

    # -- internals ---------------------------------------------------------
    def _client_stream(self, tenant: TenantSpec, client: int) -> random.Random:
        key = (tenant.name, client)
        if key not in self._client_rng:
            self._client_rng[key] = random.Random(
                (self.seed, tenant.name, client).__repr__())
        return self._client_rng[key]

    def _make(self, tenant: TenantSpec, t: float, rng: random.Random,
              client: int = -1) -> QueryRequest:
        kinds = [k for k, _ in tenant.mix]
        weights = [w for _, w in tenant.mix]
        kind = rng.choices(kinds, weights=weights)[0]
        req = QueryRequest(
            req_id=self._next_id, tenant=tenant.name, kind=kind,
            arrival_s=t, priority=tenant.priority,
            deadline_s=t + tenant.deadline_s, elements=tenant.elements,
            client=client)
        self._next_id += 1
        return req

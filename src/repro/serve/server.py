"""The serving loop: a discrete-event simulation over simulated time.

One device serves one dispatch at a time (the batch itself may fan out
over streams internally).  The loop interleaves, in simulated-time order:

1. **ingest** -- arrivals up to "now" go through admission (bounded queue,
   backpressure shedding);
2. **expire** -- queued queries whose deadline already passed are shed
   rather than wasting device time;
3. **dispatch** -- the batch scheduler forms a memory-fitting same-table
   group; ``batched`` mode sends it down the cross-query shared-scan path
   on the Stream Pool, ``isolated`` mode runs the head query alone;
4. **complete** -- every query in the batch finishes at dispatch +
   makespan; latencies, SLO hits, and closed-loop follow-ups are recorded.

Fault-aware serving: with a chaos plan configured, batch ``k`` runs under
the plan reseeded with ``k``.  A fault that survives the engine's retry
budget poisons only its batch: the Stream Pool is reset and the batch
re-dispatched query-by-query through the Executor's PR-2 degradation
ladder (whose last rung, the host baseline, cannot fault), so the server
never dies -- the batch just runs degraded and the metrics say so.

Multi-device serving (``devices > 1``): the admission queue and batch
scheduler stay shared, but each formed batch is routed to the device lane
with the **least outstanding dispatched bytes** (ties to the lowest
device id).  Lanes run on :func:`~repro.cluster.host.contended_device`
specs -- same shared-host staging model as the cluster executor -- each
with its own WorkloadScheduler and Stream Pool, and completions are drained
from a time-ordered in-flight heap, so lanes genuinely overlap in
simulated time.  Per-lane counters land in ``ServeMetrics.per_device``
(``device.<i>.*`` summary keys).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..faults import FaultPlan
from ..simgpu.device import DeviceSpec
from ..simgpu.timeline import Timeline
from .admission import AdmissionController, AdmissionDecision
from .arrivals import ArrivalProcess, QueryRequest
from .dispatch import DispatchEngine, DispatchRequest
from .metrics import DeviceLaneStats, ServeMetrics
from .queue import BoundedPriorityQueue
from .scheduler import BatchScheduler


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serve run (all deterministic)."""

    #: "batched" (shared-scan groups on the Stream Pool) or "isolated"
    #: (one query per dispatch, own upload)
    mode: str = "batched"
    queue_capacity: int = 64
    max_batch: int = 8
    #: Stream-Pool worker streams per batch dispatch
    max_streams: int = 4
    #: fraction of device memory the batch working set may claim
    memory_safety: float = 0.8
    #: margin on predicted wait before backpressure shedding (see
    #: :class:`~repro.serve.admission.AdmissionController`)
    backpressure_slack: float = 1.0
    #: strict mode: sanitize every batch timeline (docs/VALIDATION.md)
    check: bool = False
    #: static pre-flight (docs/ANALYSIS.md): lint every batch's plans and
    #: race-check the batched stream program before dispatch; error
    #: findings raise :class:`~repro.errors.AnalysisError` (aborting the
    #: dispatch), warnings are counted in the metrics
    analyze: bool = False
    #: shed queries the abstract interpreter proves cannot fit the lane
    #: device (MEM701 certain-OOM under serial residency at this config's
    #: ``memory_safety``) instead of dispatching them; counted in
    #: ``ServeMetrics.shed_unsafe``.  Default off
    shed_unsafe: bool = False
    #: chaos plan; batch ``k`` runs under ``faults.reseeded(k)``
    faults: FaultPlan | None = None
    #: device lanes sharing one host (1 = the classic serial server)
    devices: int = 1
    #: content-addressed dispatch cache
    #: (:class:`repro.optimizer.plancache.PlanCache`): a repeat batch --
    #: same plans, same stats, same platform -- skips planning, analysis,
    #: and simulation entirely and replays the priced result.  The cache
    #: is process-private: with ``workers > 1`` each worker holds its own
    #: copy (pooled hit-rates merge via ``PlanCache.merge_stats``)
    plan_cache: object | None = None
    #: warm worker processes simulating dispatches (docs/SERVING.md,
    #: "Worker pools"); 1 = simulate in-process.  The pool changes *where*
    #: dispatches are simulated, never *what* they compute: summaries are
    #: byte-identical across worker counts at the same seed
    workers: int = 1
    #: tenant->worker routing: "hash" (stable blake2b of the tenant id) or
    #: "least-bytes" (epoch-pinned least-outstanding-bytes rebalancing)
    worker_rebalance: str = "hash"
    #: seed component of the pool's idempotent dispatch keys
    pool_seed: int = 0

    def __post_init__(self):
        if self.mode not in ("batched", "isolated"):
            raise ValueError(f"unknown serve mode {self.mode!r}")
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.worker_rebalance not in ("hash", "least-bytes"):
            raise ValueError(
                f"unknown worker_rebalance {self.worker_rebalance!r}")


@dataclass
class RequestRecord:
    """Final disposition of one offered query."""

    request: QueryRequest
    #: completed | missed_deadline | shed_queue_full | shed_backpressure |
    #: shed_expired | shed_unsafe
    status: str
    completion_s: float | None = None

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.request.arrival_s


@dataclass
class ServeResult:
    config: ServeConfig
    metrics: ServeMetrics
    records: list[RequestRecord]
    #: (dispatch time, batch timeline) per dispatch, for tracing
    segments: list[tuple[float, Timeline]] = field(default_factory=list)
    #: device lane of each segment (parallel to ``segments``; all zeros
    #: for single-device runs)
    segment_devices: list[int] = field(default_factory=list)

    def merged_timeline(self) -> Timeline:
        """All batch timelines on one clock (for the trace exporter)."""
        merged = Timeline()
        for t0, tl in self.segments:
            merged.extend(tl, offset=t0)
        return merged

    def device_timelines(self) -> dict[int, Timeline]:
        """Per-lane merged timelines on the shared clock (one trace lane
        group per device, like the cluster executor's)."""
        devs = self.segment_devices or [0] * len(self.segments)
        out: dict[int, Timeline] = {
            d: Timeline() for d in range(self.config.devices)}
        for dev, (t0, tl) in zip(devs, self.segments):
            out[dev].extend(tl, offset=t0)
        return out


class QueryServer:
    """Serves an arrival trace on the simulated device."""

    def __init__(self, device: DeviceSpec | None = None,
                 config: ServeConfig = ServeConfig(),
                 kill_worker: int | None = None):
        self.device = device or DeviceSpec()
        self.config = config
        self.engine = DispatchEngine(self.device, config)
        if config.workers > 1:
            from ..workers import WorkerPool
            self._backend = WorkerPool(self.device, config,
                                       kill_worker=kill_worker)
        else:
            self._backend = self.engine
        #: stats returned by the backend at close (worker-pool report
        #: material; empty for the in-process backend)
        self.backend_stats: dict = {}

    @property
    def lane_device(self) -> DeviceSpec:
        return self.engine.lane_device

    @property
    def pool(self):
        """The WorkerPool backend, or None for in-process serving."""
        return self._backend if self._backend is not self.engine else None

    def close(self) -> dict:
        """Shut the dispatch backend down (terminates pool workers) and
        return its final stats."""
        self.backend_stats = self._backend.close()
        return self.backend_stats

    # ------------------------------------------------------------------
    def run(self, trace: list[QueryRequest] | None = None,
            arrivals: ArrivalProcess | None = None) -> ServeResult:
        """Serve `trace` (or `arrivals`' trace) to completion.

        Passing an explicit `trace` fixes the offered load exactly, so two
        runs differing only in scheduling policy are comparable
        query-for-query; `arrivals` additionally enables closed-loop
        feedback for tenants that model it.
        """
        if trace is None:
            if arrivals is None:
                raise ValueError("need a trace or an ArrivalProcess")
            trace = arrivals.trace()
        cfg = self.config
        if cfg.devices > 1:
            return self._run_multi(trace, arrivals)
        #: min-heap of not-yet-arrived requests (closed-loop feedback
        #: inserts into the future)
        pending: list[tuple[float, int, QueryRequest]] = [
            (r.arrival_s, r.req_id, r) for r in trace]
        heapq.heapify(pending)

        queue = BoundedPriorityQueue(cfg.queue_capacity)
        admission = AdmissionController(queue, slack=cfg.backpressure_slack)
        scheduler = BatchScheduler(
            self.device, max_batch=cfg.max_batch,
            memory_safety=cfg.memory_safety, batching=cfg.mode == "batched")
        metrics = ServeMetrics()
        records: list[RequestRecord] = []
        segments: list[tuple[float, Timeline]] = []

        def respond(req: QueryRequest, t: float) -> None:
            """Closed-loop feedback: any response (result or shed) lets the
            client think and issue its next query."""
            if arrivals is None:
                return
            nxt = arrivals.on_completion(req, t)
            if nxt is not None:
                heapq.heappush(pending, (nxt.arrival_s, nxt.req_id, nxt))

        now = 0.0
        batch_idx = 0
        epoch = 0
        while pending or len(queue):
            if not len(queue):
                now = max(now, pending[0][0])
            while pending and pending[0][0] <= now:
                req = heapq.heappop(pending)[2]
                metrics.offered += 1
                decision = admission.offer(req, req.arrival_s)
                if decision is AdmissionDecision.ADMITTED:
                    metrics.admitted += 1
                elif decision is AdmissionDecision.SHED_QUEUE_FULL:
                    metrics.shed_queue_full += 1
                    records.append(RequestRecord(req, "shed_queue_full"))
                    respond(req, req.arrival_s)
                else:
                    metrics.shed_backpressure += 1
                    records.append(RequestRecord(req, "shed_backpressure"))
                    respond(req, req.arrival_s)
            for req in queue.drop_expired(now):
                metrics.shed_expired += 1
                records.append(RequestRecord(req, "shed_expired"))
                respond(req, now)
            batch = scheduler.next_batch(queue, now)
            if cfg.shed_unsafe and batch:
                safe = []
                for req in batch:
                    if self._statically_unsafe(req):
                        metrics.shed_unsafe += 1
                        records.append(RequestRecord(req, "shed_unsafe"))
                        respond(req, now)
                    else:
                        safe.append(req)
                batch = safe
            if not batch:
                continue

            assignment = DispatchRequest(tuple(batch), batch_idx, 0)
            epoch += 1
            (makespan, timeline, degraded, faults_seen, warnings), = \
                self._backend.execute_round([assignment], epoch)
            segments.append((now, timeline))
            metrics.batches += 1
            metrics.batch_sizes.append(len(batch))
            metrics.busy_s += makespan
            metrics.degraded_batches += int(degraded)
            metrics.faults_observed += faults_seen
            metrics.analysis_warnings += warnings
            admission.note_service(len(batch), makespan)

            t_end = now + makespan
            completions: list[tuple[str, float, bool]] = []
            for req in batch:
                ok = t_end <= req.deadline_s
                metrics.record_completion(req.tenant, t_end - req.arrival_s, ok)
                records.append(RequestRecord(
                    req, "completed" if ok else "missed_deadline", t_end))
                completions.append((req.tenant, t_end - req.arrival_s, ok))
                respond(req, t_end)
            self._backend.acknowledge(batch_idx, t_end, batch_idx, completions)
            now = t_end
            batch_idx += 1

        metrics.served_s = now
        metrics.check_finite()
        return ServeResult(config=cfg, metrics=metrics, records=records,
                           segments=segments,
                           segment_devices=[0] * len(segments))

    # ------------------------------------------------------------------
    def _run_multi(self, trace: list[QueryRequest],
                   arrivals: ArrivalProcess | None) -> ServeResult:
        """The ``devices > 1`` loop: shared admission and batching,
        least-outstanding-bytes routing, overlapping lane completions."""
        from .scheduler import request_footprint

        cfg = self.config
        pending: list[tuple[float, int, QueryRequest]] = [
            (r.arrival_s, r.req_id, r) for r in trace]
        heapq.heapify(pending)
        queue = BoundedPriorityQueue(cfg.queue_capacity)
        admission = AdmissionController(queue, slack=cfg.backpressure_slack)
        scheduler = BatchScheduler(
            self.lane_device, max_batch=cfg.max_batch,
            memory_safety=cfg.memory_safety, batching=cfg.mode == "batched")
        metrics = ServeMetrics()
        for dev in range(cfg.devices):
            metrics.per_device[dev] = DeviceLaneStats()
        records: list[RequestRecord] = []
        segments: list[tuple[float, Timeline]] = []
        segment_devices: list[int] = []

        def respond(req: QueryRequest, t: float) -> None:
            if arrivals is None:
                return
            nxt = arrivals.on_completion(req, t)
            if nxt is not None:
                heapq.heappush(pending, (nxt.arrival_s, nxt.req_id, nxt))

        #: lane bookkeeping: when each device frees up, and how many
        #: estimated batch bytes it still has in flight (routing signal)
        busy_until = {dev: 0.0 for dev in range(cfg.devices)}
        outstanding = {dev: 0.0 for dev in range(cfg.devices)}
        #: min-heap of running batches: (t_end, seq, dev, batch, bytes)
        inflight: list[tuple[float, int, int, list[QueryRequest], float]] = []

        now = 0.0
        batch_idx = 0
        seq = 0
        epoch = 0
        last_end = 0.0
        while pending or len(queue) or inflight:
            while pending and pending[0][0] <= now:
                req = heapq.heappop(pending)[2]
                metrics.offered += 1
                decision = admission.offer(req, req.arrival_s)
                if decision is AdmissionDecision.ADMITTED:
                    metrics.admitted += 1
                elif decision is AdmissionDecision.SHED_QUEUE_FULL:
                    metrics.shed_queue_full += 1
                    records.append(RequestRecord(req, "shed_queue_full"))
                    respond(req, req.arrival_s)
                else:
                    metrics.shed_backpressure += 1
                    records.append(RequestRecord(req, "shed_backpressure"))
                    respond(req, req.arrival_s)
            while inflight and inflight[0][0] <= now:
                t_end, order, dev, batch, nbytes, bidx = \
                    heapq.heappop(inflight)
                outstanding[dev] -= nbytes
                last_end = max(last_end, t_end)
                completions: list[tuple[str, float, bool]] = []
                for req in batch:
                    ok = t_end <= req.deadline_s
                    metrics.record_completion(
                        req.tenant, t_end - req.arrival_s, ok)
                    records.append(RequestRecord(
                        req, "completed" if ok else "missed_deadline",
                        t_end))
                    completions.append((req.tenant, t_end - req.arrival_s, ok))
                    respond(req, t_end)
                self._backend.acknowledge(bidx, t_end, order, completions)
            for req in queue.drop_expired(now):
                metrics.shed_expired += 1
                records.append(RequestRecord(req, "shed_expired"))
                respond(req, now)

            # form the whole round before executing it: routing below only
            # depends on pre-round lane state (a routed lane leaves `idle`,
            # and `outstanding`/`note_service` updates cannot influence the
            # same round), so deferring execution is outcome-identical and
            # lets the worker-pool backend fan a round out across processes
            idle = [dev for dev in range(cfg.devices)
                    if busy_until[dev] <= now]
            assignments: list[DispatchRequest] = []
            while idle and len(queue):
                batch = scheduler.next_batch(queue, now)
                if not batch:
                    break
                if cfg.shed_unsafe:
                    safe = []
                    for req in batch:
                        if self._statically_unsafe(req):
                            metrics.shed_unsafe += 1
                            records.append(
                                RequestRecord(req, "shed_unsafe"))
                            respond(req, now)
                        else:
                            safe.append(req)
                    batch = safe
                    if not batch:
                        continue
                # least outstanding bytes wins the batch; ties go to the
                # lowest device id
                dev = min(idle, key=lambda d: (outstanding[d], d))
                idle.remove(dev)
                assignments.append(
                    DispatchRequest(tuple(batch), batch_idx, dev))
                batch_idx += 1
            if assignments:
                epoch += 1
                outcomes = self._backend.execute_round(assignments, epoch)
                for a, (makespan, timeline, degraded, faults_seen,
                        warnings) in zip(assignments, outcomes):
                    dev = a.lane
                    batch = list(a.batch)
                    segments.append((now, timeline))
                    segment_devices.append(dev)
                    nbytes = sum(request_footprint(r) for r in batch)
                    metrics.batches += 1
                    metrics.batch_sizes.append(len(batch))
                    metrics.busy_s += makespan
                    metrics.degraded_batches += int(degraded)
                    metrics.faults_observed += faults_seen
                    metrics.analysis_warnings += warnings
                    lane = metrics.per_device[dev]
                    lane.batches += 1
                    lane.queries += len(batch)
                    lane.busy_s += makespan
                    lane.dispatched_bytes += nbytes
                    # the estimator sees per-query service time as before;
                    # with N lanes the backlog drains N-wide, so the wait a
                    # queued query faces shrinks accordingly
                    admission.note_service(
                        len(batch) * cfg.devices, makespan)
                    t_end = now + makespan
                    busy_until[dev] = t_end
                    outstanding[dev] += nbytes
                    heapq.heappush(
                        inflight,
                        (t_end, seq, dev, batch, nbytes, a.batch_idx))
                    seq += 1
                continue

            horizons = []
            if pending:
                horizons.append(pending[0][0])
            if inflight:
                horizons.append(inflight[0][0])
            if len(queue):
                # queued work but every lane busy: wait for the first
                # completion (inflight must be non-empty here)
                horizons = [h for h in horizons if h > now] or horizons
            if not horizons:
                break  # pragma: no cover - loop guard implies an event
            now = max(now, min(horizons))

        metrics.served_s = last_end if metrics.completed else now
        metrics.check_finite()
        return ServeResult(config=cfg, metrics=metrics, records=records,
                           segments=segments,
                           segment_devices=segment_devices)

    # ------------------------------------------------------------------
    def _statically_unsafe(self, req: QueryRequest) -> bool:
        """Admission-side memory check: True when the abstract interpreter
        proves the request cannot fit the lane device resident (MEM701
        under serial execution at this config's ``memory_safety``).
        Verdicts are memoized per (query kind, elements)."""
        memo = getattr(self, "_unsafe_memo", None)
        if memo is None:
            memo = self._unsafe_memo = {}
        key = (req.kind, req.elements)
        if key not in memo:
            from ..analyze.memory_check import check_strategy
            from ..runtime.strategies import Strategy
            verdict = check_strategy(
                req.plan(), Strategy.SERIAL, req.source_rows(),
                self.lane_device, memory_safety=self.config.memory_safety)
            memo[key] = verdict.certain_oom
        return memo[key]

    # ------------------------------------------------------------------
    # thin delegates: dispatch simulation lives in
    # :class:`repro.serve.dispatch.DispatchEngine` so worker processes can
    # own an identical engine without importing the serve loop's state
    def _dispatch(self, batch: list[QueryRequest], batch_idx: int,
                  lane: int = 0) -> tuple[float, Timeline, bool, int, int]:
        return self.engine.dispatch(batch, batch_idx, lane)

    def _dispatch_key(self, batch: list[QueryRequest],
                      fault_plan: FaultPlan | None) -> str:
        return self.engine.dispatch_key(batch, fault_plan)

    def _dispatch_degraded(self, batch: list[QueryRequest],
                           fault_plan: FaultPlan | None,
                           warnings: int = 0
                           ) -> tuple[float, Timeline, bool, int, int]:
        return self.engine.dispatch_degraded(batch, fault_plan, warnings)

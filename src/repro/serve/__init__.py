"""Query-serving subsystem: admission control, memory-aware batch
scheduling, and latency SLOs on the simulated GPU.

This layer sits *above* the offline fusion/fission machinery and turns it
into an online system (docs/SERVING.md): a seeded open/closed-loop client
model offers TPC-H and SQL-frontend queries (:mod:`repro.serve.arrivals`);
an admission controller with a bounded priority queue sheds load under
backpressure (:mod:`repro.serve.admission`); a memory-aware batch scheduler
groups co-resident queries by shared base table (:mod:`repro.serve.scheduler`)
and dispatches them through the cross-query shared-scan path
(:meth:`repro.runtime.workload.WorkloadScheduler.run_batched_streams`);
and the server loop tracks p50/p95/p99 latency, goodput, and shed rate
against per-tenant SLOs (:mod:`repro.serve.metrics`,
:mod:`repro.serve.server`).

Everything is simulated-time and seeded: the same ``(trace seed, chaos
seed, config)`` produces a byte-identical metrics summary.
"""

from .admission import AdmissionController, AdmissionDecision
from .arrivals import (
    DEFAULT_TENANTS,
    QUERY_KINDS,
    ArrivalProcess,
    QueryRequest,
    TenantSpec,
    catalog_plan,
    catalog_rows,
)
from .metrics import DeviceLaneStats, LatencyStats, ServeMetrics
from .queue import BoundedPriorityQueue
from .scheduler import BatchScheduler, batch_key, request_footprint
from .server import QueryServer, ServeConfig, ServeResult

__all__ = [
    "AdmissionController", "AdmissionDecision",
    "ArrivalProcess", "QueryRequest", "TenantSpec",
    "DEFAULT_TENANTS", "QUERY_KINDS", "catalog_plan", "catalog_rows",
    "DeviceLaneStats", "LatencyStats", "ServeMetrics",
    "BoundedPriorityQueue",
    "BatchScheduler", "batch_key", "request_footprint",
    "QueryServer", "ServeConfig", "ServeResult",
]

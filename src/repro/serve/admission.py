"""Admission control: bounded queueing, backpressure, load shedding.

Two refusal mechanisms guard the queue:

* **capacity** -- the bounded queue is full: the request is shed
  immediately (the client sees backpressure rather than unbounded wait);
* **predicted deadline miss** -- an EWMA of observed per-query service
  time estimates the wait a new arrival faces behind the current backlog;
  a request whose SLO the estimate already blows is shed at the door
  instead of wasting queue space and device time.

The estimator is fed by the server after every dispatched batch, so
admission gets stricter exactly when the device falls behind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .arrivals import QueryRequest
from .queue import BoundedPriorityQueue


class AdmissionDecision(enum.Enum):
    ADMITTED = "admitted"
    SHED_QUEUE_FULL = "shed_queue_full"
    SHED_BACKPRESSURE = "shed_backpressure"


@dataclass
class AdmissionController:
    """Guards a :class:`BoundedPriorityQueue` with shedding policies."""

    queue: BoundedPriorityQueue
    #: EWMA smoothing for the per-query service-time estimate
    ewma_alpha: float = 0.2
    #: safety margin on the predicted wait before shedding (>1 sheds later)
    slack: float = 1.0
    #: current per-query service-time estimate (0 until first feedback)
    service_est_s: float = 0.0

    def offer(self, req: QueryRequest, now: float) -> AdmissionDecision:
        """Admit or shed one arriving request."""
        if self.queue.full:
            return AdmissionDecision.SHED_QUEUE_FULL
        predicted_wait = self.service_est_s * len(self.queue)
        if (self.service_est_s > 0.0
                and now + predicted_wait * self.slack > req.deadline_s):
            return AdmissionDecision.SHED_BACKPRESSURE
        if not self.queue.push(req):  # pragma: no cover - guarded above
            return AdmissionDecision.SHED_QUEUE_FULL
        return AdmissionDecision.ADMITTED

    def note_service(self, batch_size: int, makespan_s: float) -> None:
        """Feed back one dispatched batch's observed per-query service time."""
        if batch_size <= 0 or makespan_s < 0:
            return
        per_query = makespan_s / batch_size
        if self.service_est_s == 0.0:
            self.service_est_s = per_query
        else:
            self.service_est_s = (self.ewma_alpha * per_query
                                  + (1 - self.ewma_alpha) * self.service_est_s)

"""SLO accounting for a serve run.

Latency percentiles use the nearest-rank method over exact recorded
samples -- no interpolation, no estimation -- so two same-seed runs render
byte-identical summaries (an acceptance criterion checked in CI).

Definitions:

* **latency** -- completion time minus arrival time (queueing + service);
* **goodput** -- queries that completed *within their deadline* per second
  of served simulated time;
* **shed rate** -- queries refused at admission (queue full or predicted
  deadline miss) plus queries dropped expired at dispatch, over offered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Exact latency samples with nearest-rank percentiles."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency_s: float) -> None:
        if not math.isfinite(latency_s) or latency_s < 0:
            raise ValueError(f"bad latency sample: {latency_s}")
        self.samples.append(latency_s)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; 0.0 for an empty series."""
        if not self.samples:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


@dataclass
class DeviceLaneStats:
    """Per-device counters of a multi-device serve run."""

    batches: int = 0
    queries: int = 0
    busy_s: float = 0.0
    #: estimated working-set bytes dispatched to this device (the routing
    #: signal: new batches go to the lane with the least outstanding)
    dispatched_bytes: float = 0.0


@dataclass
class ServeMetrics:
    """Counters and latency series for one serve run."""

    offered: int = 0
    admitted: int = 0
    #: refused at admission: bounded queue had no room
    shed_queue_full: int = 0
    #: refused at admission: predicted wait already blows the deadline
    shed_backpressure: int = 0
    #: dropped at dispatch: deadline passed while queued
    shed_expired: int = 0
    #: shed at dispatch: the static memory check proved the query cannot
    #: fit the lane device (``ServeConfig.shed_unsafe``)
    shed_unsafe: int = 0
    completed: int = 0
    #: completed within deadline
    completed_ok: int = 0
    missed_deadline: int = 0
    batches: int = 0
    #: batches that hit a fault past the retry budget and were re-dispatched
    #: down the degradation ladder
    degraded_batches: int = 0
    #: fault events observed across all batch timelines (``fault.*`` tags)
    faults_observed: int = 0
    #: warning-severity findings from the static pre-flight
    #: (``ServeConfig.analyze``); error findings abort dispatch instead
    analysis_warnings: int = 0
    #: total simulated time the run served (last completion)
    served_s: float = 0.0
    #: device busy time summed over batch makespans
    busy_s: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_tenant: dict[str, LatencyStats] = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    #: per-device lanes; empty for single-device runs
    per_device: dict[int, DeviceLaneStats] = field(default_factory=dict)

    # -- recording ---------------------------------------------------------
    def record_completion(self, tenant: str, latency_s: float,
                          within_deadline: bool) -> None:
        self.completed += 1
        if within_deadline:
            self.completed_ok += 1
        else:
            self.missed_deadline += 1
        self.latency.record(latency_s)
        self.per_tenant.setdefault(tenant, LatencyStats()).record(latency_s)

    # -- derived -----------------------------------------------------------
    @property
    def shed(self) -> int:
        return (self.shed_queue_full + self.shed_backpressure
                + self.shed_expired + self.shed_unsafe)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def goodput_qps(self) -> float:
        return self.completed_ok / self.served_s if self.served_s > 0 else 0.0

    @property
    def utilization(self) -> float:
        return self.busy_s / self.served_s if self.served_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def check_finite(self) -> None:
        """Raise if any derived metric is NaN/inf (the CI smoke gate)."""
        for key, value in self.summary().items():
            if isinstance(value, float) and not math.isfinite(value):
                raise ValueError(f"metric {key!r} is not finite: {value}")

    # -- rendering ---------------------------------------------------------
    def summary(self) -> dict:
        """Flat, deterministic mapping of every reported metric.

        Floats are rounded to fixed precision so the JSON rendering of two
        same-seed runs is byte-identical.
        """
        out: dict[str, object] = {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_backpressure": self.shed_backpressure,
            "shed_expired": self.shed_expired,
            "shed_unsafe": self.shed_unsafe,
            "completed": self.completed,
            "completed_ok": self.completed_ok,
            "missed_deadline": self.missed_deadline,
            "batches": self.batches,
            "degraded_batches": self.degraded_batches,
            "faults_observed": self.faults_observed,
            "analysis_warnings": self.analysis_warnings,
            "mean_batch_size": round(self.mean_batch_size, 6),
            "served_s": round(self.served_s, 9),
            "busy_s": round(self.busy_s, 9),
            "utilization": round(self.utilization, 6),
            "shed_rate": round(self.shed_rate, 6),
            "goodput_qps": round(self.goodput_qps, 6),
            "latency_p50_ms": round(self.latency.percentile(50) * 1e3, 6),
            "latency_p95_ms": round(self.latency.percentile(95) * 1e3, 6),
            "latency_p99_ms": round(self.latency.percentile(99) * 1e3, 6),
            "latency_mean_ms": round(self.latency.mean * 1e3, 6),
            "latency_max_ms": round(self.latency.max * 1e3, 6),
        }
        for tenant in sorted(self.per_tenant):
            stats = self.per_tenant[tenant]
            out[f"tenant.{tenant}.completed"] = len(stats)
            out[f"tenant.{tenant}.p50_ms"] = round(
                stats.percentile(50) * 1e3, 6)
            out[f"tenant.{tenant}.p99_ms"] = round(
                stats.percentile(99) * 1e3, 6)
        for dev in sorted(self.per_device):
            lane = self.per_device[dev]
            out[f"device.{dev}.batches"] = lane.batches
            out[f"device.{dev}.queries"] = lane.queries
            out[f"device.{dev}.busy_s"] = round(lane.busy_s, 9)
            out[f"device.{dev}.dispatched_bytes"] = round(
                lane.dispatched_bytes, 3)
            out[f"device.{dev}.utilization"] = round(
                lane.busy_s / self.served_s if self.served_s > 0 else 0.0, 6)
        return out

    def render(self) -> str:
        s = self.summary()
        lines = [
            "--- serve summary ---",
            f"offered {s['offered']}  admitted {s['admitted']}  "
            f"shed {self.shed} (full {s['shed_queue_full']}, "
            f"backpressure {s['shed_backpressure']}, "
            f"expired {s['shed_expired']}, unsafe {s['shed_unsafe']})",
            f"completed {s['completed']}  within SLO {s['completed_ok']}  "
            f"missed {s['missed_deadline']}",
            f"batches {s['batches']} (mean size {s['mean_batch_size']:.2f}, "
            f"degraded {s['degraded_batches']}, "
            f"faults observed {s['faults_observed']})",
            f"served {s['served_s']*1e3:.1f} ms simulated  "
            f"utilization {s['utilization']:.3f}",
            f"goodput {s['goodput_qps']:.2f} q/s  "
            f"shed rate {s['shed_rate']:.3f}",
            f"latency p50/p95/p99 {s['latency_p50_ms']:.2f}/"
            f"{s['latency_p95_ms']:.2f}/{s['latency_p99_ms']:.2f} ms",
        ]
        for tenant in sorted(self.per_tenant):
            lines.append(
                f"  tenant {tenant:12s} completed "
                f"{s[f'tenant.{tenant}.completed']:5d}  "
                f"p50 {s[f'tenant.{tenant}.p50_ms']:9.2f} ms  "
                f"p99 {s[f'tenant.{tenant}.p99_ms']:9.2f} ms")
        return "\n".join(lines)

"""One-batch dispatch simulation, extracted from the serve loop.

The serving loops in :mod:`repro.serve.server` decide *what* to dispatch
and *when*; this module owns *how* a formed batch turns into a simulated
timeline.  The split matters for the worker-pool backend
(:mod:`repro.workers`): a dispatch outcome is a pure function of

    (batch plans + row stats, batch index, serve config, lane device)

with no dependence on serve-loop history -- the content-addressed serve
plan cache (PR 7) replays cached outcomes regardless of what ran before,
and CI gates that replay byte-identical.  Purity is what lets any worker
process simulate any dispatch and return exactly the bytes the in-process
path would have produced.

:class:`DispatchEngine` carries the per-process simulation state (lane
device spec, per-lane WorkloadSchedulers and Stream Pools, the
process-private plan cache); :func:`simulate_dispatch` is the pure entry
point workers and the in-process server share.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultError
from ..faults import FaultPlan
from ..runtime.executor import Executor
from ..runtime.workload import QueryWorkload, WorkloadScheduler
from ..simgpu.device import DeviceSpec
from ..simgpu.timeline import Timeline
from ..streampool import StreamPool
from .arrivals import QueryRequest

#: (makespan, timeline, degraded, faults observed, analysis warnings)
DispatchOutcome = tuple[float, Timeline, bool, int, int]


@dataclass(frozen=True)
class DispatchRequest:
    """One formed batch awaiting simulation: the unit the serve loop hands
    to a dispatch backend (in-process engine or worker pool)."""

    batch: tuple[QueryRequest, ...]
    batch_idx: int
    lane: int = 0

    @property
    def tenant(self) -> str:
        """Routing tenant: the batch head's tenant (the batch scheduler
        pops the head first, so this is stable for a given queue state)."""
        return self.batch[0].tenant


class DispatchEngine:
    """Simulates dispatches on one process's copy of the device lanes.

    Owns everything a dispatch needs and nothing the serve loop needs:
    the (possibly host-contended) lane device, one WorkloadScheduler and
    Stream Pool per lane, and the optional plan cache.  The cache is
    **process-private** (see :class:`repro.optimizer.plancache.PlanCache`):
    worker processes each hold their own copy, and pooled hit-rates must
    be combined with ``PlanCache.merge_stats``, never by summing ratios.
    """

    def __init__(self, device: DeviceSpec, config) -> None:
        self.device = device
        self.config = config
        if config.devices > 1:
            from ..cluster.host import contended_device
            self.lane_device = contended_device(device, config.devices)
        else:
            self.lane_device = device
        self._wscheds = [
            WorkloadScheduler(self.lane_device, check=config.check,
                              analyze=config.analyze)
            for _ in range(config.devices)]
        self._pools: list[StreamPool | None] = [None] * config.devices

    def warm(self) -> None:
        """Pre-calibrate the simulator so the first real dispatch pays no
        cold-start cost: resolve the occupancy/utilization shapes the
        catalog kernels use (they are memoized on the device)."""
        dev = self.lane_device
        from ..simgpu.compute import default_grid
        for n in (1 << 12, 1 << 16, 1 << 20):
            _, tpc = default_grid(n, dev)
            occ = dev.occupancy(tpc, 16)
            dev.utilization(occ.resident_threads, dev.num_sms)

    # ------------------------------------------------------------------
    def dispatch(self, batch: list[QueryRequest], batch_idx: int,
                 lane: int = 0) -> DispatchOutcome:
        """Run one batch on device lane ``lane``; returns (makespan,
        timeline, degraded, faults, analysis warnings)."""
        cfg = self.config
        fault_plan = (cfg.faults.reseeded(batch_idx)
                      if cfg.faults is not None else None)
        cache_key = None
        if cfg.plan_cache is not None:
            cache_key = self.dispatch_key(batch, fault_plan)
            hit = cfg.plan_cache.get(cache_key)
            if hit is not None:
                # repeat batch: the priced dispatch replays verbatim --
                # no planning, no analysis, no simulation
                return hit
        wsched = self._wscheds[lane]
        wsched.faults = fault_plan
        plans = [r.plan() for r in batch]
        warnings = 0
        if cfg.analyze:
            # plan lints before dispatch: error findings abort the batch
            # (the batched path additionally race-checks its stream program
            # inside run_batched_streams)
            from ..analyze import Analyzer
            report = Analyzer(self.lane_device).run_all(plans)
            report.raise_if_errors()
            warnings = len(report.warnings)
        workload = QueryWorkload(plans=plans)
        rows: dict[str, int] = {}
        for req in batch:
            for name, n in req.source_rows().items():
                rows[name] = max(rows.get(name, 0), n)
        try:
            if cfg.mode == "batched":
                if self._pools[lane] is None:
                    self._pools[lane] = StreamPool(
                        self.lane_device, num_streams=1 + cfg.max_streams,
                        engine=wsched._engine())
                else:
                    self._pools[lane].reset()
                result = wsched.run_batched_streams(
                    workload, rows, pool=self._pools[lane],
                    max_streams=cfg.max_streams)
            else:
                result = wsched.run_isolated(workload, rows)
        except FaultError:
            if self._pools[lane] is not None:
                self._pools[lane].reset()
            # a fault-poisoned batch is never cached: pinning the degraded
            # timeline would replay the failure for every repeat query
            return self.dispatch_degraded(batch, fault_plan, warnings)
        faults_seen = sum(
            1 for ev in result.timeline.events if ev.tag.startswith("fault."))
        out = (result.makespan, result.timeline, False, faults_seen, warnings)
        if cache_key is not None:
            cfg.plan_cache.put(cache_key, out)
        return out

    def dispatch_key(self, batch: list[QueryRequest],
                     fault_plan: FaultPlan | None) -> str:
        """Content address of one dispatch: the batch's plans and row
        stats + serve knobs + lane-device calibration (+ the reseeded
        fault plan when chaos is on, which keys each batch uniquely --
        deliberately: a faulted schedule must not stand in for a clean
        one)."""
        from ..optimizer.fingerprint import (calibration_fingerprint,
                                             plan_fingerprint)
        cfg = self.config
        if not hasattr(self, "_lane_device_fp"):
            self._lane_device_fp = calibration_fingerprint(self.lane_device)
        plans_fp = tuple(
            (plan_fingerprint(r.plan()), tuple(sorted(
                r.source_rows().items())))
            for r in batch)
        return cfg.plan_cache.key(
            "serve", cfg.mode, cfg.max_streams, cfg.memory_safety,
            cfg.check, cfg.analyze, self._lane_device_fp, plans_fp,
            fault_plan)

    def dispatch_degraded(self, batch: list[QueryRequest],
                          fault_plan: FaultPlan | None,
                          warnings: int = 0) -> DispatchOutcome:
        """Re-dispatch a fault-poisoned batch query-by-query through the
        Executor's degradation ladder (terminal rung cannot fault)."""
        timeline = Timeline()
        faults_seen = 0
        for req in batch:
            ex = Executor(self.lane_device, check=self.config.check,
                          faults=fault_plan, degrade=True)
            r = ex.run(req.plan(), req.source_rows())
            timeline.extend(r.timeline, offset=timeline.end_time)
            faults_seen += r.faults_injected
        return timeline.end_time, timeline, True, faults_seen, warnings

    # -- backend interface -------------------------------------------------
    def execute_round(self, assignments: list[DispatchRequest],
                      epoch: int) -> list[DispatchOutcome]:
        """Simulate one scheduling round's batches, in assignment order.

        The in-process backend runs them sequentially; the worker pool
        overrides this to fan the round out across processes.  Either way
        the outcomes come back in assignment order and the serve loop
        applies bookkeeping identically, which is what keeps pooled and
        in-process summaries byte-identical.
        """
        return [simulate_dispatch(self, a) for a in assignments]

    def acknowledge(self, batch_idx: int, t_end: float, order: int,
                    completions: list[tuple[str, float, bool]]) -> None:
        """Completion callback (no-op in process; the pool uses it to ack
        outbox entries and ship per-worker completion records)."""

    def close(self) -> dict:
        """Release backend resources; returns backend stats (empty here)."""
        return {}


def batch_fingerprint(batch: "list[QueryRequest] | tuple[QueryRequest, ...]"
                      ) -> str:
    """Content hash of a batch's query plans and row stats, independent of
    serve knobs: the ``query_fingerprint`` component of the worker pool's
    idempotent dispatch key (docs/SERVING.md)."""
    from ..optimizer.fingerprint import digest, plan_fingerprint
    return digest(tuple(
        (plan_fingerprint(r.plan()),
         tuple(sorted(r.source_rows().items())))
        for r in batch))


def simulate_dispatch(engine: DispatchEngine,
                      request: DispatchRequest) -> DispatchOutcome:
    """Simulate one dispatch: the pure function both backends share.

    Given the same ``DispatchRequest`` and an equivalently-configured
    engine (same config, same device calibration), this returns the same
    outcome in any process -- the determinism contract the worker pool's
    idempotent replay relies on (docs/SERVING.md).
    """
    return engine.dispatch(list(request.batch), request.batch_idx,
                           request.lane)


__all__ = [
    "DispatchEngine", "DispatchOutcome", "DispatchRequest",
    "batch_fingerprint", "simulate_dispatch",
]

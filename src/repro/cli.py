"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info        print the simulated platform (Table II)
select      run the SELECT-chain microbenchmark under every strategy
q1 / q21 / q6
            run a TPC-H query functionally (synthetic data) and report the
            simulated strategy comparison
optimize    price every execution strategy for a query with the
            cost-based optimizer (docs/OPTIMIZER.md): --explain prints
            the full pricing table, --no-cache disables the
            compiled-plan cache, --repeat exercises cache hits
fuse        show what the fusion pass does to a query plan (+ rendered
            fused-kernel source with --render)
trace       write a Chrome trace of a strategy run for visual inspection
serve       run the query-serving simulation (docs/SERVING.md): seeded
            arrivals, admission control, memory-aware batching, SLO report
            (--devices N serves over N contended device lanes)
cluster     run a TPC-H query sharded over N simulated devices
            (docs/CLUSTER.md): deterministic partitioning, exchange/merge,
            shared-host PCIe contention, device-loss recovery
analyze     static analysis (docs/ANALYSIS.md) over the built-in corpus:
            plan lints, fusion-legality verification, stream-program race
            detection, IR lints, cluster lints; --strict fails on error
            findings (the CI lint gate)
"""

from __future__ import annotations

import argparse
import sys

from .core.fusion import fuse_plan
from .core.render import render_fused_kernel
from .faults import parse_chaos
from .plans import evaluate_sinks, pattern_census
from .runtime import ExecutionConfig, Executor, Strategy
from .runtime.select_chain import run_select_chain, select_chain_plan
from .simgpu import DeviceSpec, describe_environment
from .simgpu.trace import write_chrome_trace
from .tpch import (
    TpchConfig,
    build_q1_plan,
    build_q21_plan,
    build_q6_plan,
    generate,
    q1_column_relations,
    q1_source_rows,
    q21_source_rows,
    q6_source_rows,
)

_QUERIES = {
    "q1": (build_q1_plan, lambda n: q1_source_rows(n)),
    "q21": (build_q21_plan, lambda n: q21_source_rows(n, n // 4, max(1, n // 600))),
    "q6": (build_q6_plan, lambda n: q6_source_rows(n)),
}


def _cmd_info(args) -> int:
    print(describe_environment(DeviceSpec()))
    return 0


def _cmd_select(args) -> int:
    print(describe_environment(DeviceSpec()))
    print(f"\nSELECT chain: {args.num} x SELECT({args.selectivity:.0%}) over "
          f"{args.elements/1e6:.0f}M 32-bit ints")
    for strategy in Strategy:
        r = run_select_chain(args.elements, args.num, args.selectivity, strategy,
                             check=args.validate, faults=args.chaos)
        chaos = ""
        if args.chaos is not None:
            chaos = (f"  [chaos: {r.faults_injected} fault(s), "
                     f"{r.retries} retried"
                     + (f", degraded to {r.degraded_to}" if r.degraded_to
                        else "") + "]")
        print(f"  {strategy.value:16s} {r.throughput/1e9:7.2f} GB/s "
              f"({r.makespan*1e3:9.1f} ms, {r.num_chunks} chunk(s)){chaos}")
    return 0


def _cmd_query(args) -> int:
    build, rows_fn = _QUERIES[args.command]
    plan = build()
    rows = rows_fn(args.elements)

    if args.functional:
        data = generate(TpchConfig(scale_factor=args.scale_factor))
        if args.command == "q1":
            sources = q1_column_relations(data.lineitem)
        elif args.command == "q6":
            sources = {"lineitem": data.lineitem}
        else:
            sources = {"lineitem": data.lineitem, "orders": data.orders,
                       "supplier": data.supplier, "nation": data.nation}
        out = evaluate_sinks(plan, sources)
        for name, rel in out.items():
            print(f"{name}: {rel.num_rows} rows, fields {rel.fields}")

    print(f"\npattern census: {pattern_census(plan)}")
    print(fuse_plan(plan).describe())
    print(f"\nsimulated at {args.elements/1e6:.0f}M lineitems:")
    ex = Executor(check=args.validate, faults=args.chaos)
    base = None
    for strategy in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION):
        r = ex.run(plan, rows, ExecutionConfig(strategy=strategy))
        base = base or r.makespan
        chaos = ""
        if args.chaos is not None:
            chaos = (f"  [chaos: {r.faults_injected} fault(s), "
                     f"{r.retries} retried"
                     + (f", degraded to {r.degraded_to}" if r.degraded_to
                        else "") + "]")
        print(f"  {strategy.value:16s} {r.makespan*1e3:9.1f} ms "
              f"({r.makespan/base:5.3f} of baseline){chaos}")
    from .optimizer import Optimizer
    decision = Optimizer(ex.device).choose(plan, rows, include_cpubase=False)
    auto = ex.run(plan, rows,
                  ExecutionConfig(strategy=decision.chosen.option.strategy))
    print(f"  auto -> {decision.chosen.label} "
          f"({auto.makespan*1e3:.1f} ms)")
    for cand in decision.ranked():
        marker = " (chosen)" if cand.option == decision.chosen.option else ""
        print(f"       - {cand.label}: {cand.price_s*1e3:.3f} ms "
              f"simulated{marker}")
    return 0


def _cmd_optimize(args) -> int:
    import json

    from .optimizer import Optimizer, PlanCache

    if args.query in _QUERIES:
        build, rows_fn = _QUERIES[args.query]
        plan, rows = build(), rows_fn(args.elements)
    else:
        plan, rows = select_chain_plan(3), {"input": args.elements}

    cache = None if args.no_cache else PlanCache()
    opt = Optimizer(cache=cache)
    decision = None
    for _ in range(max(1, args.repeat)):
        decision = opt.choose(plan, rows, max_devices=args.devices)
    cached = " [cached decision]" if decision.cache_hit else ""
    print(f"chosen: {decision.chosen.label} "
          f"({decision.chosen.price_s*1e3:.3f} ms simulated){cached}")
    if args.explain:
        print()
        print(decision.explain())
    if cache is not None:
        st = cache.stats()
        print(f"cache: {st['cache.hits']} hit(s), "
              f"{st['cache.misses']} miss(es), "
              f"hit rate {st['cache.hit_rate']:.3f}")
    if args.summary:
        payload = decision.summary()
        if cache is not None:
            payload.update(cache.stats())
        with open(args.summary, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote optimizer summary to {args.summary}")
    return 0


def _cmd_fuse(args) -> int:
    plan = (_QUERIES[args.query][0]() if args.query in _QUERIES
            else select_chain_plan(3))
    fr = fuse_plan(plan)
    print(fr.describe())
    if args.render:
        for region in fr.regions:
            if region.fused:
                print()
                print(render_fused_kernel(region.nodes))
    return 0


def _cmd_trace(args) -> int:
    from .analyze import Analyzer

    strategy = Strategy(args.strategy)
    r = run_select_chain(args.elements, 2, 0.5, strategy,
                         check=args.validate, faults=args.chaos)
    # attach the static pre-flight's verdict on the traced plan as trace
    # metadata, so the exported JSON records what the analyzer said
    an = Analyzer()
    report = an.run(select_chain_plan(2))
    if r.fusion is not None:
        report.merge(an.run(r.fusion))
    write_chrome_trace(r.timeline, args.output, analysis=report.summary())
    print(f"wrote {len(r.timeline.events)} events to {args.output} "
          f"(open in chrome://tracing)")
    return 0


def _cmd_analyze(args) -> int:
    import json

    from .analyze import AnalysisReport, Analyzer, Baseline, write_baseline
    from .analyze import corpus as _corpus

    if args.prune_baseline and not args.baseline:
        print("--prune-baseline requires --baseline", file=sys.stderr)
        return 2
    baseline = Baseline.load(args.baseline) if args.baseline else None
    an = Analyzer(DeviceSpec(), baseline=baseline)
    merged = AnalysisReport()
    targets = _corpus.default_corpus(n_fuzz_seeds=args.fuzz_seeds)
    for label, target in targets:
        merged.merge(an.run(target, unit=label))

    if args.write_baseline:
        write_baseline(args.write_baseline,
                       merged.diagnostics + merged.suppressed)
        print(f"wrote baseline ({len(merged.diagnostics)} finding(s)) "
              f"to {args.write_baseline}")
        return 0
    stale = baseline.unused_suppressions() if baseline is not None else []
    if stale and args.prune_baseline and args.strict:
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write(baseline.pruned().render())
        print(f"pruned {len(stale)} stale suppression(s) from "
              f"{args.baseline}", file=sys.stderr)
    if args.json:
        payload = merged.json_payload(targets=len(targets), stale=stale)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"analyzed {len(targets)} target(s) "
              f"({args.fuzz_seeds} fuzz seed(s))")
        print(merged.render())
        for sup in stale:
            print(f"stale suppression (matched nothing): {sup.render()}")
    if args.strict and not merged.ok:
        print(f"strict: {len(merged.errors)} error-severity finding(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json

    from .serve import ArrivalProcess, QueryServer, ServeConfig
    from .simgpu.trace import write_chrome_trace

    arrivals = ArrivalProcess(qps=args.qps, duration_s=args.duration,
                              seed=args.seed)
    trace = arrivals.trace()
    modes = (["batched", "isolated"] if args.mode == "both" else [args.mode])
    if args.kill_worker is not None and args.workers < 2:
        print("--kill-worker requires --workers > 1", file=sys.stderr)
        return 2
    results = {}
    pool_reports = {}
    pool_failures = 0
    for mode in modes:
        cfg = ServeConfig(
            mode=mode, queue_capacity=args.queue_depth,
            max_batch=args.max_batch, max_streams=args.max_streams,
            check=args.validate, analyze=args.analyze,
            shed_unsafe=args.shed_unsafe, faults=args.chaos,
            devices=args.devices, workers=args.workers,
            worker_rebalance=args.rebalance, pool_seed=args.seed)
        # each mode serves the identical offered trace
        server = QueryServer(config=cfg, kill_worker=args.kill_worker)
        results[mode] = server.run(trace=list(trace))
        server.close()
        print(f"\n=== mode: {mode} "
              f"(qps {args.qps:g}, {args.duration:g} s offered, "
              f"seed {args.seed})" + (" [chaos]" if args.chaos else "")
              + (f" [{args.workers} workers]" if args.workers > 1 else "")
              + " ===")
        print(results[mode].metrics.render())
        if server.pool is not None:
            from .analyze import Analyzer
            from .validate import validate_pool
            from .workers import build_pool_report
            vr = validate_pool(server.pool)
            report = build_pool_report(results[mode].metrics, server.pool,
                                       cfg)
            pool_reports[mode] = report.to_json()
            stats = server.backend_stats
            print(f"pool: {stats['pool.kills']} kill(s), "
                  f"{stats['pool.respawns']} respawn(s), "
                  f"outbox {stats['outbox.recorded']} recorded / "
                  f"{stats['outbox.hits']} duplicate hit(s) / "
                  f"{stats['outbox.replays']} replay(s); "
                  f"merged metrics identical: {report.identical}")
            findings = Analyzer().run(report).diagnostics
            for d in findings:
                print(f"  {d}")
            if not vr.ok:
                pool_failures += len(vr.violations)
                for v in vr.violations:
                    print(f"  pool sanitizer: {v}", file=sys.stderr)
            if not report.identical:
                pool_failures += 1
                print("  pool: merged worker metrics differ from the "
                      "master summary", file=sys.stderr)
    if len(results) == 2:
        b, i = results["batched"].metrics, results["isolated"].metrics
        print(f"\nbatched vs isolated: goodput {b.goodput_qps:.2f} vs "
              f"{i.goodput_qps:.2f} q/s, p99 {b.latency.percentile(99)*1e3:.1f}"
              f" vs {i.latency.percentile(99)*1e3:.1f} ms")
    if args.summary:
        payload = {
            mode: {"config": {"qps": args.qps, "duration": args.duration,
                              "seed": args.seed, "mode": mode,
                              "chaos": bool(args.chaos)},
                   "metrics": res.metrics.summary()}
            for mode, res in results.items()
        }
        with open(args.summary, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote metrics summary to {args.summary}")
    if args.pool_report:
        if not pool_reports:
            print("--pool-report requires --workers > 1", file=sys.stderr)
            return 2
        with open(args.pool_report, "w") as f:
            json.dump(pool_reports, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote pool report to {args.pool_report}")
    if args.trace_output:
        res = results[modes[0]]
        write_chrome_trace(res.merged_timeline(), args.trace_output,
                           process_name=f"serve.{modes[0]}")
        print(f"wrote serve trace to {args.trace_output}")
    if pool_failures:
        print(f"worker pool: {pool_failures} failure(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args) -> int:
    import json

    from .cluster import ClusterConfig, ClusterExecutor, single_device_makespan
    from .faults import FaultPlan
    from .simgpu.trace import write_cluster_trace

    build, rows_fn = _QUERIES[args.query]
    plan = build()
    rows = rows_fn(args.elements)

    faults = args.chaos
    if args.kill_device is not None:
        # a deterministic device loss at the given slot, before phase 1
        faults = FaultPlan(
            seed=args.chaos.seed if args.chaos is not None else 0,
            site_rates={f"device.{args.kill_device}": 1.0}, budget=1)
    cfg = ClusterConfig(
        num_devices=args.devices, scheme=args.partition, seed=args.seed,
        check=args.validate, faults=faults,
        preagg=not args.no_preagg,
        merge="flat" if args.flat_merge else None)
    cx = ClusterExecutor(config=cfg)
    result = cx.run(plan, rows)

    dist = result.dist
    print(f"{dist.name}: {args.devices} device(s), {args.partition} "
          f"partitioning, suffix mode {dist.suffix_mode}")
    print(f"  partition key: "
          f"{'/'.join(dist.partition_key or ()) or 'positional (rowid)'}")
    if dist.preagg is not None:
        pre = dist.preagg
        print(f"  pre-aggregation: {pre.agg} below the cut "
              f"(~{pre.est_groups} groups x {pre.state_row_nbytes} B "
              f"states, {'exact' if pre.exact else 'timing-only'} combine)")
    print(f"  merge strategy: {dist.merge}; exchange "
          f"{result.exchange_out_bytes:,.0f} B total, "
          f"{result.exchange_out_per_device:,.0f} B/device outbound")
    single = single_device_makespan(plan, rows)
    print(f"  cluster makespan {result.makespan*1e3:9.3f} ms  "
          f"(single device {single*1e3:9.3f} ms, "
          f"speedup {single/result.makespan:5.2f}x)")
    if result.lost_devices:
        print(f"  chaos: lost device(s) {list(result.lost_devices)}, "
              f"{result.recovered_shards} shard(s) re-executed on survivors")

    if args.functional:
        data = generate(TpchConfig(scale_factor=args.scale_factor))
        if args.query == "q1":
            sources = q1_column_relations(data.lineitem)
        else:
            sources = {"lineitem": data.lineitem, "orders": data.orders,
                       "supplier": data.supplier, "nation": data.nation}
        got = cx.functional(plan, sources)
        want = evaluate_sinks(plan, sources)
        for name in sorted(want):
            same = got[name].same_tuples(want[name])
            print(f"  functional {name}: {got[name].num_rows} rows, "
                  f"byte-identical to single device: {same}")
            if not same:
                return 1

    if args.summary:
        summ = result.summary()
        # both inputs are deterministic, so the gate keys stay byte-stable
        summ["cluster.single_device_makespan_s"] = round(single, 9)
        summ["cluster.speedup_vs_single"] = round(single / result.makespan, 6)
        with open(args.summary, "w") as f:
            json.dump(summ, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote cluster summary to {args.summary}")
    if args.trace_output:
        write_cluster_trace(result.trace_lanes(), args.trace_output)
        n_events = sum(len(tl.events) for _, tl in result.trace_lanes())
        print(f"wrote {n_events} events over "
              f"{len(result.trace_lanes())} lanes to {args.trace_output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kernel fusion/fission for GPU data warehousing "
                    "(IPDPS-W 2012 reproduction)")
    parser.add_argument(
        "--validate", action="store_true",
        help="strict mode: sanitize every simulated schedule against the "
             "device-model invariants (see docs/VALIDATION.md) and abort "
             "on the first violation")
    parser.add_argument(
        "--chaos", metavar="SEED[:RATE]", type=parse_chaos, default=None,
        help="deterministic fault injection on the simulated platform "
             "(see docs/FAULTS.md): seeds transient transfer/launch "
             "failures, stream stalls and spurious OOM at the given rate "
             "(default 0.02); the runtime retries and degrades, and the "
             "run reports what was injected")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the simulated platform")

    p_sel = sub.add_parser("select", help="SELECT-chain microbenchmark")
    p_sel.add_argument("--elements", type=int, default=200_000_000)
    p_sel.add_argument("--num", type=int, default=2)
    p_sel.add_argument("--selectivity", type=float, default=0.5)

    for q in _QUERIES:
        p_q = sub.add_parser(q, help=f"TPC-H {q.upper()}")
        p_q.add_argument("--elements", type=int, default=6_000_000,
                         help="simulated lineitem cardinality")
        p_q.add_argument("--functional", action="store_true",
                         help="also run the query on generated data")
        p_q.add_argument("--scale-factor", type=float, default=0.01)

    p_opt = sub.add_parser(
        "optimize", help="price every execution strategy for a query with "
                         "the cost-based optimizer (docs/OPTIMIZER.md) and "
                         "report the chosen one with its rationale")
    p_opt.add_argument("--query", choices=[*_QUERIES, "chain"],
                       default="chain")
    p_opt.add_argument("--elements", type=int, default=6_000_000,
                       help="simulated input cardinality")
    p_opt.add_argument("--devices", type=int, default=1,
                       help="max simulated devices the optimizer may "
                            "shard over (power-of-two counts enumerated)")
    p_opt.add_argument("--explain", action="store_true",
                       help="print the full pricing table: every "
                            "enumerated strategy with its analytic "
                            "estimate and simulated makespan")
    p_opt.add_argument("--no-cache", action="store_true",
                       help="disable the compiled-plan cache (every "
                            "repeat re-prices from scratch)")
    p_opt.add_argument("--repeat", type=int, default=1,
                       help="ask for the same decision N times (repeats "
                            "after the first hit the plan cache)")
    p_opt.add_argument("--summary", metavar="PATH", default=None,
                       help="write decision + cache counters as JSON "
                            "(byte-identical across same-seed runs)")

    p_fuse = sub.add_parser("fuse", help="show the fusion pass's output")
    p_fuse.add_argument("--query", choices=[*_QUERIES, "chain"],
                        default="chain")
    p_fuse.add_argument("--render", action="store_true",
                        help="print CUDA-like source of fused kernels")

    p_tr = sub.add_parser("trace", help="export a Chrome trace")
    p_tr.add_argument("--strategy", default="fused_fission",
                      choices=[s.value for s in Strategy])
    p_tr.add_argument("--elements", type=int, default=500_000_000)
    p_tr.add_argument("--output", default="trace.json")

    p_srv = sub.add_parser(
        "serve", help="query-serving simulation with admission control, "
                      "batching, and SLO tracking (docs/SERVING.md)")
    p_srv.add_argument("--qps", type=float, default=200.0,
                       help="offered load (Poisson arrivals per second)")
    p_srv.add_argument("--duration", type=float, default=5.0,
                       help="offered-load window, simulated seconds")
    p_srv.add_argument("--seed", type=int, default=0,
                       help="arrival-trace seed")
    p_srv.add_argument("--mode", choices=["batched", "isolated", "both"],
                       default="batched",
                       help="batched shared-scan dispatch, isolated "
                            "per-query dispatch, or a comparison of both "
                            "over the same trace")
    p_srv.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue capacity")
    p_srv.add_argument("--max-batch", type=int, default=8,
                       help="max queries per dispatched batch")
    p_srv.add_argument("--max-streams", type=int, default=4,
                       help="Stream-Pool worker streams per batch")
    p_srv.add_argument("--summary", metavar="PATH", default=None,
                       help="write the metrics summary as JSON "
                            "(byte-identical across same-seed runs)")
    p_srv.add_argument("--trace-output", metavar="PATH", default=None,
                       help="write a Chrome trace of the serve run")
    p_srv.add_argument("--analyze", action="store_true",
                       help="static pre-flight on every batch "
                            "(docs/ANALYSIS.md): plan lints + stream-program "
                            "race check; error findings abort dispatch")
    p_srv.add_argument("--shed-unsafe", action="store_true",
                       help="shed queries the static memory check proves "
                            "cannot fit the lane device (MEM701, "
                            "docs/ANALYSIS.md) instead of dispatching them")
    p_srv.add_argument("--devices", type=int, default=1,
                       help="device lanes sharing the host (batches are "
                            "routed to the lane with the least outstanding "
                            "bytes; see docs/CLUSTER.md)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="warm worker processes simulating dispatches "
                            "(docs/SERVING.md, 'Worker pools'); summaries "
                            "are byte-identical across worker counts at "
                            "the same seed")
    p_srv.add_argument("--rebalance", choices=["hash", "least-bytes"],
                       default="hash",
                       help="tenant->worker routing: stable hash, or "
                            "epoch-pinned least-outstanding-bytes")
    p_srv.add_argument("--kill-worker", type=int, default=None,
                       metavar="W",
                       help="deterministically SIGKILL worker W once "
                            "mid-run (crash-recovery drill; requires "
                            "--workers > 1)")
    p_srv.add_argument("--pool-report", metavar="PATH", default=None,
                       help="write the worker-pool report (shard "
                            "balance, outbox conservation, respawns, "
                            "merged per-worker metrics) as JSON")

    p_cl = sub.add_parser(
        "cluster", help="run a TPC-H query sharded over N simulated "
                        "devices (docs/CLUSTER.md)")
    p_cl.add_argument("--devices", type=int, default=4,
                      help="simulated devices behind one shared host")
    p_cl.add_argument("--query", choices=["q1", "q21"], default="q1")
    p_cl.add_argument("--partition", choices=["hash", "range", "rr"],
                      default="hash", help="driver-table sharding scheme")
    p_cl.add_argument("--elements", type=int, default=6_000_000,
                      help="simulated lineitem cardinality")
    p_cl.add_argument("--seed", type=int, default=0,
                      help="partitioner seed")
    p_cl.add_argument("--kill-device", type=int, metavar="IDX", default=None,
                      help="deterministically lose device IDX before the "
                           "local phase (its shards re-execute on the "
                           "least-loaded survivor)")
    p_cl.add_argument("--no-preagg", action="store_true",
                      help="disable the pre-aggregation lowering: ship raw "
                           "frontier rows through the exchange")
    p_cl.add_argument("--flat-merge", action="store_true",
                      help="serial host gather instead of the pairwise "
                           "tree merge")
    p_cl.add_argument("--functional", action="store_true",
                      help="also run the sharded query on generated data "
                           "and check byte-identity against the "
                           "single-device interpreter")
    p_cl.add_argument("--scale-factor", type=float, default=0.01)
    p_cl.add_argument("--summary", metavar="PATH", default=None,
                      help="write the cluster summary as JSON "
                           "(byte-identical across same-seed runs)")
    p_cl.add_argument("--trace-output", metavar="PATH", default=None,
                      help="write a Chrome trace with one lane group per "
                           "device plus the cluster host")

    p_an = sub.add_parser(
        "analyze", help="static analysis over the built-in corpus "
                        "(docs/ANALYSIS.md): pattern plans, TPC-H plans, "
                        "fuzz plans, fused regions, stream programs, IR")
    p_an.add_argument("--strict", action="store_true",
                      help="exit 1 on any error-severity finding "
                           "(the CI lint gate)")
    p_an.add_argument("--fuzz-seeds", type=int, default=50,
                      help="how many seeded fuzz plans to include")
    p_an.add_argument("--baseline", metavar="PATH", default=None,
                      help="suppression file of known findings "
                           "(CODE LOCATION-GLOB per line)")
    p_an.add_argument("--write-baseline", metavar="PATH", default=None,
                      help="write current findings as a baseline and exit")
    p_an.add_argument("--prune-baseline", action="store_true",
                      help="with --baseline: report suppressions that "
                           "matched nothing; with --strict, rewrite the "
                           "baseline file without them")
    p_an.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout "
                           "(schema repro.analyze.report/v1, findings "
                           "sorted by code then location)")

    p_c = sub.add_parser("compile", help="run the full compilation pipeline")
    p_c.add_argument("--query", choices=[*_QUERIES, "chain"], default="chain")
    p_c.add_argument("--elements", type=int, default=6_000_000)

    p_e = sub.add_parser("explain", help="print a plan tree with fusion overlay")
    p_e.add_argument("--query", choices=[*_QUERIES, "chain"], default="q1")
    p_e.add_argument("--elements", type=int, default=6_000_000)

    p_sql = sub.add_parser("sql", help="run a SQL query over generated TPC-H")
    p_sql.add_argument("statement", nargs="?", default=None,
                       help="e.g. \"SELECT returnflag, COUNT(*) "
                       "AS n FROM lineitem GROUP BY returnflag\" "
                       "(legacy single-table path, physical column names)")
    p_sql.add_argument("--query", default=None, metavar="qN",
                       help="a TPC-H catalog query (q1..q22), or 'all' for "
                       "the whole suite (frontend path, SQL column names)")
    p_sql.add_argument("--file", default=None, metavar="F.sql",
                       help="read the SQL text from a file (frontend path)")
    p_sql.add_argument("--explain", action="store_true",
                       help="print the bound query and the lowered plan "
                       "instead of executing")
    p_sql.add_argument("--validate", action="store_true",
                       help="differentially validate against the NumPy "
                       "reference interpreter; exit nonzero on mismatch")
    p_sql.add_argument("--json", action="store_true",
                       help="with --query all: print the JSON coverage "
                       "report (stable key order)")
    p_sql.add_argument("--seed", type=int, default=1992,
                       help="dataset seed for the frontend path")
    p_sql.add_argument("--scale-factor", type=float, default=0.01)
    p_sql.add_argument("--limit", type=int, default=20,
                       help="max rows to print")

    return parser


def _print_rows(out, limit: int) -> None:
    header = "  ".join(f"{f:>14}" for f in out.fields)
    print(header)
    for i in range(min(out.num_rows, limit)):
        print("  ".join(f"{out.column(f)[i]!s:>14}" for f in out.fields))
    if out.num_rows > limit:
        print(f"... ({out.num_rows} rows total)")


def _cmd_sql_frontend(args) -> int:
    import json

    from .frontend import bind_sql, compile_sql, run_plan, validate_sql
    from .plans.explain import explain
    from .sql.lexer import SqlError
    from .tpch.catalog import (
        CATALOG, QUERIES, tpch_dataset, tpch_source_rows, validate_tpch,
    )

    if args.query == "all":
        report = validate_tpch(scale_factor=args.scale_factor,
                               seed=args.seed)
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            for r in report.reports:
                line = f"{r.query:5s} {r.status:12s}"
                if r.rows >= 0:
                    line += f" rows={r.rows}"
                if r.detail:
                    line += f"  {r.detail}"
                print(line)
            print(f"covered {len(report.covered)}/{len(report.reports)}")
        if args.validate and (report.failed or len(report.covered) < 16):
            return 1
        return 0

    if args.query is not None:
        if args.query not in QUERIES:
            print(f"unknown query {args.query!r}; have q1..q22 or 'all'")
            return 2
        name, sql = args.query, QUERIES[args.query]
    else:
        name = args.file
        with open(args.file) as fh:
            sql = fh.read()

    source_rows = tpch_source_rows(args.scale_factor)
    try:
        bound = bind_sql(sql, CATALOG)
        compiled = compile_sql(sql, CATALOG, source_rows=source_rows,
                               name=name)
    except SqlError as exc:
        print(f"error: {exc}")
        return 1

    if args.explain:
        print(bound.describe())
        print()
        print(explain(compiled.plan, source_rows=source_rows))
        return 0

    tables = tpch_dataset(scale_factor=args.scale_factor, seed=args.seed)
    if args.validate:
        report = validate_sql(name, sql, CATALOG, tables,
                              source_rows=source_rows)
        line = f"{report.query}: {report.status}"
        if report.rows >= 0:
            line += f" rows={report.rows}"
        if report.detail:
            line += f"  {report.detail}"
        print(line)
        return 0 if report.status == "ok" else 1

    _print_rows(run_plan(compiled, tables), args.limit)
    return 0


def _cmd_sql(args) -> int:
    from .core.passes import compile_plan
    from .plans import evaluate_sinks
    from .sql import sql_to_plan

    picked = sum(x is not None
                 for x in (args.statement, args.query, args.file))
    if picked != 1:
        print("provide exactly one of: a SQL statement, --query, or --file")
        return 2
    if args.query is not None or args.file is not None:
        return _cmd_sql_frontend(args)

    plan = sql_to_plan(args.statement)
    data = generate(TpchConfig(scale_factor=args.scale_factor))
    tables = {"lineitem": data.lineitem, "orders": data.orders,
              "supplier": data.supplier, "nation": data.nation}
    sources = {s.name: tables[s.name] for s in plan.sources()
               if s.name in tables}
    missing = [s.name for s in plan.sources() if s.name not in tables]
    if missing:
        print(f"unknown table(s): {missing}; available: {sorted(tables)}")
        return 1

    out = list(evaluate_sinks(plan, sources).values())[0]
    _print_rows(out, args.limit)

    rows = {s.name: tables[s.name].num_rows for s in plan.sources()}
    cp = compile_plan(plan, rows)
    print()
    print(cp.describe())
    return 0


def _cmd_compile(args) -> int:
    from .core.passes import compile_plan
    if args.query in _QUERIES:
        build, rows_fn = _QUERIES[args.query]
        plan, rows = build(), rows_fn(args.elements)
    else:
        plan, rows = select_chain_plan(3), {"input": args.elements}
    cp = compile_plan(plan, rows)
    print(cp.describe())
    result = cp.run()
    print(f"\nsimulated: {result.makespan*1e3:.1f} ms "
          f"({result.throughput/1e9:.2f} GB/s of input)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "select":
        return _cmd_select(args)
    if args.command in _QUERIES:
        return _cmd_query(args)
    if args.command == "fuse":
        return _cmd_fuse(args)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "sql":
        return _cmd_sql(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "explain":
        from .plans.explain import explain
        if args.query in _QUERIES:
            build, rows_fn = _QUERIES[args.query]
            plan, rows = build(), rows_fn(args.elements)
        else:
            plan, rows = select_chain_plan(3), {"input": args.elements}
        print(explain(plan, source_rows=rows))
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())

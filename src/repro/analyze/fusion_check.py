"""Fusion-legality verifier (FUS1xx).

Independently re-derives the paper's SS III-C legality conditions from
:mod:`repro.core.dependence` and checks them against a
:class:`~repro.core.fusion.FusionResult` -- the output of the fusion
pass, *not* its internal bookkeeping -- so a bug in the greedy pass (or a
hand-mutated result) is caught before anything is lowered or simulated.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
FUS101    error     barrier / non-fusable op inside a fused region
FUS102    error     region chain link is not an elementwise dependence
FUS103    error     fused producer has consumers outside the region
FUS104    error     inter-region dependence cycle (via side inputs)
FUS105    error     region list not topologically ordered
FUS106    warning   fused region exceeds the register budget
FUS107    error     plan node missing from / duplicated across regions
FUS108    error     fusion crosses a LEFT_JOIN null-padding barrier
========  ========  ====================================================

The register check (FUS106) measures pressure two ways and takes the
worst: the stage cost model's per-kernel demand
(:func:`~repro.core.opmodels.chain_for_region`), and -- for SELECT-only
regions whose predicates are simple threshold compares -- liveness over
actually generated code (:mod:`repro.compilerlite.liveness` on the
naively fused kernel), the same cross-check the paper's Table III makes
by hand.
"""

from __future__ import annotations

from ..compilerlite.codegen import FilterStatement, gen_fused_naive
from ..compilerlite.liveness import register_pressure
from ..core.dependence import DepClass, classify_edge
from ..core.fusion import FusionResult, Region
from ..core.opmodels import FUSABLE_OPS, chain_for_region
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..errors import ReproError
from ..plans.plan import OpType
from ..ra.expr import Compare, Const, Field
from ..simgpu.device import DeviceSpec
from .diagnostics import Diagnostic, Severity, SourceLocation

#: expression compare symbol -> IR setp compare op
_CMP_SYMBOLS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                "==": "eq", "!=": "ne"}


class FusionCheckPass:
    """All FUS1xx checks over one :class:`FusionResult`."""

    name = "fusion-check"
    codes = ("FUS101", "FUS102", "FUS103", "FUS104", "FUS105",
             "FUS106", "FUS107", "FUS108")

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS):
        self.device = device or DeviceSpec()
        self.costs = costs

    def run(self, fusion: FusionResult) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        unit = fusion.plan.name
        legal_regions = [r for r in fusion.regions
                         if not self._region_checks(fusion, r, unit, diags)]
        self._coverage(fusion, unit, diags)
        self._region_graph_checks(fusion, unit, diags)
        for region in legal_regions:
            if region.nodes and all(n.op in FUSABLE_OPS
                                    for n in region.nodes):
                self._register_budget(region, unit, diags)
        return diags

    # -- per-region legality ---------------------------------------------
    def _region_checks(self, fusion: FusionResult, region: Region,
                       unit: str, diags: list[Diagnostic]) -> bool:
        """Check one region; True when a structural defect was found."""
        bad = False

        def err(code: str, message: str) -> None:
            diags.append(Diagnostic(
                code=code, severity=Severity.ERROR, message=message,
                location=SourceLocation(unit, "region", region.name),
                pass_name=self.name))

        if region.fused:
            for node in region.nodes:
                if node.op not in FUSABLE_OPS:
                    err("FUS101",
                        f"region {region.name!r} fuses {node.name!r} "
                        f"({node.op.value}), a barrier operator that can "
                        f"never share a kernel")
                    bad = True
            for node in region.nodes[:-1]:
                if node.op is OpType.LEFT_JOIN:
                    err("FUS108",
                        f"region {region.name!r} fuses ops after "
                        f"{node.name!r} (left_join): the null-padding "
                        f"step inserts rows for unmatched probe tuples, "
                        f"so an outer join may only terminate a region")
                    bad = True

        for prev, node in zip(region.nodes, region.nodes[1:]):
            if not node.inputs or node.inputs[0] is not prev:
                err("FUS102",
                    f"region {region.name!r}: {node.name!r} does not "
                    f"consume its region predecessor {prev.name!r} as its "
                    f"primary input")
                bad = True
                continue
            dep = classify_edge(prev, node, 0)
            if dep is not DepClass.ELEMENTWISE:
                err("FUS102",
                    f"region {region.name!r}: dependence "
                    f"{prev.name!r} -> {node.name!r} is {dep.value}, "
                    f"not elementwise; fusing it changes results")
                bad = True
            consumers = fusion.plan.consumers(prev)
            extra = [c.name for c in consumers if c is not node]
            if extra:
                err("FUS103",
                    f"region {region.name!r}: fused producer {prev.name!r} "
                    f"also feeds {extra} outside the region; its "
                    f"intermediate must be materialized")
                bad = True
        return bad

    # -- coverage --------------------------------------------------------
    def _coverage(self, fusion: FusionResult, unit: str,
                  diags: list[Diagnostic]) -> None:
        seen: dict[int, str] = {}
        for region in fusion.regions:
            for node in region.nodes:
                if id(node) in seen:
                    diags.append(Diagnostic(
                        code="FUS107", severity=Severity.ERROR,
                        message=(f"node {node.name!r} appears in regions "
                                 f"{seen[id(node)]!r} and {region.name!r}"),
                        location=SourceLocation(unit, "node", node.name),
                        pass_name=self.name))
                seen[id(node)] = region.name
        for node in fusion.plan.nodes:
            if node.op is OpType.SOURCE:
                continue
            if id(node) not in seen:
                diags.append(Diagnostic(
                    code="FUS107", severity=Severity.ERROR,
                    message=(f"plan node {node.name!r} ({node.op.value}) "
                             f"is not covered by any region"),
                    location=SourceLocation(unit, "node", node.name),
                    pass_name=self.name))

    # -- inter-region graph ----------------------------------------------
    def _region_graph_checks(self, fusion: FusionResult, unit: str,
                             diags: list[Diagnostic]) -> None:
        region_of: dict[int, int] = {}
        for ri, region in enumerate(fusion.regions):
            for node in region.nodes:
                region_of.setdefault(id(node), ri)

        deps: dict[int, set[int]] = {ri: set()
                                     for ri in range(len(fusion.regions))}
        for ri, region in enumerate(fusion.regions):
            for node in region.nodes:
                for inp in node.inputs:
                    si = region_of.get(id(inp))
                    if si is not None and si != ri:
                        deps[ri].add(si)

        # FUS105: execution order must respect dependences
        for ri, region in enumerate(fusion.regions):
            late = [si for si in deps[ri] if si > ri]
            for si in sorted(late):
                diags.append(Diagnostic(
                    code="FUS105", severity=Severity.ERROR,
                    message=(f"region {region.name!r} (position {ri}) "
                             f"depends on region "
                             f"{fusion.regions[si].name!r} scheduled "
                             f"later (position {si})"),
                    location=SourceLocation(unit, "region", region.name),
                    pass_name=self.name))

        # FUS104: cycle detection over the region dependence graph
        color: dict[int, int] = {}  # 0 unvisited / 1 on stack / 2 done

        def find_cycle(ri: int, path: list[int]) -> list[int] | None:
            color[ri] = 1
            path.append(ri)
            for si in sorted(deps[ri]):
                if color.get(si, 0) == 1:
                    return path[path.index(si):]
                if color.get(si, 0) == 0:
                    found = find_cycle(si, path)
                    if found is not None:
                        return found
            path.pop()
            color[ri] = 2
            return None

        for ri in range(len(fusion.regions)):
            if color.get(ri, 0) == 0:
                cycle = find_cycle(ri, [])
                if cycle is not None:
                    names = " -> ".join(
                        fusion.regions[i].name for i in cycle)
                    diags.append(Diagnostic(
                        code="FUS104", severity=Severity.ERROR,
                        message=(f"inter-region dependence cycle: "
                                 f"{names} -> {fusion.regions[cycle[0]].name}"
                                 f" (a side input depends on the region "
                                 f"consuming it)"),
                        location=SourceLocation(
                            unit, "region", fusion.regions[cycle[0]].name),
                        pass_name=self.name))
                    break

    # -- register pressure -----------------------------------------------
    def _register_budget(self, region: Region, unit: str,
                         diags: list[Diagnostic]) -> None:
        budget = self.device.calib.gpu.max_regs_per_thread
        try:
            chain = chain_for_region(region.nodes, self.costs)
        except ReproError:
            return  # structurally broken regions are reported elsewhere
        model_regs = max(k.regs_per_thread for k in chain.kernels)
        ir_regs = self._liveness_pressure(region)
        regs = max(model_regs, ir_regs)
        if regs > budget:
            via = (" (liveness over generated code)"
                   if ir_regs > model_regs else "")
            diags.append(Diagnostic(
                code="FUS106", severity=Severity.WARNING,
                message=(f"region {region.name!r} needs ~{regs} registers "
                         f"per thread{via}, over the device budget of "
                         f"{budget}; expect occupancy loss or spills"),
                location=SourceLocation(unit, "region", region.name),
                pass_name=self.name))

    def _liveness_pressure(self, region: Region) -> int:
        """IR-level pressure for SELECT-only threshold-filter regions.

        Returns 0 when the region is not expressible as the paper's
        Table III filter chain (the stage model alone judges it then).
        """
        stmts: list[FilterStatement] = []
        for node in region.nodes:
            if node.op is not OpType.SELECT:
                return 0
            pred = node.params.get("predicate")
            if (not isinstance(pred, Compare)
                    or not isinstance(pred.left, Field)
                    or not isinstance(pred.right, Const)
                    or not isinstance(pred.right.value, (int, float))
                    or pred.op not in _CMP_SYMBOLS):
                return 0
            stmts.append(FilterStatement(
                cmp=_CMP_SYMBOLS[pred.op],
                threshold=float(pred.right.value)))
        if not stmts:
            return 0
        prog = gen_fused_naive(stmts, name=region.name)
        return self.costs.skeleton_base_regs + register_pressure(prog)

"""Interval abstract interpretation over plan DAGs (docs/ANALYSIS.md).

The executor sizes every kernel from :func:`repro.runtime.sizes
.estimate_sizes`; this module re-derives those sizes *as intervals*, so
memory-safety questions ("can this strategy OOM?") get a sound static
answer before anything is simulated.  The contract the soundness harness
enforces (``tests/analyze/test_memory_soundness.py``):

    for every node ``n``:  ``env[n].rows.lo <= estimate_sizes(...)[n]
    <= env[n].rows.hi``

Seeding: a source's row count comes from the caller's ``source_rows``
mapping (what the executor itself receives), else from
:class:`~repro.optimizer.stats.DataStats` when provided, else from the
plan's declared ``n_rows``; a source with none of those is *unknown*
(``[0, inf)``), which downstream can only ever produce possible-OOM
warnings, never certain-OOM errors.  Propagation brackets the executor's
``round()`` arithmetic with floor/ceil, so envelopes stay sound even
where Python's bankers' rounding is involved.

On top of the envelopes, :func:`strategy_footprint` mirrors the
executor's actual OOM decision procedure (``Executor._plan_chunks`` and
the fission prefix split) per strategy, and :func:`fusion_savings`
statically quantifies the paper's footprint claim: bytes of
intermediates that fusion never materializes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.fusion import FusionResult, Region, fuse_plan
from ..core.opmodels import out_row_nbytes
from ..plans.plan import OpType, Plan, PlanNode
from ..runtime.strategies import Strategy
from ..simgpu.device import DeviceSpec

__all__ = [
    "Interval", "Envelope", "plan_envelopes", "fusion_savings",
    "StrategyFootprint", "strategy_footprint", "split_for_fission",
]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over non-negative reals;
    ``hi = inf`` encodes an unknown upper bound."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def exact(value: float) -> "Interval":
        return Interval(float(value), float(value))

    @staticmethod
    def unknown() -> "Interval":
        return Interval(0.0, math.inf)

    # -- queries ---------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return not math.isinf(self.hi)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    # -- arithmetic (all operands non-negative) --------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a non-negative scalar (``inf * 0 = 0`` here: a
        zero-width row contributes no bytes however many rows it has)."""
        if factor == 0:
            return Interval.exact(0.0)
        return Interval(self.lo * factor, self.hi * factor)

    def round_bracket(self) -> "Interval":
        """Sound bracket of the executor's ``int(round(x))``: whatever
        the rounding mode, the result lies in ``[floor(lo), ceil(hi)]``."""
        hi = self.hi if math.isinf(self.hi) else float(math.ceil(self.hi))
        return Interval(float(math.floor(self.lo)), hi)

    def clamp_min(self, floor_value: float) -> "Interval":
        return Interval(max(self.lo, floor_value), max(self.hi, floor_value))

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def render(self, unit: str = "") -> str:
        def fmt(v: float) -> str:
            if math.isinf(v):
                return "inf"
            return f"{v:,.0f}"
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]{unit}"


@dataclass(frozen=True)
class Envelope:
    """Static bounds on one plan node's output: a row-count interval
    plus the node's (exact, schema-derived) bytes-per-row."""

    rows: Interval
    row_nbytes: int

    @property
    def bytes(self) -> Interval:
        return self.rows.scale(float(self.row_nbytes))


def _seed_source(node: PlanNode, source_rows: dict[str, int] | None,
                 stats) -> Interval:
    """Row interval of a SOURCE, in the executor's own lookup order."""
    if source_rows is not None and node.name in source_rows:
        return Interval.exact(int(source_rows[node.name]))
    if stats is not None:
        try:
            return Interval.exact(int(stats.table(node.name).rows))
        except KeyError:
            pass
    if node.params.get("n_rows") is not None:
        return Interval.exact(int(node.params["n_rows"]))
    return Interval.unknown()


def plan_envelopes(plan: Plan, source_rows: dict[str, int] | None = None,
                   stats=None) -> dict[str, Envelope]:
    """Per-node cardinality/byte envelopes, keyed by node name.

    Mirrors :func:`repro.runtime.sizes.estimate_sizes` rule for rule,
    with every ``round()`` bracketed; ``stats`` is an optional
    :class:`~repro.optimizer.stats.DataStats` used to seed sources the
    caller's ``source_rows`` does not name.
    """
    envs: dict[str, Envelope] = {}
    for node in plan.topological():
        envs[node.name] = Envelope(
            rows=_node_rows(node, envs, source_rows, stats),
            row_nbytes=out_row_nbytes(node))
    return envs


def _node_rows(node: PlanNode, envs: dict[str, Envelope],
               source_rows: dict[str, int] | None, stats) -> Interval:
    if node.op is OpType.SOURCE:
        return _seed_source(node, source_rows, stats)
    left = envs[node.inputs[0].name].rows
    sel = node.selectivity
    if node.op is OpType.UNION:
        right = envs[node.inputs[1].name].rows
        return (left + right).scale(sel).round_bracket().clamp_min(0.0)
    if node.op is OpType.UNION_ALL:
        # mirrors sizes._node_size exactly: bag concat ignores selectivity
        return left + envs[node.inputs[1].name].rows
    if node.op is OpType.TOP_N:
        n = float(node.params["n"])
        return Interval(max(0.0, min(left.lo, n)),
                        max(0.0, min(left.hi, n)))
    if node.op is OpType.AGGREGATE:
        n_groups = node.params.get("n_groups")
        if n_groups is not None:
            return Interval.exact(max(1, int(n_groups)))
        return left.scale(sel).round_bracket().clamp_min(1.0)
    # PRODUCT encodes right rows as selectivity; everything else scales
    # its primary input -- same shape as sizes._node_size
    return left.scale(sel).round_bracket().clamp_min(0.0)


# ----------------------------------------------------------------------
# fusion-savings report: the paper's footprint claim, statically
# ----------------------------------------------------------------------

def fusion_savings(fusion: FusionResult,
                   envs: dict[str, Envelope]) -> Interval:
    """Bytes of intermediates fusion eliminates: every non-terminal node
    of a fused region would, unfused, materialize its output to device
    memory; fused, it lives in registers."""
    total = Interval.exact(0.0)
    for region in fusion.regions:
        if not region.fused:
            continue
        for node in region.nodes[:-1]:
            total = total + envs[node.name].bytes
    return total


# ----------------------------------------------------------------------
# strategy footprint: Executor._plan_chunks, abstractly
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StrategyFootprint:
    """Static memory verdict for one (plan, strategy, device) triple.

    ``verdict`` is one of ``safe`` (cannot raise
    :class:`~repro.errors.DeviceOOMError`), ``certain-oom`` (must
    raise), or ``possible-oom`` (the budget lies inside the peak
    interval, or the driver source is ambiguous)."""

    strategy: str
    budget_bytes: float
    side_bytes: Interval
    working_bytes: Interval       # driver input + every region output
    peak_bytes: Interval          # side + working: vs the budget
    chunks: Interval              # serial chunking needed to fit
    has_barrier: bool
    pipelined: bool               # fission prefix absorbs the driver
    driver: str
    driver_ambiguous: bool
    verdict: str
    fused_regions: int = 0
    notes: tuple[str, ...] = field(default=())


def _region_geometry(regions: list[Region], envs: dict[str, Envelope],
                     driver: PlanNode) -> tuple[Interval, bool]:
    """(sum of region-output bytes, any-barrier) over lowered regions."""
    out = Interval.exact(0.0)
    barrier = False
    for region in regions:
        out = out + envs[region.output_node.name].bytes
        if region.is_barrier_op:
            barrier = True
    return out, barrier


def _driver_candidates(plan: Plan, envs: dict[str, Envelope]
                       ) -> list[PlanNode]:
    """Sources the executor's ``max(sources, key=rows)`` could pick.

    With exact envelopes this is exactly one node (first max, matching
    ``max()``'s tie-breaking); with unknown sources every candidate
    whose upper bound reaches the best-known lower bound is possible.
    """
    sources = plan.sources()
    if not sources:
        return []
    best_lo = max(envs[s.name].rows.lo for s in sources)
    cands = [s for s in sources if envs[s.name].rows.hi >= best_lo]
    if len(cands) <= 1:
        return cands
    exact = all(envs[s.name].rows.is_exact for s in sources)
    if exact:
        # ties resolve to the first max, like the executor's max()
        return [max(sources, key=lambda s: envs[s.name].rows.lo)]
    return cands


def split_for_fission(regions: list[Region], driver: PlanNode
                      ) -> tuple[list[Region], list[Region], list[Region]]:
    """Static replica of ``Executor._split_for_fission``: partition the
    lowered regions into (pipeline prefix, phase A, phase C) for a given
    driver source.  Purely structural -- no sizes involved -- so the
    static split is exact whenever the driver is."""
    driver_dep: set[str] = set()
    for region in regions:
        dep = False
        for node in region.nodes:
            for inp in node.inputs:
                if inp is driver or inp.name in driver_dep:
                    dep = True
        if dep:
            driver_dep.update(n.name for n in region.nodes)

    def primary(region: Region) -> PlanNode:
        first = region.nodes[0]
        return first.inputs[0] if first.inputs else first

    def side_independent(region: Region) -> bool:
        for node in region.nodes:
            for inp in node.inputs[1:]:
                if inp is driver or inp.name in driver_dep:
                    return False
        return True

    prefix: list[Region] = []
    phase_a: list[Region] = []
    rest: list[Region] = []
    expect: PlanNode | None = None
    started = False
    done = False
    for region in regions:
        if done:
            rest.append(region)
            continue
        if not started:
            if (primary(region) is driver and not region.is_barrier_op
                    and side_independent(region)):
                started = True
                prefix.append(region)
                expect = region.output_node
            elif region.output_node.name in driver_dep:
                rest.append(region)
            else:
                phase_a.append(region)
            continue
        if (not region.is_barrier_op and primary(region) is expect
                and side_independent(region)):
            prefix.append(region)
            expect = region.output_node
        else:
            done = True
            rest.append(region)
    return prefix, phase_a, rest


def _chunks_needed(working: Interval, side: Interval,
                   budget: float) -> Interval:
    """Chunk-count interval ``ceil(working / (budget - side))``."""
    def at(w: float, s: float) -> float:
        room = budget - s
        if room <= 0:
            return math.inf
        if w <= room:
            return 1.0
        if math.isinf(w):
            return math.inf
        return float(math.ceil(w / room))
    return Interval(at(working.lo, side.lo), at(working.hi, side.hi))


def _serial_verdict(side: Interval, working: Interval, budget: float,
                    has_barrier: bool) -> str:
    """The `_plan_chunks` decision procedure over intervals.

    The executor raises iff ``side >= budget`` or (``side + working >
    budget`` and some region is a barrier); anything else chunks its
    way through.
    """
    peak = side + working
    certain = side.lo >= budget or (has_barrier and peak.lo > budget)
    if certain:
        return "certain-oom"
    safe = side.hi < budget and (not has_barrier or peak.hi <= budget)
    return "safe" if safe else "possible-oom"


def strategy_footprint(plan: Plan, strategy: "Strategy | str",
                       envs: dict[str, Envelope],
                       device: DeviceSpec,
                       memory_safety: float = 0.9,
                       fusion: FusionResult | None = None
                       ) -> StrategyFootprint:
    """Memory verdict for running ``plan`` under ``strategy`` on
    ``device``, from precomputed envelopes.

    Mirrors the executor exactly: the host baseline cannot OOM; fission
    strategies with a non-empty pipeline prefix stream the driver in
    segments and never take the chunk-planning path; everything else
    (and fission's degenerate no-prefix case) goes through the
    ``_plan_chunks`` rules abstracted over intervals.
    """
    label = strategy if isinstance(strategy, str) else strategy.value
    budget = float(device.global_mem_bytes) * memory_safety
    zero = Interval.exact(0.0)
    if label == "cpubase":
        return StrategyFootprint(
            strategy=label, budget_bytes=budget, side_bytes=zero,
            working_bytes=zero, peak_bytes=zero, chunks=Interval.exact(1.0),
            has_barrier=False, pipelined=False, driver="",
            driver_ambiguous=False, verdict="safe",
            notes=("host interpreter: no device allocation",))

    strat = Strategy(label)
    if fusion is None:
        fusion = fuse_plan(plan, enable=strat.uses_fusion)
    regions = list(fusion.regions)
    candidates = _driver_candidates(plan, envs)
    ambiguous = len(candidates) != 1

    per_driver: list[StrategyFootprint] = []
    for driver in candidates:
        side = Interval.exact(0.0)
        for src in plan.sources():
            if src is not driver:
                side = side + envs[src.name].bytes
        working = envs[driver.name].bytes
        region_out, has_barrier = _region_geometry(regions, envs, driver)
        working = working + region_out

        pipelined = False
        # fission degenerates to the serial path (at the executor's
        # *default* safety margin) when nothing can be pipelined
        eff_budget = budget
        if strat.uses_fission:
            prefix, _, _ = split_for_fission(regions, driver)
            pipelined = bool(prefix)
            if not pipelined:
                eff_budget = float(device.global_mem_bytes) * 0.9

        if pipelined:
            verdict = "safe"
            chunks = Interval.exact(1.0)
            notes = ("pipelined prefix: driver streams in segments, "
                     "no whole-input residency",)
        else:
            verdict = _serial_verdict(side, working, eff_budget, has_barrier)
            chunks = _chunks_needed(working, side, eff_budget)
            notes = ()
        per_driver.append(StrategyFootprint(
            strategy=label, budget_bytes=eff_budget, side_bytes=side,
            working_bytes=working, peak_bytes=side + working, chunks=chunks,
            has_barrier=has_barrier, pipelined=pipelined,
            driver=driver.name, driver_ambiguous=ambiguous,
            verdict=verdict, fused_regions=fusion.num_fused_regions,
            notes=notes))

    if not per_driver:
        return StrategyFootprint(
            strategy=label, budget_bytes=budget, side_bytes=zero,
            working_bytes=zero, peak_bytes=zero, chunks=Interval.exact(1.0),
            has_barrier=False, pipelined=False, driver="",
            driver_ambiguous=False, verdict="safe",
            notes=("plan has no sources",))
    if len(per_driver) == 1:
        return per_driver[0]
    # ambiguous driver: merge conservatively -- certain only when every
    # plausible driver choice is certain, safe only when all are safe
    verdicts = {fp.verdict for fp in per_driver}
    if verdicts == {"certain-oom"}:
        merged_verdict = "certain-oom"
    elif verdicts == {"safe"}:
        merged_verdict = "safe"
    else:
        merged_verdict = "possible-oom"
    peak = per_driver[0].peak_bytes
    side = per_driver[0].side_bytes
    working = per_driver[0].working_bytes
    chunks = per_driver[0].chunks
    for fp in per_driver[1:]:
        peak = peak.hull(fp.peak_bytes)
        side = side.hull(fp.side_bytes)
        working = working.hull(fp.working_bytes)
        chunks = chunks.hull(fp.chunks)
    first = per_driver[0]
    return StrategyFootprint(
        strategy=label, budget_bytes=first.budget_bytes, side_bytes=side,
        working_bytes=working, peak_bytes=peak, chunks=chunks,
        has_barrier=any(fp.has_barrier for fp in per_driver),
        pipelined=all(fp.pipelined for fp in per_driver),
        driver="|".join(fp.driver for fp in per_driver),
        driver_ambiguous=True, verdict=merged_verdict,
        fused_regions=first.fused_regions,
        notes=("driver source ambiguous under unknown cardinalities",))

"""Static analysis of plans, fusion results, stream programs, and IR.

Runs *before* simulation and reports structured
:class:`~repro.analyze.diagnostics.Diagnostic` findings with stable
codes (see ``docs/ANALYSIS.md`` for the catalog):

* ``PLN0xx`` -- plan lints (structure, column flow, cardinality)
* ``FUS1xx`` -- fusion legality (barriers, single-consumer, cycles,
  register budget)
* ``STR2xx`` -- stream-program races and deadlocks
* ``IRL3xx`` -- compilerlite IR lints
* ``CLU4xx`` -- cluster distribution lints on sharded plans
* ``OPT5xx`` -- optimizer lints on hand-forced strategy choices
* ``MEM7xx`` -- memory-safety verdicts from interval abstract
  interpretation (certain/possible OOM, chunking sufficiency,
  exchange-volume bounds, fusion savings)

Entry points: :class:`Analyzer` for programmatic use, ``repro analyze``
on the CLI, and the opt-in ``analyze=True`` pre-flight on
:class:`~repro.runtime.executor.Executor` and
:class:`~repro.serve.server.QueryServer`.
"""

from .absint import Envelope, Interval, plan_envelopes, strategy_footprint
from .baseline import Baseline, Suppression, baseline_from_findings, write_baseline
from .cluster_lints import ClusterLintPass
from .diagnostics import (REGISTRY, AnalysisReport, CodeInfo, Diagnostic,
                          Severity, SourceLocation, registered,
                          registry_table)
from .framework import Analyzer
from .fusion_check import FusionCheckPass
from .ir_lints import IrLintPass
from .memory_check import (MemoryCheckPass, MemoryTarget, MemoryVerdict,
                           check_strategy)
from .opt_lints import OptimizerLintPass
from .plan_lints import PlanLintPass
from .serve_lints import ServeLintPass
from .stream_check import StreamCheckPass
from . import corpus

__all__ = [
    "Analyzer", "AnalysisReport", "Diagnostic", "Severity",
    "SourceLocation", "Baseline", "Suppression", "baseline_from_findings",
    "write_baseline", "PlanLintPass", "FusionCheckPass", "StreamCheckPass",
    "IrLintPass", "ClusterLintPass", "OptimizerLintPass", "ServeLintPass",
    "MemoryCheckPass", "MemoryTarget", "MemoryVerdict", "check_strategy",
    "Interval", "Envelope", "plan_envelopes", "strategy_footprint",
    "REGISTRY", "CodeInfo", "registered", "registry_table",
    "corpus",
]

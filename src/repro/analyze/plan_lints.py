"""Plan lints (PLN0xx): structural and column-flow checks on logical plans.

Structural problems (PLN001--PLN004) reuse the exact messages of
:meth:`repro.plans.plan.Plan.structural_issues`, so ``plan.validate()``
and ``repro analyze`` report identical text for the same defect.

Column-flow checks (PLN006--PLN008) run a schema lattice over the DAG:
a node's schema is the set of column names it can produce, or ``None``
when unknown (sources without a declared ``fields`` list).  Checks only
fire where the upstream schema is *known* -- plans built over opaque
columnar sources (e.g. TPC-H Q1's positional column arrays) are never
punished for what the analyzer cannot see.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
PLN001    error     operator arity violation
PLN002    error     duplicate node name
PLN003    error     dependency cycle
PLN004    error     input node not part of the plan (dangling edge)
PLN005    warning   source feeds nothing (dead source)
PLN006    error     PROJECT keeps a field its input cannot produce
PLN007    error     join key missing from a join input's schema
PLN008    error     predicate/expression/sort/group field unknown
PLN009    warning   implausible cardinality parameter
PLN010    error     reserved ``__corr`` correlation placeholder survives
========  ========  ====================================================

PLN010 guards the frontend's decorrelation contract: the SQL lowering
names correlated subquery references ``__corr_<name>`` while rewriting
them into joins, and every placeholder must be consumed by that rewrite.
One left behind would read a column no relation produces at runtime.
"""

from __future__ import annotations

from ..plans.plan import OpType, Plan, PlanNode
from ..ra.arithmetic import AggSpec
from ..ra.expr import Predicate
from .diagnostics import Diagnostic, Severity, SourceLocation

#: structural-issue kind -> diagnostic code
_STRUCTURAL_CODES = {
    "arity": "PLN001",
    "duplicate": "PLN002",
    "cycle": "PLN003",
    "dangling": "PLN004",
}

#: ops whose selectivity is a probability (must stay within [0, 1])
_FRACTIONAL_OPS = frozenset({
    OpType.SELECT, OpType.SEMI_JOIN, OpType.ANTI_JOIN, OpType.UNIQUE,
    OpType.INTERSECTION, OpType.DIFFERENCE, OpType.EXCEPT_ALL,
})

#: field-name prefix the SQL frontend reserves for correlated subquery
#: placeholders; decorrelation must rewrite every one away (PLN010)
CORR_PREFIX = "__corr"

Schema = frozenset[str] | None


class PlanLintPass:
    """All PLN0xx checks over one :class:`~repro.plans.plan.Plan`."""

    name = "plan-lints"
    codes = ("PLN001", "PLN002", "PLN003", "PLN004", "PLN005",
             "PLN006", "PLN007", "PLN008", "PLN009", "PLN010")

    def run(self, plan: Plan) -> list[Diagnostic]:
        diags = self._structural(plan)
        # a cycle or arity violation makes the flow analysis meaningless
        # (topological order is undefined / inputs are missing)
        if any(d.code in ("PLN001", "PLN003") for d in diags):
            return diags
        schemas = self._schema_flow(plan, diags)
        self._dead_nodes(plan, diags)
        self._cardinality(plan, diags)
        self._correlation_residue(plan, diags)
        del schemas
        return diags

    # -- structural ------------------------------------------------------
    def _structural(self, plan: Plan) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for issue in plan.structural_issues():
            loc = SourceLocation(
                unit=plan.name, kind="node",
                name=issue.node.name if issue.node is not None else "")
            diags.append(Diagnostic(
                code=_STRUCTURAL_CODES[issue.kind], severity=Severity.ERROR,
                message=issue.message, location=loc, pass_name=self.name))
        return diags

    # -- column flow -----------------------------------------------------
    def _schema_flow(self, plan: Plan, diags: list[Diagnostic]
                     ) -> dict[int, Schema]:
        schemas: dict[int, Schema] = {}
        for node in plan.topological():
            schemas[id(node)] = self._visit(plan, node, schemas, diags)
        return schemas

    def _visit(self, plan: Plan, node: PlanNode,
               schemas: dict[int, Schema],
               diags: list[Diagnostic]) -> Schema:
        def err(code: str, message: str) -> None:
            diags.append(Diagnostic(
                code=code, severity=Severity.ERROR, message=message,
                location=SourceLocation(plan.name, "node", node.name),
                pass_name=self.name))

        def check_fields(code: str, fields: set[str], schema: Schema,
                         what: str, side: str = "input") -> None:
            if schema is None:
                return
            missing = sorted(fields - schema)
            if missing:
                err(code,
                    f"node {node.name!r} ({node.op.value}): {what} "
                    f"reference(s) {missing} not produced by its {side} "
                    f"(schema: {sorted(schema)})")

        ins: list[Schema] = [schemas.get(id(i)) for i in node.inputs]
        left: Schema = ins[0] if ins else None
        right: Schema = ins[1] if len(ins) > 1 else None

        if node.op is OpType.SOURCE:
            declared = node.params.get("fields")
            return frozenset(declared) if declared else None

        if node.op is OpType.SELECT:
            pred = node.params.get("predicate")
            if isinstance(pred, Predicate):
                check_fields("PLN008", set(pred.fields()), left, "predicate")
            return left

        if node.op is OpType.PROJECT:
            fields = list(node.params.get("fields", []))
            check_fields("PLN006", set(fields), left, "projected field")
            return frozenset(fields)

        if node.op is OpType.ARITH:
            outputs = node.params.get("outputs", {})
            keep = node.params.get("keep")
            used: set[str] = set()
            for expr in outputs.values():
                used |= set(expr.fields())
            check_fields("PLN008", used, left, "expression field")
            if keep is not None:
                check_fields("PLN008", set(keep), left, "kept field")
                return frozenset(keep) | frozenset(outputs)
            if left is None:
                return None
            return left | frozenset(outputs)

        if node.op in (OpType.JOIN, OpType.LEFT_JOIN):
            on = node.params.get("on")
            if on is not None:
                lk, rk = on if isinstance(on, tuple) else (on, on)
                check_fields("PLN007", {lk}, left, "join key", "probe side")
                check_fields("PLN007", {rk}, right, "join key", "build side")
            if left is None or right is None:
                return None
            out = left | right
            if node.op is OpType.LEFT_JOIN:
                out |= {node.params.get("match_field", "__matched")}
            return out

        if node.op in (OpType.SEMI_JOIN, OpType.ANTI_JOIN):
            on = node.params.get("on")
            if on is not None:
                lk, rk = on if isinstance(on, tuple) else (on, on)
                check_fields("PLN007", {lk}, left, "join key", "probe side")
                check_fields("PLN007", {rk}, right, "join key", "build side")
            return left

        if node.op in (OpType.INTERSECTION, OpType.DIFFERENCE):
            return left

        if node.op in (OpType.UNION, OpType.UNION_ALL):
            return left if left is not None else right

        if node.op is OpType.EXCEPT_ALL:
            return left

        if node.op in (OpType.SORT, OpType.TOP_N):
            by = node.params.get("by") or []
            check_fields("PLN008", set(by), left, "sort key")
            return left

        if node.op is OpType.UNIQUE:
            return left

        if node.op is OpType.AGGREGATE:
            group_by = list(node.params.get("group_by", []))
            aggs = node.params.get("aggs", {})
            check_fields("PLN008", set(group_by), left, "group-by field")
            agg_fields = {spec.field for spec in aggs.values()
                          if isinstance(spec, AggSpec)
                          and spec.field is not None}
            check_fields("PLN008", agg_fields, left, "aggregated field")
            return frozenset(group_by) | frozenset(aggs)

        return None

    # -- dead nodes ------------------------------------------------------
    def _dead_nodes(self, plan: Plan, diags: list[Diagnostic]) -> None:
        for src in plan.sources():
            if not plan.consumers(src):
                diags.append(Diagnostic(
                    code="PLN005", severity=Severity.WARNING,
                    message=(f"source {src.name!r} has no consumers "
                             f"(dead source)"),
                    location=SourceLocation(plan.name, "node", src.name),
                    pass_name=self.name))

    # -- decorrelation residue -------------------------------------------
    def _correlation_residue(self, plan: Plan,
                             diags: list[Diagnostic]) -> None:
        """PLN010: a reserved ``__corr*`` placeholder survived lowering."""
        for node in plan.nodes:
            residue = sorted(f for f in _referenced_fields(node)
                             if f.startswith(CORR_PREFIX))
            if residue:
                diags.append(Diagnostic(
                    code="PLN010", severity=Severity.ERROR,
                    message=(f"node {node.name!r} ({node.op.value}) still "
                             f"references correlated placeholder(s) "
                             f"{residue}: decorrelation left an unbound "
                             f"outer-query reference"),
                    location=SourceLocation(plan.name, "node", node.name),
                    pass_name=self.name))

    # -- cardinality sanity ----------------------------------------------
    def _cardinality(self, plan: Plan, diags: list[Diagnostic]) -> None:
        def warn(node: PlanNode, message: str) -> None:
            diags.append(Diagnostic(
                code="PLN009", severity=Severity.WARNING, message=message,
                location=SourceLocation(plan.name, "node", node.name),
                pass_name=self.name))

        for node in plan.nodes:
            if node.op in _FRACTIONAL_OPS and node.selectivity > 1.0:
                warn(node,
                     f"node {node.name!r} ({node.op.value}) has selectivity "
                     f"{node.selectivity:g} > 1: a filtering operator "
                     f"cannot grow its input")
            if node.op is not OpType.SOURCE and node.selectivity == 0.0:
                warn(node,
                     f"node {node.name!r} ({node.op.value}) has selectivity "
                     f"0: everything downstream is empty")
            if node.op is OpType.AGGREGATE:
                n_groups = node.params.get("n_groups")
                if n_groups is not None and n_groups <= 0:
                    warn(node,
                         f"node {node.name!r}: n_groups={n_groups} "
                         f"must be positive (or None to scale with input)")


def _referenced_fields(node: PlanNode) -> set[str]:
    """Every column name a node's parameters read or group/sort/join by."""
    out: set[str] = set()
    p = node.params
    pred = p.get("predicate")
    if pred is not None:
        out |= set(pred.fields())
    for expr in (p.get("outputs") or {}).values():
        out |= set(expr.fields())
    out |= set(p.get("keep") or [])
    out |= set(p.get("fields") or []) if node.op is OpType.PROJECT else set()
    out |= set(p.get("by") or [])
    out |= set(p.get("group_by") or [])
    for spec in (p.get("aggs") or {}).values():
        if isinstance(spec, AggSpec) and spec.field is not None:
            out.add(spec.field)
    on = p.get("on")
    if isinstance(on, tuple):
        out |= set(on)
    elif on is not None:
        out.add(on)
    return out

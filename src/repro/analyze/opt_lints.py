"""Optimizer lints (OPT5xx): pricing checks on hand-forced strategies.

A caller who pins an execution strategy (an
:class:`~repro.optimizer.StrategyTarget`) opts out of the cost-based
optimizer -- legal, but worth auditing: the forced choice may be far
off what the analytic cost model would pick for the declared input
sizes.  The pass prices the whole single-device + host strategy space
analytically (no simulation, so the lint stays cheap enough for CI)
and flags forced choices that the model says leave large factors on
the table.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
OPT501    warning   forced strategy analytically priced >= 2x the best
                    enumerated option for the declared input sizes
OPT502    info      the host baseline prices below every GPU option:
                    the input sits on the CPU side of the CPU/GPU
                    crossover, so any forced GPU strategy pays the
                    PCIe round trip for nothing
========  ========  ====================================================
"""

from __future__ import annotations

from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..optimizer.costmodel import CostModel
from ..optimizer.space import CPU_BASELINE, StrategyTarget, enumerate_options
from ..optimizer.stats import DataStats
from ..simgpu.device import DeviceSpec
from .diagnostics import Diagnostic, Severity, SourceLocation

#: OPT501 fires when forced price / best price reaches this factor
OVERPRICE_FACTOR = 2.0


class OptimizerLintPass:
    """All OPT5xx checks over one
    :class:`~repro.optimizer.StrategyTarget`."""

    name = "optimizer-lints"
    codes = ("OPT501", "OPT502")

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS):
        self.device = device or DeviceSpec()
        self.model = CostModel(self.device, costs)

    def run(self, target: StrategyTarget) -> list[Diagnostic]:
        plan = target.plan
        plan.validate()
        stats = DataStats.from_rows(plan, target.source_rows)
        prices: dict[str, float] = {}
        for option in enumerate_options(plan, stats):
            try:
                prices[option.label] = self.model.estimate(
                    plan, stats, option).total_s
            except Exception:  # unpriceable shape: not this lint's problem
                continue
        diags: list[Diagnostic] = []
        self._overpriced(target, prices, diags)
        self._crossover(target, prices, diags)
        return diags

    # -- helpers ---------------------------------------------------------
    def _diag(self, target: StrategyTarget, code: str, severity: Severity,
              message: str) -> Diagnostic:
        return Diagnostic(
            code=code, severity=severity, message=message,
            location=SourceLocation(target.plan.name, "strategy",
                                    target.forced_label),
            pass_name=self.name)

    def _overpriced(self, target: StrategyTarget, prices: dict[str, float],
                    diags: list[Diagnostic]) -> None:
        """OPT501: the forced strategy leaves >= 2x on the table."""
        forced = prices.get(target.forced_label)
        if forced is None or not prices:
            return
        best_label, best = min(prices.items(), key=lambda kv: kv[1])
        if best > 0 and forced / best >= OVERPRICE_FACTOR:
            diags.append(self._diag(
                target, "OPT501", Severity.WARNING,
                f"forced strategy {target.forced_label!r} prices at "
                f"{forced * 1e3:.3f} ms, {forced / best:.1f}x the best "
                f"option {best_label!r} ({best * 1e3:.3f} ms); drop the "
                f"override and let the optimizer choose"))

    def _crossover(self, target: StrategyTarget, prices: dict[str, float],
                   diags: list[Diagnostic]) -> None:
        """OPT502: input is on the CPU side of the crossover."""
        host = prices.get(CPU_BASELINE)
        gpu = [p for label, p in prices.items() if label != CPU_BASELINE]
        if host is None or not gpu or target.forced_label == CPU_BASELINE:
            return
        if host < min(gpu):
            diags.append(self._diag(
                target, "OPT502", Severity.INFO,
                f"host baseline ({host * 1e3:.3f} ms) prices below every "
                f"GPU option (best {min(gpu) * 1e3:.3f} ms): this input "
                f"is on the CPU side of the crossover and the forced "
                f"{target.forced_label!r} pays the PCIe round trip "
                f"for nothing"))

"""Serving-pool lints (SRV6xx): post-run audits of a worker-pool report.

Runs over a :class:`~repro.workers.merge.PoolReport` (the artifact a
closed pool hands back; ``repro serve --workers N --pool-report``).
Unlike the pool sanitizer (:mod:`repro.validate.workers`), which checks
hard invariants, these are *advisory* findings about pool health.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
SRV601    warning   tenant-shard skew: the busiest worker took >= 2x its
                    fair share of dispatches -- tenant hashing landed
                    hot tenants together; consider
                    ``--rebalance least-bytes``
SRV602    error     idempotency-key collision: two *different* dispatches
                    (different batch index or content fingerprint)
                    produced the same dispatch key -- retries of one
                    would be served the other's recorded result
SRV603    error     dead-worker replay gap: a crash recovery restored +
                    re-dispatched fewer entries than the dead worker
                    owned, or a recorded dispatch survives in no
                    worker's log -- completions were lost
========  ========  ====================================================
"""

from __future__ import annotations

from typing import Any

from .diagnostics import Diagnostic, Severity, SourceLocation

#: SRV601 fires when busiest-worker dispatches reach this multiple of the
#: fair share (total / workers)
SKEW_FACTOR = 2.0
#: ... but only once the run is big enough for skew to mean anything
SKEW_MIN_DISPATCHES = 8


class ServeLintPass:
    """All SRV6xx checks over one worker-pool report."""

    name = "serve-lints"
    codes = ("SRV601", "SRV602", "SRV603")

    def run(self, report: Any) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        self._shard_skew(report, diags)
        self._key_collisions(report, diags)
        self._replay_gaps(report, diags)
        return diags

    # -- helpers ---------------------------------------------------------
    def _diag(self, code: str, severity: Severity, message: str,
              kind: str, name: str) -> Diagnostic:
        return Diagnostic(
            code=code, severity=severity, message=message,
            location=SourceLocation("serve-pool", kind, name),
            pass_name=self.name)

    def _shard_skew(self, report: Any, diags: list[Diagnostic]) -> None:
        """SRV601: one worker took >= 2x its fair dispatch share."""
        per_worker = report.dispatches_per_worker()
        total = sum(per_worker.values())
        if report.num_workers < 2 or total < SKEW_MIN_DISPATCHES:
            return
        fair = total / report.num_workers
        worker, busiest = max(per_worker.items(), key=lambda kv: (kv[1],
                                                                  -kv[0]))
        if busiest >= SKEW_FACTOR * fair:
            hot = sorted(t for t, ws in report.tenant_workers().items()
                         if worker in ws)
            diags.append(self._diag(
                "SRV601", Severity.WARNING,
                f"worker {worker} took {busiest} of {total} dispatches "
                f"({busiest / fair:.1f}x the fair share of {fair:.1f}); "
                f"tenants {hot} hash together -- consider "
                f"--rebalance least-bytes",
                "worker", str(worker)))

    def _key_collisions(self, report: Any,
                        diags: list[Diagnostic]) -> None:
        """SRV602: distinct dispatches sharing one idempotency key."""
        by_token: dict[str, set[tuple[int, str]]] = {}
        for rec in report.dispatches:
            by_token.setdefault(rec.key_token, set()).add(
                (rec.batch_idx, rec.query_fingerprint))
        for token, members in sorted(by_token.items()):
            if len(members) > 1:
                idxs = sorted(b for b, _ in members)
                diags.append(self._diag(
                    "SRV602", Severity.ERROR,
                    f"dispatches {idxs} collide on idempotency key "
                    f"{token[:32]}...: a retry of one would replay the "
                    f"other's result",
                    "key", token[:32]))

    def _replay_gaps(self, report: Any, diags: list[Diagnostic]) -> None:
        """SRV603: crash recovery lost entries."""
        for ev in report.respawns:
            replayed = ev.restored + ev.redispatched
            if replayed < ev.expected:
                diags.append(self._diag(
                    "SRV603", Severity.ERROR,
                    f"worker {ev.worker} died owning {ev.expected} "
                    f"outbox entries but replay covered only {replayed} "
                    f"({ev.restored} restored + {ev.redispatched} "
                    f"re-dispatched): completions were lost",
                    "worker", str(ev.worker)))
        logged = {rec.batch_idx for rec in report.dispatches}
        expected = {a.sequence for a in report.assignments}
        missing = sorted(expected - logged)
        if missing:
            diags.append(self._diag(
                "SRV603", Severity.ERROR,
                f"dispatch(es) {missing} were routed but survive in no "
                f"worker's log: a dead worker's shard was not replayed",
                "pool", "coverage"))

"""The analyzer's built-in corpus: every artifact `repro analyze` scans.

One exemplar plan per Figure-2 pattern (a-h, all with declared source
schemas so the column-flow lints actually fire), the TPC-H plans, a
seeded fuzz-plan sweep, their fused forms, a batched-streams program
from the serving path, and the compilerlite Table-III kernels.  The CI
lint gate runs ``repro analyze --strict`` over exactly this corpus, so
everything here must stay free of error-severity findings.
"""

from __future__ import annotations

from typing import Any

from ..compilerlite import (
    FilterStatement,
    gen_arith_kernel,
    gen_fused_naive,
    gen_unfused,
    optimize,
)
from ..compilerlite.ir import Program
from ..core.fusion import fuse_plan
from ..plans.fuzz import random_plan_case
from ..plans.plan import Plan
from ..ra.arithmetic import AggSpec
from ..ra.expr import Const, Field
from ..simgpu.device import DeviceSpec

#: fields of the synthetic lineitem-like table the pattern plans scan
_FIELDS = ["k", "v", "w", "price", "discount"]


def _base(plan: Plan, name: str = "t"):
    return plan.source(name, row_nbytes=20, fields=_FIELDS)


def pattern_a_plan() -> Plan:
    """(a) back-to-back SELECTs (date-range style filters)."""
    plan = Plan(name="pattern_a")
    src = _base(plan)
    s1 = plan.select(src, Field("v") >= 10, selectivity=0.8, name="lo")
    plan.select(s1, Field("v") < 40, selectivity=0.6, name="hi")
    return plan


def pattern_b_plan() -> Plan:
    """(b) a cascade of JOINs building a wide table."""
    plan = Plan(name="pattern_b")
    fact = _base(plan, "fact")
    d1 = plan.source("dim1", row_nbytes=8, fields=["k", "d1"])
    d2 = plan.source("dim2", row_nbytes=8, fields=["k", "d2"])
    j1 = plan.join(fact, d1, on="k", match_rate=1.0, name="j1")
    plan.join(j1, d2, on="k", match_rate=1.0, name="j2")
    return plan


def pattern_c_plan() -> Plan:
    """(c) several SELECTs filtering the same input (shared scan)."""
    plan = Plan(name="pattern_c")
    src = _base(plan)
    plan.select(src, Field("v") < 10, selectivity=0.2, name="q0")
    plan.select(src, Field("v") < 25, selectivity=0.5, name="q1")
    plan.select(src, Field("w") >= 5, selectivity=0.9, name="q2")
    return plan


def pattern_d_plan() -> Plan:
    """(d) SELECT over fields produced by a JOIN."""
    plan = Plan(name="pattern_d")
    fact = _base(plan, "fact")
    dim = plan.source("dim", row_nbytes=8, fields=["k", "flag"])
    j = plan.join(fact, dim, on="k", match_rate=1.0, name="j")
    plan.select(j, Field("flag").eq(1), selectivity=0.5, name="post")
    return plan


def pattern_e_plan() -> Plan:
    """(e) ARITH over fields produced by a JOIN."""
    plan = Plan(name="pattern_e")
    fact = _base(plan, "fact")
    dim = plan.source("dim", row_nbytes=8, fields=["k", "rate"])
    j = plan.join(fact, dim, on="k", match_rate=1.0, name="j")
    plan.arith(j, {"amount": Field("price") * Field("rate")},
               keep=["k"], name="amount")
    return plan


def pattern_f_plan() -> Plan:
    """(f) JOIN of two SELECT-ed tables."""
    plan = Plan(name="pattern_f")
    left = _base(plan, "left")
    right = plan.source("right", row_nbytes=8, fields=["k", "r"])
    ls = plan.select(left, Field("v") < 30, selectivity=0.5, name="lsel")
    rs = plan.select(right, Field("r") >= 1, selectivity=0.5, name="rsel")
    plan.join(ls, rs, on="k", match_rate=0.5, name="j")
    return plan


def pattern_g_plan() -> Plan:
    """(g) AGGREGATION over SELECT-ed data."""
    plan = Plan(name="pattern_g")
    src = _base(plan)
    sel = plan.select(src, Field("v") < 25, selectivity=0.5, name="sel")
    plan.aggregate(sel, ["k"], {
        "n": AggSpec("count"),
        "total": AggSpec("sum", "price"),
    }, n_groups=16, name="agg")
    return plan


def pattern_h_plan() -> Plan:
    """(h) ARITH followed by PROJECT discarding the source fields."""
    plan = Plan(name="pattern_h")
    src = _base(plan)
    a = plan.arith(src, {
        "disc_price": Field("price") * (Const(1) - Field("discount")),
    }, keep=["k", "price", "discount"], name="disc")
    plan.project(a, ["k", "disc_price"], name="slim")
    return plan


def select_chain_plan(n: int = 4) -> Plan:
    """An n-deep SELECT chain -- the register-budget stress shape."""
    plan = Plan(name=f"select_chain_{n}")
    node = _base(plan)
    for i in range(n):
        node = plan.select(node, Field("v") < 50 - i, selectivity=0.9,
                           name=f"s{i}")
    return plan


def pattern_plans() -> list[tuple[str, Plan]]:
    """One labeled exemplar per Figure-2 pattern, plus the chain."""
    return [
        ("pattern_a", pattern_a_plan()),
        ("pattern_b", pattern_b_plan()),
        ("pattern_c", pattern_c_plan()),
        ("pattern_d", pattern_d_plan()),
        ("pattern_e", pattern_e_plan()),
        ("pattern_f", pattern_f_plan()),
        ("pattern_g", pattern_g_plan()),
        ("pattern_h", pattern_h_plan()),
        ("select_chain", select_chain_plan()),
    ]


def tpch_plans() -> list[tuple[str, Plan]]:
    from ..tpch.q1 import build_q1_plan
    from ..tpch.q6 import build_q6_plan
    from ..tpch.q21 import build_q21_plan
    return [
        ("tpch_q1", build_q1_plan()),
        ("tpch_q6", build_q6_plan()),
        ("tpch_q21", build_q21_plan()),
    ]


def frontend_plans() -> list[tuple[str, Plan]]:
    """The full TPC-H suite compiled through the SQL frontend."""
    from ..tpch.catalog import QUERIES, compile_tpch
    return [(f"sql_{name}", compile_tpch(name).plan) for name in QUERIES]


def cluster_plans(num_shards: int = 4) -> list[tuple[str, Any]]:
    """The TPC-H plans distributed over a 4-shard cluster (CLU4xx
    targets) -- the exact shapes the cluster CI smoke executes, at a row
    scale where Q1 takes the exchange path."""
    from ..plans.distribute import distribute_plan
    from ..tpch.q1 import build_q1_plan, q1_source_rows
    from ..tpch.q21 import build_q21_plan, q21_source_rows
    n = 2_000_000
    return [
        (f"tpch_q1@x{num_shards}", distribute_plan(
            build_q1_plan(), q1_source_rows(n), num_shards)),
        (f"tpch_q21@x{num_shards}", distribute_plan(
            build_q21_plan(),
            q21_source_rows(n, n // 4, max(1, n // 600)), num_shards)),
    ]


def fuzz_plans(n_seeds: int = 50) -> list[tuple[str, Plan]]:
    """Plans from the differential-testing fuzzer, seeds 0..n-1."""
    return [(f"fuzz_{seed}", random_plan_case(seed).plan)
            for seed in range(n_seeds)]


def ir_programs() -> list[tuple[str, Program]]:
    """The Table-III kernels, unoptimized and through the O3 pipeline."""
    stmts = [FilterStatement("lt", 100.0), FilterStatement("lt", 50.0)]
    targets: list[tuple[str, Program]] = []
    for prog in gen_unfused(stmts):
        targets.append((f"o0_{prog.name}", prog))
        targets.append((f"o3_{prog.name}", optimize(prog)))
    fused = gen_fused_naive(stmts)
    targets.append(("o0_fused", fused))
    targets.append(("o3_fused", optimize(fused)))
    arith = gen_arith_kernel([
        ("disc_price", Field("price") * (Const(1.0) - Field("discount"))),
        ("charge",
         Field("price") * (Const(1.0) - Field("discount"))
         * (Const(1.0) + Field("tax"))),
    ], name="q1_arith")
    targets.append(("o0_q1_arith", arith))
    targets.append(("o3_q1_arith", optimize(arith)))
    return targets


def memory_targets(device: DeviceSpec | None = None
                   ) -> list[tuple[str, Any]]:
    """Memory-safety targets (MEM7xx): the TPC-H plans at the cluster
    smoke's row scale, single-device and distributed -- all proven safe
    at the default 6 GB budget, so the strict gate holds the analyzer to
    zero false OOM errors on real shapes."""
    from ..analyze.memory_check import MemoryTarget
    from ..plans.distribute import distribute_plan
    from ..tpch.q1 import build_q1_plan, q1_source_rows
    from ..tpch.q6 import build_q6_plan
    from ..tpch.q21 import build_q21_plan, q21_source_rows
    n = 2_000_000
    q21_rows = q21_source_rows(n, n // 4, max(1, n // 600))
    targets: list[tuple[str, Any]] = [
        ("mem:tpch_q1", MemoryTarget(build_q1_plan(), q1_source_rows(n),
                                     device=device)),
        ("mem:tpch_q6", MemoryTarget(build_q6_plan(), {"lineitem": n},
                                     device=device)),
        ("mem:tpch_q21", MemoryTarget(build_q21_plan(), q21_rows,
                                      device=device)),
        ("mem:pattern_g", MemoryTarget(pattern_g_plan(), {"t": 1_000_000},
                                       device=device)),
    ]
    q1 = build_q1_plan()
    targets.append(("mem:tpch_q1@x4", MemoryTarget(
        distribute_plan(q1, q1_source_rows(n), 4),
        q1_source_rows(n), device=device)))
    return targets


def batched_stream_pool(device: DeviceSpec | None = None):
    """A serving-path batched-streams program (enqueued, not run): the
    three-query shared-scan workload the race detector inspects."""
    from ..runtime.workload import QueryWorkload, WorkloadScheduler

    def one_query(qname: str, cutoff: int) -> Plan:
        plan = Plan(name=qname)
        src = _base(plan, "lineitem")
        sel = plan.select(src, Field("v") < cutoff, selectivity=0.5,
                          name="sel")
        plan.aggregate(sel, ["k"], {"n": AggSpec("count")},
                       n_groups=8, name="agg")
        return plan

    workload = QueryWorkload(plans=[
        one_query("q_a", 10), one_query("q_b", 20), one_query("q_c", 30),
    ])
    sched = WorkloadScheduler(device or DeviceSpec())
    pool, _ = sched.enqueue_batched_streams(workload, {"lineitem": 100_000})
    return pool


def default_corpus(n_fuzz_seeds: int = 50,
                   device: DeviceSpec | None = None,
                   include_streams: bool = True
                   ) -> list[tuple[str, Any]]:
    """Everything ``repro analyze`` scans, as (label, target) pairs.

    Plans appear twice: raw (plan lints) and fused (fusion legality).
    """
    targets: list[tuple[str, Any]] = []
    plans = (pattern_plans() + tpch_plans() + frontend_plans()
             + fuzz_plans(n_fuzz_seeds))
    for label, plan in plans:
        targets.append((label, plan))
    for label, plan in plans:
        targets.append((f"{label}:fused", fuse_plan(plan)))
    targets.extend(cluster_plans())
    targets.extend(memory_targets(device))
    if include_streams:
        targets.append(("batched_streams", batched_stream_pool(device)))
    for label, prog in ir_programs():
        targets.append((f"ir:{label}", prog))
    return targets


__all__ = [
    "pattern_plans", "tpch_plans", "frontend_plans", "cluster_plans",
    "fuzz_plans",
    "ir_programs", "batched_stream_pool", "memory_targets",
    "default_corpus", "select_chain_plan",
]

"""IR lints (IRL3xx) for :mod:`repro.compilerlite` programs.

The mini-PTX programs are straight-line with forward branches, so a
single forward scan is exact: a register must be defined textually
before its first use, and a definition nobody reads before the next
redefinition (or the end) is dead.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
IRL301    error     register used before any definition
IRL302    warning   dead store (defined register never read)
IRL303    error     guard predicate register never defined
IRL304    error     branch to an undefined label
========  ========  ====================================================
"""

from __future__ import annotations

from ..compilerlite.ir import Instr, Program
from .diagnostics import Diagnostic, Severity, SourceLocation


def _register_srcs(instr: Instr) -> list[str]:
    """Source operands that are registers (not memory locations,
    labels, or immediates) -- mirrors the liveness pass's operand
    model (:mod:`repro.compilerlite.liveness`)."""
    if instr.op in ("bra", "label"):
        return []
    srcs = list(instr.srcs)
    if instr.op in ("ld", "st"):
        srcs = srcs[1:]  # srcs[0] is the memory location
    return [s for s in srcs if isinstance(s, str)]


class IrLintPass:
    """All IRL3xx checks over one :class:`Program`."""

    name = "ir-lints"
    codes = ("IRL301", "IRL302", "IRL303", "IRL304")

    def run(self, prog: Program) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        unit = prog.name

        def add(code: str, severity: Severity, k: int, message: str) -> None:
            diags.append(Diagnostic(
                code=code, severity=severity, message=message,
                location=SourceLocation(unit, "instr",
                                        prog.instrs[k].op, index=k),
                pass_name=self.name))

        labels = {i.srcs[0] for i in prog.instrs if i.op == "label"}
        defined: set[str] = set()
        for k, instr in enumerate(prog.instrs):
            for reg in _register_srcs(instr):
                if reg not in defined:
                    add("IRL301", Severity.ERROR, k,
                        f"register {reg!r} used by "
                        f"{instr.render().strip()!r} before any definition")
            if instr.guard is not None:
                guard_reg = instr.guard.lstrip("!")
                if guard_reg not in defined:
                    add("IRL303", Severity.ERROR, k,
                        f"guard @{instr.guard} on "
                        f"{instr.render().strip()!r} references predicate "
                        f"{guard_reg!r}, which is never defined before it")
            if instr.op == "bra" and instr.srcs[0] not in labels:
                add("IRL304", Severity.ERROR, k,
                    f"branch to undefined label {instr.srcs[0]!r}")
            if instr.dst is not None and instr.op != "st":
                defined.add(instr.dst)

        self._dead_stores(prog, add)
        return diags

    def _dead_stores(self, prog: Program, add) -> None:
        for k, instr in enumerate(prog.instrs):
            if instr.dst is None or instr.op == "st":
                continue
            reg = instr.dst
            for later in prog.instrs[k + 1:]:
                if (reg in _register_srcs(later)
                        or (later.guard is not None
                            and later.guard.lstrip("!") == reg)):
                    break  # used before any redefinition
                if later.dst == reg and later.op != "st":
                    add("IRL302", Severity.WARNING, k,
                        f"dead store: {instr.render().strip()!r} defines "
                        f"{reg!r}, which is redefined before any use")
                    break
            else:
                add("IRL302", Severity.WARNING, k,
                    f"dead store: {instr.render().strip()!r} defines "
                    f"{reg!r}, which is never used")

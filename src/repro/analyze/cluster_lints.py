"""Cluster lints (CLU4xx): distribution checks on sharded plans.

:func:`repro.plans.distribute.distribute_plan` never *produces* an
illegal distribution -- it demotes anything it cannot prove local.  But a
:class:`~repro.plans.distribute.DistributedPlan` is a plain dataclass
that tests, benchmarks, and callers can also assemble by hand, so the
analyzer re-derives the legality and efficiency conditions from the
artifact itself.  CLU401 is the correctness gate for manual
configurations; the rest flag distributions that are legal but wasteful.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
CLU401    error     local join whose build side is neither replicated
                    nor co-partitioned on the join key
CLU402    warning   skewed shard sizes (max/mean over threshold)
CLU403    warning   exchange shuffles a key the shards are already
                    co-partitioned on
CLU404    warning   replicated source larger than a driver shard
                    (partitioning it would move fewer bytes)
CLU405    info      single-shard cluster (distribution overhead, no
                    parallelism)
CLU406    warning   suffix aggregate decomposes but the distribution
                    skips pre-aggregation: raw frontier rows cross the
                    exchange where partial states would
CLU407    warning   pre-aggregated distribution merges flat on a wide
                    cluster: a pairwise tree merge keeps the host off
                    the serial gather path
========  ========  ====================================================
"""

from __future__ import annotations

from ..core.opmodels import out_row_nbytes
from ..plans.distribute import DistributedPlan, find_preagg
from ..plans.plan import OpType, PlanNode
from .diagnostics import Diagnostic, Severity, SourceLocation

#: CLU402 fires when max(shard rows) / mean(shard rows) reaches this
SKEW_THRESHOLD = 2.0

#: binary ops whose build side (second input) must be replicated or
#: co-partitioned for a keyed shard-local evaluation to be correct
_KEYED_BUILD_OPS = frozenset({
    OpType.JOIN, OpType.SEMI_JOIN, OpType.ANTI_JOIN,
})


class ClusterLintPass:
    """All CLU4xx checks over one
    :class:`~repro.plans.distribute.DistributedPlan`."""

    name = "cluster-lints"
    codes = ("CLU401", "CLU402", "CLU403", "CLU404", "CLU405",
             "CLU406", "CLU407")

    #: CLU407 only pays off once the serial flat gather spans this many
    #: per-device buffers
    TREE_MERGE_MIN_SHARDS = 4

    def run(self, dist: DistributedPlan) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        self._build_sides(dist, diags)
        self._skew(dist, diags)
        self._redundant_exchange(dist, diags)
        self._oversized_replicas(dist, diags)
        self._single_shard(dist, diags)
        self._missed_preagg(dist, diags)
        self._flat_merge(dist, diags)
        return diags

    # -- helpers ---------------------------------------------------------
    def _diag(self, dist: DistributedPlan, code: str, severity: Severity,
              message: str, name: str, kind: str = "node") -> Diagnostic:
        return Diagnostic(
            code=code, severity=severity, message=message,
            location=SourceLocation(dist.name, kind, name),
            pass_name=self.name)

    #: `_dist_of` marker: the node's value is identical on every shard
    _REP = "replicated"

    def _dist_of(self, dist: DistributedPlan, node: PlanNode,
                 memo: dict[str, object]) -> object:
        """`_REP`, a partition-key tuple, or None (unknown/positional).

        A bottom-up re-derivation of the shard layout from the declared
        source layouts: replication is absorbing through any op whose
        inputs are all replicated; a keyed join keeps the probe key when
        the build side is replicated, or the shared key when both sides
        carry it; a keyed aggregation keeps a key it groups by.
        """
        if node.name in memo:
            return memo[node.name]
        memo[node.name] = None           # cycle guard; overwritten below
        if node.op is OpType.SOURCE:
            sd = dist.source_dist(node.name)
            out = self._REP if sd.kind == "replicated" else sd.key
        else:
            ins = [self._dist_of(dist, i, memo) for i in node.inputs]
            if ins and all(d == self._REP for d in ins):
                out = self._REP
            elif (node.op in _KEYED_BUILD_OPS and len(ins) > 1
                    and node.params.get("on") is not None
                    and not node.params.get("gather")):
                on = (node.params["on"],)
                probe, build = ins[0], ins[1]
                if build == self._REP:
                    out = probe
                elif probe == on and build == on:
                    out = on
                else:
                    out = None
            elif node.op is OpType.AGGREGATE:
                key = ins[0] if ins else None
                group_by = set(node.params.get("group_by") or [])
                out = (key if isinstance(key, tuple)
                       and set(key) <= group_by else None)
            elif node.op is OpType.UNION:
                out = ins[0] if len(set(ins)) == 1 else None
            elif len(ins) == 1:
                out = ins[0]             # filters/projections keep layout
            else:
                out = None
        memo[node.name] = out
        return out

    # -- CLU401: illegal build sides -------------------------------------
    def _build_sides(self, dist: DistributedPlan,
                     diags: list[Diagnostic]) -> None:
        memo: dict[str, object] = {}
        for name in sorted(dist.local_names):
            node = dist.node(name)
            if node.op not in _KEYED_BUILD_OPS or len(node.inputs) < 2:
                continue
            if node.params.get("gather"):
                continue                   # row-aligned column gather
            on = node.params.get("on")
            if on is None:
                continue
            probe, build = node.inputs[0], node.inputs[1]
            bd = self._dist_of(dist, build, memo)
            pd = self._dist_of(dist, probe, memo)
            if bd == self._REP:
                continue
            if bd == (on,) and pd == (on,):
                continue
            diags.append(self._diag(
                dist, "CLU401", Severity.ERROR,
                f"local {node.op.value} {name!r} joins on {on!r} but its "
                f"build side {build.name!r} is neither replicated nor "
                f"co-partitioned with the probe side on {on!r}: "
                f"shard-local evaluation drops cross-shard matches", name))

    # -- CLU402: shard skew ----------------------------------------------
    def _skew(self, dist: DistributedPlan,
              diags: list[Diagnostic]) -> None:
        rows = dist.driver_shard_rows
        if not rows or sum(rows) == 0:
            return
        mean = sum(rows) / len(rows)
        ratio = max(rows) / mean
        if ratio >= SKEW_THRESHOLD:
            diags.append(self._diag(
                dist, "CLU402", Severity.WARNING,
                f"driver {dist.driver!r} shard sizes are skewed: "
                f"max/mean = {ratio:.2f} (rows {list(rows)}); the largest "
                f"shard gates the barrier", dist.driver, kind="source"))

    # -- CLU403: redundant exchange --------------------------------------
    def _redundant_exchange(self, dist: DistributedPlan,
                            diags: list[Diagnostic]) -> None:
        ex = dist.exchange
        if ex is None or dist.partition_key is None:
            return
        if tuple(ex.key) == tuple(dist.partition_key):
            diags.append(self._diag(
                dist, "CLU403", Severity.WARNING,
                f"exchange repartitions {ex.buffer!r} on {ex.key} but the "
                f"shards are already co-partitioned on that key: the "
                f"shuffle moves {ex.est_bytes} B for nothing", ex.buffer))

    # -- CLU404: oversized replicas --------------------------------------
    def _oversized_replicas(self, dist: DistributedPlan,
                            diags: list[Diagnostic]) -> None:
        if not dist.driver_shard_rows:
            return
        driver = dist.node(dist.driver)
        shard_bytes = max(dist.driver_shard_rows) * out_row_nbytes(driver)
        for src in dist.sources:
            if src.kind != "replicated":
                continue
            src_bytes = src.rows * out_row_nbytes(dist.node(src.name))
            if src_bytes > shard_bytes:
                diags.append(self._diag(
                    dist, "CLU404", Severity.WARNING,
                    f"replicated source {src.name!r} ({src_bytes} B) is "
                    f"larger than a driver shard ({shard_bytes} B): every "
                    f"device uploads more than its share of the driver",
                    src.name, kind="source"))

    # -- CLU405: single-shard cluster ------------------------------------
    def _single_shard(self, dist: DistributedPlan,
                      diags: list[Diagnostic]) -> None:
        if dist.num_shards == 1:
            diags.append(self._diag(
                dist, "CLU405", Severity.INFO,
                f"cluster of one shard: {dist.name!r} pays distribution "
                f"overhead with no parallelism", dist.plan.name))

    # -- CLU406: missed pre-aggregation ----------------------------------
    def _missed_preagg(self, dist: DistributedPlan,
                       diags: list[Diagnostic]) -> None:
        if dist.preagg is not None or dist.num_shards == 1:
            return
        spec = find_preagg(dist)
        if spec is None:
            return
        moved = (dist.exchange.est_bytes if dist.exchange is not None
                 else None)
        moved_txt = f" ({moved} B of raw rows cross" if moved else " (rows cross"
        diags.append(self._diag(
            dist, "CLU406", Severity.WARNING,
            f"suffix aggregate {spec.agg!r} decomposes "
            f"({'exact' if spec.exact else 'timing-only'}; "
            f"~{spec.est_groups} groups x {spec.state_row_nbytes} B "
            f"states) but the distribution ships the raw frontier"
            f"{moved_txt} the exchange where partial states would)",
            spec.agg))

    # -- CLU407: flat merge on a wide pre-aggregated cluster -------------
    def _flat_merge(self, dist: DistributedPlan,
                    diags: list[Diagnostic]) -> None:
        if (dist.preagg is None or dist.merge != "flat"
                or dist.num_shards < self.TREE_MERGE_MIN_SHARDS):
            return
        diags.append(self._diag(
            dist, "CLU407", Severity.WARNING,
            f"pre-aggregated distribution over {dist.num_shards} shards "
            f"merges flat: the host serially gathers every per-device "
            f"state buffer; a pairwise tree merge touches only the root",
            dist.preagg.agg))

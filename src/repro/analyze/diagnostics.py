"""Structured diagnostics for the static analyzer.

Every finding is a :class:`Diagnostic` with a stable code (``PLN0xx`` /
``FUS1xx`` / ``STR2xx`` / ``IRL3xx``), a :class:`Severity`, a human
message, and a :class:`SourceLocation` naming the plan node, fusion
region, stream command, or IR instruction involved.  Stability of codes
and locations is load-bearing: the baseline/suppression format
(:mod:`repro.analyze.baseline`) matches on them, and CI fails on any
*new* error-severity finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import AnalysisError


class Severity(enum.IntEnum):
    """Ordered severity levels (higher is worse)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points.

    ``unit`` is the analyzed artifact's name (plan name, program name,
    stream-pool label); ``kind`` says what the location names (``node``,
    ``region``, ``stream``, ``instr``, ``buffer``, ``plan``); ``name``
    is the node/region/buffer name and ``index`` an optional command or
    instruction index within the unit.
    """

    unit: str
    kind: str
    name: str = ""
    index: int | None = None

    def __str__(self) -> str:
        parts = [self.unit, self.kind]
        if self.name:
            parts.append(self.name)
        where = ":".join(parts)
        if self.index is not None:
            where += f"[{self.index}]"
        return where


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation
    pass_name: str = ""

    def __str__(self) -> str:
        return (f"{self.code} {self.severity} at {self.location}: "
                f"{self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (the CLI's ``--json`` output)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "location": str(self.location),
            "message": self.message,
            "pass": self.pass_name,
        }


#: pinned identifier of the ``--json`` report document; bump on any
#: shape change (tests/analyze/test_json_report.py pins the layout)
JSON_SCHEMA = "repro.analyze.report/v1"


@dataclass
class AnalysisReport:
    """Everything one :class:`~repro.analyze.Analyzer` invocation found."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)
    #: findings matched (and silenced) by the baseline file
    suppressed: list[Diagnostic] = field(default_factory=list)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        for name in other.passes_run:
            if name not in self.passes_run:
                self.passes_run.append(name)
        return self

    # -- queries ---------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics survived suppression."""
        return not self.errors

    def codes(self) -> list[str]:
        return sorted({d.code for d in self.diagnostics})

    def has_code(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`~repro.errors.AnalysisError` when errors exist."""
        if self.errors:
            raise AnalysisError(self.errors)
        return self

    # -- rendering -------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Flat deterministic mapping (trace metadata, CLI ``--json``)."""
        counts: dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.code] = counts.get(d.code, 0) + 1
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.by_severity(Severity.INFO)),
            "suppressed": len(self.suppressed),
            "passes": sorted(self.passes_run),
            "codes": {code: counts[code] for code in sorted(counts)},
        }

    def json_payload(self, targets: int = 0,
                     stale: list = ()) -> dict[str, object]:
        """The CLI's ``--json`` document (schema :data:`JSON_SCHEMA`).

        Findings are sorted by ``(code, location, message, pass)`` so two
        runs over the same corpus render byte-identical output (checked
        with ``cmp`` in CI).  ``stale`` lists baseline suppressions that
        matched nothing.
        """
        findings = sorted(
            self.diagnostics,
            key=lambda d: (d.code, str(d.location), d.message, d.pass_name))
        return {
            "schema": JSON_SCHEMA,
            "targets": targets,
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in findings],
            "stale_suppressions": [s.render() for s in stale],
        }

    def render(self) -> str:
        lines = []
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        for d in sorted(self.diagnostics,
                        key=lambda d: (order[d.severity], d.code,
                                       str(d.location))):
            lines.append(str(d))
        s = self.summary()
        lines.append(
            f"analysis: {s['errors']} error(s), {s['warnings']} warning(s), "
            f"{s['infos']} info(s), {s['suppressed']} suppressed "
            f"[{', '.join(self.passes_run)}]")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the central diagnostic-code registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code: its severity and one-line doc."""

    code: str
    severity: Severity
    doc: str


#: every diagnostic code any pass may emit, with its declared severity.
#: Passes must emit exactly these severities, and the docs tables must
#: agree -- both are asserted by ``tests/analyze/test_registry.py``.
_CODES: tuple[CodeInfo, ...] = (
    # plan lints (plan_lints.py)
    CodeInfo("PLN001", Severity.ERROR, "operator arity mismatch"),
    CodeInfo("PLN002", Severity.ERROR, "duplicate node name"),
    CodeInfo("PLN003", Severity.ERROR, "dependency cycle in the plan DAG"),
    CodeInfo("PLN004", Severity.ERROR, "node input not registered in the plan"),
    CodeInfo("PLN005", Severity.WARNING, "dead source: no consumers"),
    CodeInfo("PLN006", Severity.ERROR,
             "PROJECT keeps a field its input does not produce"),
    CodeInfo("PLN007", Severity.ERROR, "join key missing on probe/build side"),
    CodeInfo("PLN008", Severity.ERROR,
             "predicate / sort key / group-by field not in the input schema"),
    CodeInfo("PLN009", Severity.WARNING, "implausible cost annotation"),
    CodeInfo("PLN010", Severity.ERROR,
             "unbound correlated reference survived decorrelation"),
    # fusion legality (fusion_check.py)
    CodeInfo("FUS101", Severity.ERROR,
             "barrier / non-fusable op inside a fused region"),
    CodeInfo("FUS102", Severity.ERROR,
             "region chain link is not an elementwise dependence"),
    CodeInfo("FUS103", Severity.ERROR,
             "fused producer has consumers outside its region"),
    CodeInfo("FUS104", Severity.ERROR,
             "inter-region dependence cycle via side inputs"),
    CodeInfo("FUS105", Severity.ERROR, "region list not topologically ordered"),
    CodeInfo("FUS106", Severity.WARNING,
             "fused region exceeds the device register budget"),
    CodeInfo("FUS107", Severity.ERROR,
             "plan node missing from, or duplicated across, regions"),
    CodeInfo("FUS108", Severity.ERROR,
             "illegal fusion across an outer-join null-padding barrier"),
    # stream races (stream_check.py)
    CodeInfo("STR201", Severity.ERROR, "unordered write-write on one buffer"),
    CodeInfo("STR202", Severity.ERROR, "unordered read-write (missing edge)"),
    CodeInfo("STR203", Severity.ERROR,
             "read with no write ordered before it (use before upload)"),
    CodeInfo("STR204", Severity.ERROR,
             "D2H download of a buffer nothing ever writes"),
    CodeInfo("STR205", Severity.ERROR,
             "wait on an event never signaled, or signaled late (deadlock)"),
    CodeInfo("STR206", Severity.WARNING, "buffer uploaded but never read"),
    CodeInfo("STR207", Severity.INFO,
             "kernel-written buffer never read or downloaded"),
    # IR lints (ir_lints.py)
    CodeInfo("IRL301", Severity.ERROR, "register used before any definition"),
    CodeInfo("IRL302", Severity.WARNING, "dead store"),
    CodeInfo("IRL303", Severity.ERROR,
             "guard predicate register never defined"),
    CodeInfo("IRL304", Severity.ERROR, "branch to an undefined label"),
    # cluster lints (cluster_lints.py)
    CodeInfo("CLU401", Severity.ERROR,
             "keyed join with sides not co-partitioned marked shard-local"),
    CodeInfo("CLU402", Severity.WARNING,
             "partition skew: max/mean driver shard rows >= 2x"),
    CodeInfo("CLU403", Severity.WARNING,
             "exchange re-partitions on the existing partition key"),
    CodeInfo("CLU404", Severity.WARNING,
             "replicated relation larger than the largest driver shard"),
    CodeInfo("CLU405", Severity.INFO, "distributed plan with a single shard"),
    CodeInfo("CLU406", Severity.WARNING,
             "decomposable suffix aggregate ships raw frontier rows"),
    CodeInfo("CLU407", Severity.WARNING,
             "pre-aggregated distribution merges flat on >= 4 shards"),
    # optimizer lints (opt_lints.py)
    CodeInfo("OPT501", Severity.WARNING,
             "forced strategy >= 2x the best priced option"),
    CodeInfo("OPT502", Severity.INFO,
             "host baseline beats every GPU option but a GPU strategy "
             "is forced"),
    # serving-pool lints (serve_lints.py)
    CodeInfo("SRV601", Severity.WARNING,
             "tenant-shard skew: busiest worker >= 2x fair share"),
    CodeInfo("SRV602", Severity.ERROR, "idempotency-key collision"),
    CodeInfo("SRV603", Severity.ERROR, "dead-worker replay gap"),
    # memory safety (memory_check.py)
    CodeInfo("MEM701", Severity.ERROR,
             "certain OOM: peak lower bound exceeds the device budget "
             "with no chunking escape"),
    CodeInfo("MEM702", Severity.WARNING,
             "possible OOM: the budget falls inside the peak interval"),
    CodeInfo("MEM703", Severity.INFO,
             "chunked / pipelined execution proven sufficient"),
    CodeInfo("MEM704", Severity.WARNING,
             "exchange hot destination may exceed the device budget"),
    CodeInfo("MEM705", Severity.INFO,
             "pre-aggregation is load-bearing for memory fit"),
    CodeInfo("MEM706", Severity.INFO,
             "fusion-savings report: intermediate bytes eliminated"),
)

REGISTRY: dict[str, CodeInfo] = {info.code: info for info in _CODES}
assert len(REGISTRY) == len(_CODES), "duplicate diagnostic code registered"


def registered(code: str) -> CodeInfo:
    """The registry entry for ``code`` (KeyError on unknown codes)."""
    return REGISTRY[code]


def registry_table(prefix: str = "") -> list[CodeInfo]:
    """Registered codes (optionally one family), in code order."""
    return [info for code, info in sorted(REGISTRY.items())
            if code.startswith(prefix)]

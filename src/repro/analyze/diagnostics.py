"""Structured diagnostics for the static analyzer.

Every finding is a :class:`Diagnostic` with a stable code (``PLN0xx`` /
``FUS1xx`` / ``STR2xx`` / ``IRL3xx``), a :class:`Severity`, a human
message, and a :class:`SourceLocation` naming the plan node, fusion
region, stream command, or IR instruction involved.  Stability of codes
and locations is load-bearing: the baseline/suppression format
(:mod:`repro.analyze.baseline`) matches on them, and CI fails on any
*new* error-severity finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import AnalysisError


class Severity(enum.IntEnum):
    """Ordered severity levels (higher is worse)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points.

    ``unit`` is the analyzed artifact's name (plan name, program name,
    stream-pool label); ``kind`` says what the location names (``node``,
    ``region``, ``stream``, ``instr``, ``buffer``, ``plan``); ``name``
    is the node/region/buffer name and ``index`` an optional command or
    instruction index within the unit.
    """

    unit: str
    kind: str
    name: str = ""
    index: int | None = None

    def __str__(self) -> str:
        parts = [self.unit, self.kind]
        if self.name:
            parts.append(self.name)
        where = ":".join(parts)
        if self.index is not None:
            where += f"[{self.index}]"
        return where


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation
    pass_name: str = ""

    def __str__(self) -> str:
        return (f"{self.code} {self.severity} at {self.location}: "
                f"{self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (the CLI's ``--json`` output)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "location": str(self.location),
            "message": self.message,
            "pass": self.pass_name,
        }


@dataclass
class AnalysisReport:
    """Everything one :class:`~repro.analyze.Analyzer` invocation found."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)
    #: findings matched (and silenced) by the baseline file
    suppressed: list[Diagnostic] = field(default_factory=list)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        for name in other.passes_run:
            if name not in self.passes_run:
                self.passes_run.append(name)
        return self

    # -- queries ---------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics survived suppression."""
        return not self.errors

    def codes(self) -> list[str]:
        return sorted({d.code for d in self.diagnostics})

    def has_code(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`~repro.errors.AnalysisError` when errors exist."""
        if self.errors:
            raise AnalysisError(self.errors)
        return self

    # -- rendering -------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Flat deterministic mapping (trace metadata, CLI ``--json``)."""
        counts: dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.code] = counts.get(d.code, 0) + 1
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.by_severity(Severity.INFO)),
            "suppressed": len(self.suppressed),
            "passes": sorted(self.passes_run),
            "codes": {code: counts[code] for code in sorted(counts)},
        }

    def render(self) -> str:
        lines = []
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        for d in sorted(self.diagnostics,
                        key=lambda d: (order[d.severity], d.code,
                                       str(d.location))):
            lines.append(str(d))
        s = self.summary()
        lines.append(
            f"analysis: {s['errors']} error(s), {s['warnings']} warning(s), "
            f"{s['infos']} info(s), {s['suppressed']} suppressed "
            f"[{', '.join(self.passes_run)}]")
        return "\n".join(lines)

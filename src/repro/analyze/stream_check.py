"""Stream-program race detector (STR2xx).

Builds a happens-before relation over a set of
:class:`~repro.simgpu.engine.SimStream` command queues:

* program order within each stream (commands run in order), and
* every ``signal(e) -> wait(e)`` pair created by
  :meth:`~repro.streampool.pool.StreamPool.select_wait`.

Buffer accesses come from the commands' declarative ``reads`` /
``writes`` annotations; commands without annotations fall back to tag
inference (``input.X`` H2D transfers write buffer ``X``; ``output.X``
D2H transfers read it), so legacy programs still get upload/download
checks.  Two conflicting accesses (at least one write) that are not
ordered by happens-before are flagged -- the static analogue of a CUDA
race that the simulator's deterministic scheduler would happily hide.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
STR201    error     unordered write-write on one buffer
STR202    error     unordered read-write on one buffer
STR203    error     read with no write ordered before it (use before
                    upload)
STR204    error     D2H download of a buffer never written at all
STR205    error     wait on an event never signaled, or only signaled
                    after the wait (deadlock)
STR206    warning   buffer uploaded (H2D) but never read
STR207    info      kernel-written buffer never read or downloaded
                    (left resident)
========  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simgpu.engine import (
    Command,
    SignalEventCommand,
    SimStream,
    TransferCommand,
    WaitEventCommand,
)
from ..simgpu.pcie import Direction
from .diagnostics import Diagnostic, Severity, SourceLocation


@dataclass(frozen=True)
class _Access:
    node: int          # happens-before node id
    stream_id: int
    index: int         # command index within the stream
    tag: str
    buffer: str
    is_write: bool
    is_h2d: bool
    is_d2h: bool


def _command_accesses(cmd: Command) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(reads, writes) of a command, inferring from tags when bare."""
    if cmd.reads or cmd.writes:
        return tuple(cmd.reads), tuple(cmd.writes)
    if isinstance(cmd, TransferCommand):
        if cmd.direction is Direction.H2D and cmd.tag.startswith("input."):
            return (), (cmd.tag[len("input."):],)
        if cmd.direction is Direction.D2H and cmd.tag.startswith("output."):
            return (cmd.tag[len("output."):],), ()
    return (), ()


class StreamCheckPass:
    """All STR2xx checks over a list of stream command queues."""

    name = "stream-check"
    codes = ("STR201", "STR202", "STR203", "STR204", "STR205",
             "STR206", "STR207")

    def run(self, streams: list[SimStream],
            unit: str = "streams") -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        n_nodes = sum(len(s.commands) for s in streams)
        if n_nodes == 0:
            return diags

        # -- happens-before graph ---------------------------------------
        node_of: dict[tuple[int, int], int] = {}
        succs: list[list[int]] = [[] for _ in range(n_nodes)]
        nid = 0
        for si, stream in enumerate(streams):
            for ci in range(len(stream.commands)):
                node_of[(si, ci)] = nid
                if ci > 0:
                    succs[nid - 1].append(nid)
                nid += 1

        signals: dict[int, list[int]] = {}
        waits: dict[int, list[int]] = {}
        for si, stream in enumerate(streams):
            for ci, cmd in enumerate(stream.commands):
                if isinstance(cmd, SignalEventCommand):
                    signals.setdefault(cmd.event_id, []).append(
                        node_of[(si, ci)])
                elif isinstance(cmd, WaitEventCommand):
                    waits.setdefault(cmd.event_id, []).append(
                        node_of[(si, ci)])
        for event_id, signal_nodes in signals.items():
            for s in signal_nodes:
                for w in waits.get(event_id, []):
                    succs[s].append(w)

        # ancestor bitsets: reach[v] has bit u set iff u happens-before v
        # (or u == v).  Propagated in reverse-postorder; the graph is a
        # DAG by construction (program order + cross-stream sync edges
        # could only cycle through a wait-before-signal pair, handled as
        # a deadlock below, and the bitset pass stays conservative).
        order = self._toposort(n_nodes, succs)
        reach = [0] * n_nodes
        for v in order:
            reach[v] |= 1 << v
            for w in succs[v]:
                reach[w] |= reach[v]

        def ordered(a: int, b: int) -> bool:
            return bool(reach[b] >> a & 1) or bool(reach[a] >> b & 1)

        def before(a: int, b: int) -> bool:
            return a != b and bool(reach[b] >> a & 1)

        # -- STR205: deadlocked waits -----------------------------------
        for event_id, wait_nodes in waits.items():
            signal_nodes = signals.get(event_id, [])
            for si, stream in enumerate(streams):
                for ci, cmd in enumerate(stream.commands):
                    if (not isinstance(cmd, WaitEventCommand)
                            or cmd.event_id != event_id):
                        continue
                    w = node_of[(si, ci)]
                    if not signal_nodes:
                        msg = (f"wait {cmd.tag!r} waits on event "
                               f"{event_id}, which nothing signals: "
                               f"the engine will deadlock")
                    elif all(before(w, s) for s in signal_nodes):
                        msg = (f"wait {cmd.tag!r} waits on event "
                               f"{event_id}, but every signal is ordered "
                               f"after the wait: deadlock")
                    else:
                        continue
                    diags.append(Diagnostic(
                        code="STR205", severity=Severity.ERROR,
                        message=msg,
                        location=SourceLocation(
                            unit, "stream", f"s{stream.stream_id}",
                            index=ci),
                        pass_name=self.name))

        # -- collect buffer accesses ------------------------------------
        accesses: list[_Access] = []
        for si, stream in enumerate(streams):
            for ci, cmd in enumerate(stream.commands):
                reads, writes = _command_accesses(cmd)
                is_h2d = (isinstance(cmd, TransferCommand)
                          and cmd.direction is Direction.H2D)
                is_d2h = (isinstance(cmd, TransferCommand)
                          and cmd.direction is Direction.D2H)
                for buf in reads:
                    accesses.append(_Access(
                        node_of[(si, ci)], stream.stream_id, ci, cmd.tag,
                        buf, False, is_h2d, is_d2h))
                for buf in writes:
                    accesses.append(_Access(
                        node_of[(si, ci)], stream.stream_id, ci, cmd.tag,
                        buf, True, is_h2d, is_d2h))

        by_buffer: dict[str, list[_Access]] = {}
        for acc in accesses:
            by_buffer.setdefault(acc.buffer, []).append(acc)

        def loc(acc: _Access) -> SourceLocation:
            return SourceLocation(unit, "stream", f"s{acc.stream_id}",
                                  index=acc.index)

        for buf in sorted(by_buffer):
            accs = by_buffer[buf]
            writers = [a for a in accs if a.is_write]
            readers = [a for a in accs if not a.is_write]

            # STR201 / STR202: unordered conflicting pairs
            for i, a in enumerate(writers):
                for b in writers[i + 1:]:
                    if not ordered(a.node, b.node):
                        diags.append(Diagnostic(
                            code="STR201", severity=Severity.ERROR,
                            message=(f"unordered write-write on buffer "
                                     f"{buf!r}: {a.tag!r} (stream "
                                     f"{a.stream_id}) vs {b.tag!r} "
                                     f"(stream {b.stream_id})"),
                            location=loc(a), pass_name=self.name))
            for r in readers:
                for w in writers:
                    if not ordered(r.node, w.node):
                        diags.append(Diagnostic(
                            code="STR202", severity=Severity.ERROR,
                            message=(f"unordered read-write on buffer "
                                     f"{buf!r}: {r.tag!r} (stream "
                                     f"{r.stream_id}) reads while "
                                     f"{w.tag!r} (stream {w.stream_id}) "
                                     f"writes; add a select_wait edge"),
                            location=loc(r), pass_name=self.name))

            # STR203 / STR204: reads with no write ordered before them
            for r in readers:
                if any(before(w.node, r.node) for w in writers):
                    continue
                if not writers:
                    if r.is_d2h:
                        diags.append(Diagnostic(
                            code="STR204", severity=Severity.ERROR,
                            message=(f"download {r.tag!r} reads buffer "
                                     f"{buf!r}, which nothing in the "
                                     f"program ever writes"),
                            location=loc(r), pass_name=self.name))
                        continue
                    diags.append(Diagnostic(
                        code="STR203", severity=Severity.ERROR,
                        message=(f"{r.tag!r} reads buffer {buf!r} before "
                                 f"any upload or kernel writes it"),
                        location=loc(r), pass_name=self.name))
                elif all(not ordered(w.node, r.node) for w in writers):
                    # already reported as STR202 races above
                    continue
                else:
                    diags.append(Diagnostic(
                        code="STR203", severity=Severity.ERROR,
                        message=(f"{r.tag!r} reads buffer {buf!r}, but "
                                 f"every write is ordered after the "
                                 f"read (use before upload)"),
                        location=loc(r), pass_name=self.name))

            # STR206 / STR207: write-only buffers
            if not readers and writers:
                first = writers[0]
                if all(w.is_h2d for w in writers):
                    diags.append(Diagnostic(
                        code="STR206", severity=Severity.WARNING,
                        message=(f"buffer {buf!r} is uploaded by "
                                 f"{first.tag!r} but nothing reads it"),
                        location=loc(first), pass_name=self.name))
                else:
                    diags.append(Diagnostic(
                        code="STR207", severity=Severity.INFO,
                        message=(f"buffer {buf!r} is written by "
                                 f"{first.tag!r} but never read or "
                                 f"downloaded (left resident on device)"),
                        location=loc(first), pass_name=self.name))
        return diags

    @staticmethod
    def _toposort(n: int, succs: list[list[int]]) -> list[int]:
        """Topological order; cyclic leftovers are appended in index
        order so the bitset propagation stays well-defined."""
        indeg = [0] * n
        for v in range(n):
            for w in succs[v]:
                indeg[w] += 1
        ready = [v for v in range(n) if indeg[v] == 0]
        order: list[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in succs[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) < n:
            seen = set(order)
            order.extend(v for v in range(n) if v not in seen)
        return order

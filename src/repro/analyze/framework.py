"""The pass manager: one entry point over every analyzable artifact.

``Analyzer.run(target)`` dispatches on the target's type:

* :class:`~repro.plans.plan.Plan` -> plan lints (PLN0xx)
* :class:`~repro.core.fusion.FusionResult` -> fusion legality (FUS1xx)
* :class:`~repro.simgpu.engine.SimStream` (one, or a list) or a
  :class:`~repro.streampool.pool.StreamPool` -> race detection (STR2xx)
* :class:`~repro.compilerlite.ir.Program` -> IR lints (IRL3xx)
* :class:`~repro.plans.distribute.DistributedPlan` -> cluster lints
  (CLU4xx), after plan lints on the underlying plan
* :class:`~repro.optimizer.StrategyTarget` -> optimizer lints (OPT5xx)
  on hand-forced strategy choices
* :class:`~repro.workers.merge.PoolReport` -> serving-pool lints
  (SRV6xx) on a closed worker pool's report
* :class:`~repro.analyze.memory_check.MemoryTarget` -> memory-safety
  verdicts (MEM7xx) from interval abstract interpretation

A configured :class:`~repro.analyze.baseline.Baseline` filters known
findings out of every report.  ``strict=True`` raises
:class:`~repro.errors.AnalysisError` when error-severity findings
survive -- the behavior of the executor/serving pre-flight.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.fusion import FusionResult
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..compilerlite.ir import Program
from ..optimizer.space import StrategyTarget
from ..plans.distribute import DistributedPlan
from ..plans.plan import Plan
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimStream
from .baseline import Baseline
from .cluster_lints import ClusterLintPass
from .diagnostics import AnalysisReport, Diagnostic
from .fusion_check import FusionCheckPass
from .ir_lints import IrLintPass
from .memory_check import MemoryCheckPass, MemoryTarget
from .opt_lints import OptimizerLintPass
from .plan_lints import PlanLintPass
from .serve_lints import ServeLintPass
from .stream_check import StreamCheckPass

#: analyzable target types, for error messages
_TARGET_KINDS = ("Plan, DistributedPlan, StrategyTarget, MemoryTarget, "
                 "FusionResult, SimStream(s), StreamPool, Program, or "
                 "PoolReport")


class Analyzer:
    """Runs the right pass family over whatever it is handed."""

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 baseline: Baseline | None = None):
        self.device = device or DeviceSpec()
        self.costs = costs
        self.baseline = baseline
        self.plan_lints = PlanLintPass()
        self.fusion_check = FusionCheckPass(self.device, costs)
        self.stream_check = StreamCheckPass()
        self.ir_lints = IrLintPass()
        self.cluster_lints = ClusterLintPass()
        self.opt_lints = OptimizerLintPass(self.device, costs)
        self.serve_lints = ServeLintPass()
        self.memory_check = MemoryCheckPass(self.device, costs)

    # -- dispatch --------------------------------------------------------
    def run(self, target: Any, unit: str | None = None,
            strict: bool = False) -> AnalysisReport:
        """Analyze one artifact; `unit` names stream programs in
        diagnostics (ignored for targets that carry their own name)."""
        report = AnalysisReport()
        diags: list[Diagnostic]
        if isinstance(target, DistributedPlan):
            diags = self.plan_lints.run(target.plan)
            diags += self.cluster_lints.run(target)
            report.passes_run.append(self.plan_lints.name)
            report.passes_run.append(self.cluster_lints.name)
        elif isinstance(target, StrategyTarget):
            diags = self.opt_lints.run(target)
            report.passes_run.append(self.opt_lints.name)
        elif isinstance(target, MemoryTarget):
            diags = self.memory_check.run(target)
            report.passes_run.append(self.memory_check.name)
        elif isinstance(target, Plan):
            diags = self.plan_lints.run(target)
            report.passes_run.append(self.plan_lints.name)
        elif isinstance(target, FusionResult):
            diags = self.fusion_check.run(target)
            report.passes_run.append(self.fusion_check.name)
        elif isinstance(target, Program):
            diags = self.ir_lints.run(target)
            report.passes_run.append(self.ir_lints.name)
        elif _is_pool_report(target):
            diags = self.serve_lints.run(target)
            report.passes_run.append(self.serve_lints.name)
        else:
            streams = _as_streams(target)
            if streams is None:
                raise TypeError(
                    f"cannot analyze {type(target).__name__}; expected "
                    f"{_TARGET_KINDS}")
            diags = self.stream_check.run(streams, unit=unit or "streams")
            report.passes_run.append(self.stream_check.name)
        report.extend(diags)
        if self.baseline is not None:
            self.baseline.apply(report)
        if strict:
            report.raise_if_errors()
        return report

    def run_all(self, targets: Iterable[Any],
                strict: bool = False) -> AnalysisReport:
        """Analyze several artifacts into one merged report."""
        merged = AnalysisReport()
        for target in targets:
            merged.merge(self.run(target))
        if strict:
            merged.raise_if_errors()
        return merged


def _is_pool_report(target: Any) -> bool:
    """Lazy isinstance against :class:`repro.workers.merge.PoolReport`
    (imported here to keep analyze importable without the pool)."""
    from ..workers.merge import PoolReport
    return isinstance(target, PoolReport)


def _as_streams(target: Any) -> list[SimStream] | None:
    """Normalize stream-shaped targets to a list of SimStreams."""
    if isinstance(target, SimStream):
        return [target]
    if isinstance(target, (list, tuple)):
        streams: list[SimStream] = []
        for item in target:
            sim = getattr(item, "sim", item)
            if not isinstance(sim, SimStream):
                return None
        for item in target:
            streams.append(getattr(item, "sim", item))
        return streams if streams else []
    sim_streams = getattr(target, "streams", None)
    if sim_streams is not None:
        return _as_streams(list(sim_streams))
    return None

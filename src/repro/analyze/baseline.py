"""Baseline / suppression files for the analyzer.

A baseline is a plain-text file with one suppression per line:

.. code-block:: text

    # comments and blank lines are ignored
    PLN009 fuzz_*:node:op3_sel      # exact code, glob on the location
    STR2*  serve-batch:stream:*     # code globs work too

Each line is ``CODE  LOCATION-GLOB``: a diagnostic is suppressed when
its code matches the (fnmatch-style) code pattern *and* its rendered
location (``unit:kind:name[index]``) matches the location glob.  Known
findings go in the baseline so ``repro analyze --strict`` (and the CI
job) only fails on *new* ones; ``--write-baseline`` regenerates the
file from the current findings.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Iterable

from .diagnostics import AnalysisReport, Diagnostic


@dataclass(frozen=True)
class Suppression:
    """One baseline line: a code pattern and a location glob."""

    code: str
    location: str = "*"

    def matches(self, diag: Diagnostic) -> bool:
        return (fnmatch.fnmatchcase(diag.code, self.code)
                and fnmatch.fnmatchcase(str(diag.location), self.location))

    def render(self) -> str:
        return f"{self.code} {self.location}"


@dataclass
class Baseline:
    """A set of suppressions loaded from (or destined for) a file.

    Every :meth:`apply` accumulates per-suppression match counts, so
    after a full corpus run :meth:`unused_suppressions` names the stale
    entries that matched nothing -- ``repro analyze --baseline`` reports
    them and ``--strict --prune-baseline`` rewrites the file without
    them, so baselines cannot silently accumulate dead entries.
    """

    suppressions: list[Suppression] = field(default_factory=list)
    #: matches accumulated across every apply() since load/reset
    match_counts: dict[Suppression, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "Baseline":
        sups: list[Suppression] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 1:
                sups.append(Suppression(code=parts[0]))
            else:
                sups.append(Suppression(code=parts[0],
                                        location=parts[1]))
        return cls(suppressions=sups)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as f:
            return cls.parse(f.read())

    def matches(self, diag: Diagnostic) -> bool:
        return any(s.matches(diag) for s in self.suppressions)

    def apply(self, report: AnalysisReport) -> AnalysisReport:
        """Move baseline-matched diagnostics into ``report.suppressed``,
        crediting *every* suppression a diagnostic matches (an entry
        shadowed by a broader glob still counts as used)."""
        kept: list[Diagnostic] = []
        for diag in report.diagnostics:
            hit = False
            for sup in self.suppressions:
                if sup.matches(diag):
                    hit = True
                    self.match_counts[sup] = self.match_counts.get(sup, 0) + 1
            if hit:
                report.suppressed.append(diag)
            else:
                kept.append(diag)
        report.diagnostics = kept
        return report

    def unused_suppressions(self) -> list[Suppression]:
        """Entries that matched zero findings across every apply() so
        far, in file order."""
        return [s for s in self.suppressions
                if self.match_counts.get(s, 0) == 0]

    def pruned(self) -> "Baseline":
        """A new baseline without the unused entries (match counts are
        not carried over)."""
        stale = set(self.unused_suppressions())
        return Baseline(suppressions=[s for s in self.suppressions
                                      if s not in stale])

    def render(self) -> str:
        lines = ["# repro analyze baseline -- suppressed findings",
                 "# format: CODE LOCATION-GLOB (fnmatch patterns)"]
        lines.extend(s.render() for s in self.suppressions)
        return "\n".join(lines) + "\n"


def _glob_escape(text: str) -> str:
    """Escape fnmatch metacharacters so a rendered location round-trips
    (``s3[1]`` would otherwise parse ``[1]`` as a character class)."""
    return (text.replace("[", "[[]")
            .replace("*", "[*]").replace("?", "[?]"))


def baseline_from_findings(diags: Iterable[Diagnostic]) -> Baseline:
    """A baseline that suppresses exactly the given findings."""
    seen: set[tuple[str, str]] = set()
    sups: list[Suppression] = []
    for d in diags:
        key = (d.code, str(d.location))
        if key not in seen:
            seen.add(key)
            sups.append(Suppression(code=d.code,
                                    location=_glob_escape(str(d.location))))
    return Baseline(suppressions=sups)


def write_baseline(path: str, diags: Iterable[Diagnostic]) -> Baseline:
    base = baseline_from_findings(diags)
    with open(path, "w", encoding="utf-8") as f:
        f.write(base.render())
    return base

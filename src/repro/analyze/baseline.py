"""Baseline / suppression files for the analyzer.

A baseline is a plain-text file with one suppression per line:

.. code-block:: text

    # comments and blank lines are ignored
    PLN009 fuzz_*:node:op3_sel      # exact code, glob on the location
    STR2*  serve-batch:stream:*     # code globs work too

Each line is ``CODE  LOCATION-GLOB``: a diagnostic is suppressed when
its code matches the (fnmatch-style) code pattern *and* its rendered
location (``unit:kind:name[index]``) matches the location glob.  Known
findings go in the baseline so ``repro analyze --strict`` (and the CI
job) only fails on *new* ones; ``--write-baseline`` regenerates the
file from the current findings.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Iterable

from .diagnostics import AnalysisReport, Diagnostic


@dataclass(frozen=True)
class Suppression:
    """One baseline line: a code pattern and a location glob."""

    code: str
    location: str = "*"

    def matches(self, diag: Diagnostic) -> bool:
        return (fnmatch.fnmatchcase(diag.code, self.code)
                and fnmatch.fnmatchcase(str(diag.location), self.location))

    def render(self) -> str:
        return f"{self.code} {self.location}"


@dataclass
class Baseline:
    """A set of suppressions loaded from (or destined for) a file."""

    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "Baseline":
        sups: list[Suppression] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 1:
                sups.append(Suppression(code=parts[0]))
            else:
                sups.append(Suppression(code=parts[0],
                                        location=parts[1]))
        return cls(suppressions=sups)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as f:
            return cls.parse(f.read())

    def matches(self, diag: Diagnostic) -> bool:
        return any(s.matches(diag) for s in self.suppressions)

    def apply(self, report: AnalysisReport) -> AnalysisReport:
        """Move baseline-matched diagnostics into ``report.suppressed``."""
        kept: list[Diagnostic] = []
        for diag in report.diagnostics:
            if self.matches(diag):
                report.suppressed.append(diag)
            else:
                kept.append(diag)
        report.diagnostics = kept
        return report

    def render(self) -> str:
        lines = ["# repro analyze baseline -- suppressed findings",
                 "# format: CODE LOCATION-GLOB (fnmatch patterns)"]
        lines.extend(s.render() for s in self.suppressions)
        return "\n".join(lines) + "\n"


def _glob_escape(text: str) -> str:
    """Escape fnmatch metacharacters so a rendered location round-trips
    (``s3[1]`` would otherwise parse ``[1]`` as a character class)."""
    return (text.replace("[", "[[]")
            .replace("*", "[*]").replace("?", "[?]"))


def baseline_from_findings(diags: Iterable[Diagnostic]) -> Baseline:
    """A baseline that suppresses exactly the given findings."""
    seen: set[tuple[str, str]] = set()
    sups: list[Suppression] = []
    for d in diags:
        key = (d.code, str(d.location))
        if key not in seen:
            seen.add(key)
            sups.append(Suppression(code=d.code,
                                    location=_glob_escape(str(d.location))))
    return Baseline(suppressions=sups)


def write_baseline(path: str, diags: Iterable[Diagnostic]) -> Baseline:
    base = baseline_from_findings(diags)
    with open(path, "w", encoding="utf-8") as f:
        f.write(base.render())
    return base
